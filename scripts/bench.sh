#!/usr/bin/env bash
# The evaluation suite, runnable locally: every bench target of the
# `bench` crate (the paper's tables and figures), then a chaos campaign
# over the fault grid, leaving its JSON report in BENCH_chaos.json.
# Each grid cell runs quiet / crash / crash+revive, so the report also
# carries the two-sided §7 re-convergence sweep (reconverged,
# reconv_detect_mean/max, stabilised, reconv_stable_mean/max,
# stale_admitted per cell).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo bench (paper tables and figures)"
cargo bench -p bench

echo "==> monitor overhead (streaming checker tap vs bare simulator)"
# cargo bench runs with the package as cwd, so hand it an absolute path.
cargo bench -p bench --bench monitor_overhead -- "$PWD/BENCH_monitor.json"

echo "==> hot-path throughput (bare vs monitored beats/sec, campaign cells/sec)"
cargo bench -p bench --bench throughput -- "$PWD/BENCH_throughput.json"

echo "==> mck scale (states/sec and peak frontier bytes per reduction stack, n up to 8)"
cargo bench -p bench --bench mck_states -- "$PWD/BENCH_mck.json"

echo "==> chaos campaign (sim backend)"
cargo run --release --example chaos_campaign -- --out BENCH_chaos.json --table

echo "benchmarks done; campaign report in BENCH_chaos.json, monitor overhead in BENCH_monitor.json, throughput in BENCH_throughput.json, checker scaling in BENCH_mck.json"
