#!/usr/bin/env bash
# The full CI gate, runnable locally: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos smoke campaign (seed-pinned, injector determinism)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --example chaos_campaign -- --smoke --out "$tmpdir/a.json" >/dev/null
cargo run --release --example chaos_campaign -- --smoke --threads 1 --out "$tmpdir/b.json" >/dev/null
diff "$tmpdir/a.json" "$tmpdir/b.json" \
  || { echo "chaos campaign is not deterministic" >&2; exit 1; }

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI green."
