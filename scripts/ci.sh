#!/usr/bin/env bash
# The full CI gate, runnable locally: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> chaos smoke campaign (seed-pinned, injector determinism)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release --example chaos_campaign -- --smoke --out "$tmpdir/a.json" >/dev/null
cargo run --release --example chaos_campaign -- --smoke --threads 1 --out "$tmpdir/b.json" >/dev/null
diff "$tmpdir/a.json" "$tmpdir/b.json" \
  || { echo "chaos campaign is not deterministic" >&2; exit 1; }

echo "==> §7 crash/revive rejoin demo (seed-pinned, sim + live backends)"
# Emits rejoin_{sim,live}.json twice; the emitter itself fails unless the
# naive/epoch separation holds and in-process replay is byte-identical,
# and the diff pins determinism across whole invocations.
cargo run --release --example chaos_campaign -- --rejoin "$tmpdir/rejoin_a" >/dev/null
cargo run --release --example chaos_campaign -- --rejoin "$tmpdir/rejoin_b" >/dev/null
diff -r "$tmpdir/rejoin_a" "$tmpdir/rejoin_b" \
  || { echo "crash/revive rejoin demo is not deterministic" >&2; exit 1; }

echo "==> monitor gate (streaming R1–R3 verdicts on the smoke grid)"
# With --monitor every cell carries online verdicts; the gate inside the
# example fails unless corrected-bounds cells are clean and under-corrected
# cells reproduce the R1 breach.
cargo run --release --example chaos_campaign -- --smoke --monitor >/dev/null

echo "==> membership failover gate (coordinator crash, sim + live, monitors clean)"
# The emitter fails unless every cell demotes the ex-coordinator, agrees
# on one view, resolves both sides of the re-convergence samples, keeps
# the R1–R3 monitors clean, and replays byte-identically in process; the
# diffs pin determinism across invocations and against the checked-in
# golden cells.
cargo run --release --example chaos_campaign -- --failover "$tmpdir/failover_a" >/dev/null
cargo run --release --example chaos_campaign -- --failover "$tmpdir/failover_b" >/dev/null
diff -r "$tmpdir/failover_a" "$tmpdir/failover_b" \
  || { echo "failover campaign is not deterministic" >&2; exit 1; }
diff "$tmpdir/failover_a/failover_sim.json" artifacts/failover_sim.json \
  || { echo "failover sim artifact drifted from the checked-in golden" >&2; exit 1; }
diff "$tmpdir/failover_a/failover_live.json" artifacts/failover_live.json \
  || { echo "failover live artifact drifted from the checked-in golden" >&2; exit 1; }

echo "==> bench smoke (throughput harness runs end to end; no perf assertion)"
cargo bench -p bench --bench throughput -- --smoke "$tmpdir/throughput_smoke.json" >/dev/null

echo "==> mck scale smoke (reduction stacks agree; packed store round-trips)"
# The bench itself asserts that every finished reduction stack (full,
# sym, sym+por, sym+por+packed) reports the same verdict.
cargo bench -p bench --bench mck_states -- --smoke "$tmpdir/mck_smoke.json" >/dev/null

echo "==> static analyzer gate (fixed machines must be free of error findings)"
# Advisory findings (pid-concrete-guard on the member takeover) are
# reported but do not deny.
cargo run --release --example hb_analyze -- --machines fixed --deny-findings

echo "==> symmetry certificate gate (census + quotient vs brute vs full on the smoke grid)"
cargo run --release --example hb_analyze -- --sym-check > "$tmpdir/sym.txt"
tail -n 1 "$tmpdir/sym.txt"

echo "==> POR soundness cross-check (reduced vs full verdicts, all table cells)"
# por_cross_check panics on any verdict divergence; the tail lines report
# the state savings (EXPERIMENTS.md carries the full table).
cargo run --release --example hb_analyze -- --por-check > "$tmpdir/por.txt"
tail -n 2 "$tmpdir/por.txt"

echo "==> sim-vs-live campaign differ (checked-in artifact pair)"
cargo run --release --example chaos_campaign -- --diff \
  artifacts/campaign_gm98_sim.json artifacts/campaign_gm98_live.json >/dev/null

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI green."
