#!/usr/bin/env bash
# The full CI gate, runnable locally: build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo clippy"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI green."
