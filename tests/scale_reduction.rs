//! Property tests for the n ≥ 2 scale-campaign machinery: the composed
//! symmetry × POR quotient never changes a verdict, and the
//! dataflow-sized packed codec round-trips every reachable state.
//!
//! The deterministic smoke grid (`hb_analyze --sym-check`, the
//! `hb_verify::tables` scale tests) pins a handful of cells; these
//! tests walk random small corners of variant × fix × n ∈ {2, 3}
//! space. Parameters stay tiny so the *full* exploration — the oracle —
//! remains affordable.

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::mck::packed::{BitReader, BitWriter, StateCodec};
use accelerated_heartbeat::mck::symmetry::Symmetric;
use accelerated_heartbeat::mck::{CheckOutcome, Checker, Model, ModelExt, Reduced};
use accelerated_heartbeat::verify::por::HbAmpleOracle;
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate, Requirement};
use accelerated_heartbeat::verify::symmetry::certified_canonical;
use accelerated_heartbeat::verify::HbCodec;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// S3 part one: the certified sort-key quotient composed over the
    /// ample-set-reduced model agrees with the unreduced checker on
    /// every verdict, for the multi-party variants at n ∈ {2, 3},
    /// across fix levels and fault-free requirements, with staggered
    /// starts in play.
    #[test]
    fn composed_symmetry_por_agrees_with_the_full_checker(
        variant in prop::sample::select(vec![
            Variant::Static,
            Variant::Expanding,
            Variant::Dynamic,
        ]),
        fix in prop::sample::select(FixLevel::ALL.to_vec()),
        req in prop::sample::select(vec![Requirement::R2, Requirement::R3]),
        n in 2usize..=3,
        tmin in 1u32..=2,
        extra in 0u32..=2,
        stagger in any::<bool>(),
    ) {
        let params = Params::new(tmin, tmin + extra).expect("valid params");
        let model = build_model(variant, params, fix, n, req).stagger_starts(stagger);
        let pred = |s: &accelerated_heartbeat::verify::HbState| !error_predicate(&model, req)(s);

        let full_holds = matches!(
            Checker::new(&model).check_invariant(pred),
            CheckOutcome::Holds(_)
        );

        let canon = certified_canonical(&model).expect("plain machines are certified");
        let red = Reduced::new(&model, HbAmpleOracle::new(&model, req));
        let sym = Symmetric::new(&red, canon);
        let out = Checker::new(&sym).check_invariant(pred);
        let composed_holds = matches!(out, CheckOutcome::Holds(_));

        prop_assert!(
            full_holds == composed_holds,
            "verdict divergence on {}/{}-{}/{:?}/{:?}/n={} stagger={}: full={} sym+por={}",
            variant.name(),
            params.tmin(),
            params.tmax(),
            fix,
            req,
            n,
            stagger,
            full_holds,
            composed_holds,
        );
    }

    /// S3 part two: the bit-packed codec, with field widths taken from
    /// the dataflow-proven ranges, encodes and decodes every state of a
    /// random walk through the real model — including fault actions,
    /// leaves, and R1's ghost monitors — without loss.
    #[test]
    fn packed_codec_round_trips_random_reachable_states(
        variant in prop::sample::select(Variant::ALL.to_vec()),
        fix in prop::sample::select(FixLevel::ALL.to_vec()),
        req in prop::sample::select(Requirement::ALL.to_vec()),
        n in 1usize..=3,
        tmin in 1u32..=2,
        extra in 0u32..=2,
        picks in prop::collection::vec(0usize..64, 40..41),
        init_pick in 0usize..8,
    ) {
        let n = if variant.is_two_process() { 1 } else { n };
        let params = Params::new(tmin, tmin + extra).expect("valid params");
        let model = build_model(variant, params, fix, n, req).stagger_starts(true);
        let codec = HbCodec::for_model(&model);

        let inits = model.initial_states();
        let mut state = inits[init_pick % inits.len()].clone();
        let mut writer = BitWriter::new();
        for pick in picks {
            writer.clear();
            codec.encode(&state, &mut writer);
            let decoded = codec.decode(&mut BitReader::new(writer.bytes()));
            prop_assert!(
                decoded == state,
                "codec round-trip diverged on {}/{:?}/{:?}/n={}",
                variant.name(), fix, req, n
            );
            let succs = model.successors(&state);
            if succs.is_empty() {
                break;
            }
            state = succs[pick % succs.len()].1.clone();
        }
    }
}
