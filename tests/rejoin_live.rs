//! Cross-validation of the §7 rejoin story: the live loopback runtime,
//! the production coordinator machine, and the exhaustively checked
//! `hb-verify::rejoin_model` must agree on stale-beat rejection for the
//! same crash/revive schedule.
//!
//! Three independent artefacts claim the same thing — "a beat tagged
//! with a superseded incarnation is ignored iff epochs are on" — and
//! each is probed at its own level: the machine per-beat, the model
//! exhaustively, the live runtime end-to-end under the checked-in demo
//! plan.

use accelerated_heartbeat::chaos::{rejoin_demo_plan, run_plan, Backend};
use accelerated_heartbeat::core::rejoin::{EpochBeat, RejoinCoordSpec};
use accelerated_heartbeat::core::{CoordSpec, FixLevel, Heartbeat, Params, Variant};
use accelerated_heartbeat::verify::rejoin_model::rejoin_results;

/// The crash/revive beat schedule both machines are driven with: the
/// first incarnation beats, crashes, revives as the second incarnation
/// and re-registers — then a stale leftover of the first incarnation
/// (held back by the network) arrives. Epochs are given as incarnation
/// *indices*; the runtime numbers its first incarnation 0 while the
/// model numbers it 1 (its participants begin out-of-protocol at epoch
/// 0 and bump on every join, the coordinator's bar starting at 1), so
/// each probe shifts the schedule into its machine's numbering.
const SCHEDULE: [u8; 3] = [0, 1, 0];

/// Which beats of [`SCHEDULE`] count as liveness evidence, per flavour.
const ADMITTED_WITH_EPOCHS: [bool; 3] = [true, true, false];
const ADMITTED_NAIVE: [bool; 3] = [true, true, true];

/// Drive the *runtime* coordinator (the machine both the simulator and
/// the live runtime execute) through the schedule, probing per-beat
/// admission via the round's `rcvd` bit.
fn runtime_decisions(fix: FixLevel) -> Vec<bool> {
    let params = Params::new(2, 8).unwrap();
    let spec = CoordSpec::new(Variant::Expanding, params, 1, fix);
    let mut s = spec.init_state();
    SCHEDULE
        .iter()
        .map(|&epoch| {
            s.rcvd[0] = false;
            spec.on_heartbeat(&mut s, 1, Heartbeat::plain().with_epoch(epoch));
            s.rcvd[0]
        })
        .collect()
}

/// Drive the *verification model's* coordinator through the same
/// schedule.
fn model_decisions(epochs: bool) -> Vec<bool> {
    let params = Params::new(2, 8).unwrap();
    let spec = RejoinCoordSpec::new(params, 1, epochs);
    let mut s = spec.init_state();
    SCHEDULE
        .iter()
        .map(|&incarnation| {
            s.rcvd[0] = false;
            let beat = EpochBeat {
                flag: true,
                epoch: incarnation + 1,
            };
            spec.on_heartbeat(&mut s, 1, beat);
            s.rcvd[0]
        })
        .collect()
}

#[test]
fn machine_and_model_agree_per_beat_on_the_crash_revive_schedule() {
    assert_eq!(runtime_decisions(FixLevel::Full), ADMITTED_WITH_EPOCHS);
    assert_eq!(model_decisions(true), ADMITTED_WITH_EPOCHS);
    assert_eq!(runtime_decisions(FixLevel::CorrectedBounds), ADMITTED_NAIVE);
    assert_eq!(model_decisions(false), ADMITTED_NAIVE);
}

#[test]
fn live_loopback_agrees_with_the_model_on_stale_beat_rejection() {
    // Live runtime, end to end: the checked-in reorder + crash + revive
    // plan, at both fix levels, on the loopback cluster.
    let naive = run_plan(
        &rejoin_demo_plan(FixLevel::CorrectedBounds, 1),
        Backend::Live,
    );
    let epoch = run_plan(&rejoin_demo_plan(FixLevel::Full, 1), Backend::Live);

    // Model, exhaustively: naive rejoin admits stale beats (and is
    // thereby unsafe for the coordinator), epoch rejoin is safe.
    let model = rejoin_results(Params::new(2, 4).unwrap());

    // Agreement, clause by clause. Naive: the model's counterexample is
    // a stale beat being admitted; the live run admits one too.
    assert!(!model.naive_coordinator_safe);
    assert!(
        naive.stale_beats_admitted >= 1,
        "live naive run admitted no stale beat: {naive:?}"
    );
    // Epoch-tagged: the model rejects every stale beat (safety holds);
    // the live run filters them all and still re-registers the revived
    // incarnation.
    assert!(model.epoch_coordinator_safe && model.epoch_participant_safe);
    assert_eq!(
        epoch.stale_beats_admitted, 0,
        "live epoch run admitted a stale beat: {epoch:?}"
    );
    assert!(
        epoch.stale_beats_filtered >= 1,
        "live epoch run saw no stale beat to filter: {epoch:?}"
    );
    assert!(
        epoch.reconv_detect.is_some(),
        "live epoch run never re-registered the revived node: {epoch:?}"
    );
    assert!(
        epoch.reconv_stable.is_some(),
        "live epoch run never stabilised the revived node: {epoch:?}"
    );
}

#[test]
fn live_and_sim_agree_on_the_same_schedule() {
    // The two substrates execute the same machines; on the seed-pinned
    // demo schedule their stale-beat verdicts must coincide exactly.
    for fix in [FixLevel::CorrectedBounds, FixLevel::Full] {
        let plan = rejoin_demo_plan(fix, 1);
        let sim = run_plan(&plan, Backend::Sim);
        let live = run_plan(&plan, Backend::Live);
        assert_eq!(
            (sim.stale_beats_admitted > 0, sim.stale_beats_filtered > 0),
            (live.stale_beats_admitted > 0, live.stale_beats_filtered > 0),
            "substrates disagree at {fix:?}: sim {sim:?} vs live {live:?}"
        );
        assert_eq!(
            sim.reconv_detect.is_some(),
            live.reconv_detect.is_some(),
            "re-registration disagrees at {fix:?}"
        );
        assert_eq!(
            sim.reconv_stable.is_some(),
            live.reconv_stable.is_some(),
            "stabilisation disagrees at {fix:?}"
        );
    }
}
