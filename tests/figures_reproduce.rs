//! Integration: the five counter-example figures replay and reproduce.

use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::verify::figures::{
    all_figures, figure10a, figure10b, figure11, figure12, figure13,
};

#[test]
fn all_five_figures_reproduce() {
    for f in all_figures() {
        assert!(f.replay_valid, "{}: replay must be valid", f.name);
        assert!(f.error_reached, "{}: error must be reached", f.name);
        assert!(
            f.shortest_ce_len.is_some(),
            "{}: BFS must confirm the violation",
            f.name
        );
    }
}

#[test]
fn figure10a_shape() {
    let f = figure10a();
    // p[1] replies once, crashes, p[0] halves to inactivation.
    let events = f.log.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::Crash { pid: 1, at: 10 })));
    let timeouts: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Timeout { at, pid: 0 } => Some(*at),
            _ => None,
        })
        .collect();
    assert_eq!(timeouts, vec![10, 20, 30, 35], "halving chain 10,10,5");
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::NvInactivate { pid: 0, at: 35 })));
}

#[test]
fn figure10b_shape() {
    let f = figure10b();
    let last = f.log.events().last().unwrap();
    assert!(matches!(last, Event::NvInactivate { pid: 0, at: 35 }));
}

#[test]
fn figure11_shape() {
    let f = figure11();
    let events = f.log.events();
    // exactly one coordinator beat, delivered never; p[1] dies at 20
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Send {
            from: 0,
            to: 1,
            at: 10,
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::NvInactivate { pid: 1, at: 20 })));
    assert!(!events.iter().any(|e| matches!(e, Event::Crash { .. })));
    assert!(!events.iter().any(|e| matches!(e, Event::Lose { .. })));
}

#[test]
fn figure12_shape() {
    let f = figure12();
    let events = f.log.events();
    // p[1] replied on time, yet p[0] dies at 20 with p[1] alive
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Send {
            from: 1,
            to: 0,
            at: 10,
            ..
        }
    )));
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::NvInactivate { pid: 0, at: 20 })));
    assert!(!events
        .iter()
        .any(|e| matches!(e, Event::NvInactivate { pid: 1, .. })));
}

#[test]
fn figure13_shape() {
    let f = figure13();
    let events = f.log.events();
    // four join beats at the tmin cadence
    let join_sends: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Send {
                from: 1, to: 0, at, ..
            } => Some(*at),
            _ => None,
        })
        .collect();
    assert_eq!(join_sends, vec![5, 10, 15, 20]);
    // p[0]'s first useful broadcast only at 2*tmax...
    assert!(events.iter().any(|e| matches!(
        e,
        Event::Send {
            from: 0,
            to: 1,
            at: 20,
            ..
        }
    )));
    // ...and p[1] gives up exactly at 3*tmax - tmin = 25.
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::NvInactivate { pid: 1, at: 25 })));
}

#[test]
fn bfs_counterexamples_are_no_longer_than_replays() {
    // BFS finds shortest violations; the paper's replays cannot be shorter.
    for f in all_figures() {
        let replay_len = f.log.len();
        let bfs = f.shortest_ce_len.unwrap();
        // The replay log counts events, the BFS length counts transitions
        // (including ticks), so compare through a generous tick allowance:
        // BFS length <= replay events + ticks (time of last event).
        let horizon = f.log.events().last().unwrap().at() as usize;
        assert!(
            bfs <= replay_len + horizon + 2,
            "{}: BFS {} vs replay {} + {}",
            f.name,
            bfs,
            replay_len,
            horizon
        );
    }
}
