//! Integration: the §6 repairs (receive priority + corrected bounds).
//!
//! The full-table all-pass result at `tmax = 10` runs in the release
//! benches (`table_fixed`); here the same claims are verified exhaustively
//! at proportionally reduced constants, plus the tightness and ablation
//! claims.

use accelerated_heartbeat::core::params::PAPER_DATASETS;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate, r1_bound};
use accelerated_heartbeat::verify::{verify, Requirement};
use mck::Checker;

/// Reduced-constant analogues of the paper's five data sets (tmax = 4).
const REDUCED: [(u32, u32); 4] = [(1, 4), (2, 4), (3, 4), (4, 4)];

#[test]
fn fixed_protocols_satisfy_r2_r3_on_paper_datasets() {
    for variant in Variant::ALL {
        for (tmin, tmax) in PAPER_DATASETS {
            let params = Params::new(tmin, tmax).unwrap();
            for req in [Requirement::R2, Requirement::R3] {
                let v = verify(variant, params, FixLevel::Full, req);
                assert!(v.holds, "{variant} {req} must hold fixed at tmin={tmin}");
            }
        }
    }
}

#[test]
fn fixed_protocols_satisfy_r1_reduced_constants() {
    for variant in Variant::ALL {
        for (tmin, tmax) in REDUCED {
            let params = Params::new(tmin, tmax).unwrap();
            let v = verify(variant, params, FixLevel::Full, Requirement::R1);
            assert!(
                v.holds,
                "{variant} R1 must hold fixed at ({tmin},{tmax}): {:?}",
                v.stats
            );
        }
    }
}

#[test]
fn corrected_r1_bounds_are_tight() {
    // One unit below the corrected bound, a counterexample exists — the
    // §6.2 bounds are exact suprema, not just safe over-approximations.
    for variant in [Variant::Binary, Variant::TwoPhase, Variant::Expanding] {
        for (tmin, tmax) in [(1u32, 4u32), (2, 4)] {
            let params = Params::new(tmin, tmax).unwrap();
            let bound = r1_bound(variant, params, FixLevel::Full);
            let model =
                accelerated_heartbeat::verify::HbModel::new(variant, params, 1, FixLevel::Full)
                    .monitor_bound(bound - 1);
            let out = Checker::new(&model).check_invariant(|s| !model.monitor_error(s));
            assert!(
                !out.holds(),
                "{variant} ({tmin},{tmax}): bound {bound} is not tight"
            );
        }
    }
}

#[test]
fn corrected_responder_bound_is_tight_for_binary() {
    // Below the corrected 2*tmax participant bound, R2 must break even
    // with receive priority — the §6.2 'tighter bound' claim is exact.
    // (We emulate a lower bound by checking reachability of a state where
    // the participant has waited 2*tmax - 1 with nothing in flight **and
    // nothing to come in time**: simpler and equivalent here is to check
    // the fixed bound itself is reached with equality somewhere.)
    let params = Params::new(4, 4).unwrap(); // tmin = tmax: the tie regime
    let model = build_model(Variant::Binary, params, FixLevel::Full, 1, Requirement::R2);
    // The participant's waiting clock reaches exactly the corrected bound
    // (2*tmax = 8) in some reachable state — so any smaller bound would
    // fire spuriously.
    let bound = params.responder_bound_corrected(Variant::Binary);
    let reachable = Checker::new(&model).find_state(|s| s.resps[0].waiting >= bound);
    assert!(
        reachable.is_some(),
        "corrected participant bound is never saturated: it is not tight"
    );
}

#[test]
fn receive_priority_alone_is_not_sufficient() {
    // §6: the priority fix repairs the binary R2/R3 races but not R1, and
    // not the expanding/dynamic join-window violations.
    let p10 = Params::new(10, 10).unwrap();
    for req in [Requirement::R2, Requirement::R3] {
        assert!(
            verify(Variant::Binary, p10, FixLevel::ReceivePriority, req).holds,
            "priority repairs binary {req}"
        );
    }
    let p14 = Params::new(1, 4).unwrap();
    assert!(
        !verify(
            Variant::Binary,
            p14,
            FixLevel::ReceivePriority,
            Requirement::R1
        )
        .holds,
        "priority alone cannot repair R1"
    );
    let p9 = Params::new(9, 10).unwrap();
    assert!(
        !verify(
            Variant::Expanding,
            p9,
            FixLevel::ReceivePriority,
            Requirement::R2
        )
        .holds,
        "priority alone cannot repair the expanding join window"
    );
}

#[test]
fn corrected_bounds_alone_are_not_sufficient() {
    // The simultaneity races survive if only the bounds are fixed.
    let p = Params::new(10, 10).unwrap();
    assert!(
        !verify(
            Variant::Binary,
            p,
            FixLevel::CorrectedBounds,
            Requirement::R3
        )
        .holds,
        "bounds alone cannot repair the Fig 12 race"
    );
    let p5 = Params::new(5, 10).unwrap();
    assert!(
        !verify(
            Variant::Expanding,
            p5,
            FixLevel::CorrectedBounds,
            Requirement::R2
        )
        .holds,
        "bounds alone cannot repair the Fig 13 race"
    );
}

#[test]
fn fixed_model_has_no_reachable_nv_inactivation_without_faults() {
    // Stronger than R2/R3 separately: in the fault-free fixed model no
    // process is ever NV-inactivated at all.
    for variant in Variant::ALL {
        for (tmin, tmax) in REDUCED {
            let params = Params::new(tmin, tmax).unwrap();
            let model = build_model(variant, params, FixLevel::Full, 1, Requirement::R2);
            let bad = Checker::new(&model).find_state(|s| {
                error_predicate(&model, Requirement::R2)(s)
                    || s.coord.status == accelerated_heartbeat::core::Status::NvInactive
            });
            assert!(bad.is_none(), "{variant} ({tmin},{tmax}) spurious NV");
        }
    }
}
