//! Live-runtime integration tests: the `hb-net` loopback cluster must
//! detect an injected crash within the corrected §6.2 bound, agree with
//! the `hb-sim` simulator for the same `(tmin, tmax, loss)`, and be fully
//! deterministic under virtual time.
//!
//! Under message loss the accelerated protocols can *falsely* inactivate
//! before the injected crash ever lands (the availability trade-off the
//! paper quantifies); such runs are counted, not asserted against the
//! bound, and both substrates must keep them a minority.

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::net::{ClusterConfig, Faults, VirtualCluster};
use accelerated_heartbeat::sim::channel::LossModel;
use accelerated_heartbeat::sim::{run_scenario, Scenario};

const CRASH_AT: u64 = 100;
const SEEDS: u64 = 20;

fn live_config(variant: Variant, params: Params, loss: f64, seed: u64) -> ClusterConfig {
    ClusterConfig {
        variant,
        params,
        fix: FixLevel::Full,
        n: 1,
        faults: if loss == 0.0 {
            Faults::none()
        } else {
            Faults::bernoulli(loss)
        },
        seed,
        record_events: false,
    }
}

/// The network-wide detection bound this repo asserts throughout: the
/// corrected coordinator bound, plus one maximum message delay, plus the
/// corrected responder watchdog.
fn cluster_bound(variant: Variant, params: Params) -> u64 {
    u64::from(
        params.p0_bound_corrected(variant)
            + params.tmin()
            + params.responder_bound_corrected(variant),
    )
}

/// Run one live cluster with a crash injected at [`CRASH_AT`]. `Some`
/// with the detection delay if the crash landed on a live participant;
/// `None` if loss had already (falsely) brought the node down.
fn live_detection(variant: Variant, params: Params, loss: f64, seed: u64) -> Option<u64> {
    let mut cl = VirtualCluster::new(live_config(variant, params, loss, seed));
    cl.schedule_crash(1, CRASH_AT);
    cl.run_until(CRASH_AT + 40 * u64::from(params.tmax()));
    assert!(cl.all_inactive(), "the cluster must come down either way");
    let report = cl.into_report();
    assert_eq!(report.summary.source, "live");
    if report.summary.crashes.is_empty() {
        return None;
    }
    assert_eq!(report.summary.crashes, vec![(1, CRASH_AT)]);
    Some(
        report
            .summary
            .detection_delay
            .expect("a real crash must be detected"),
    )
}

#[test]
fn live_crash_detection_meets_corrected_bound_lossless() {
    let params = Params::new(2, 8).unwrap();
    let bound = cluster_bound(Variant::Binary, params);
    for seed in 0..SEEDS {
        let delay = live_detection(Variant::Binary, params, 0.0, seed)
            .expect("lossless runs cannot falsely inactivate");
        assert!(delay <= bound, "seed {seed}: delay {delay} > bound {bound}");
    }
}

#[test]
fn live_crash_detection_meets_corrected_bound_under_loss() {
    let params = Params::new(2, 8).unwrap();
    let bound = cluster_bound(Variant::Binary, params);
    let mut clean = 0;
    for seed in 0..SEEDS {
        if let Some(delay) = live_detection(Variant::Binary, params, 0.05, seed) {
            clean += 1;
            assert!(delay <= bound, "seed {seed}: delay {delay} > bound {bound}");
        }
    }
    assert!(
        clean >= SEEDS / 2,
        "only {clean}/{SEEDS} clean runs at 5% loss"
    );
}

/// The simulator, fed the same `(tmin, tmax)`, loss model, fix level and
/// crash schedule, must honour the very same bound — live and sim runs
/// validate each other against the paper's corrected analysis.
#[test]
fn sim_agrees_with_live_on_the_corrected_bound() {
    let params = Params::new(2, 8).unwrap();
    let bound = cluster_bound(Variant::Binary, params);
    for loss in [0.0, 0.05] {
        let mut live_clean = 0;
        let mut sim_clean = 0;
        for seed in 0..SEEDS {
            if let Some(live) = live_detection(Variant::Binary, params, loss, seed) {
                live_clean += 1;
                assert!(live <= bound, "live {live} > bound {bound} (seed {seed})");
            }
            let sc = Scenario::crash_at(Variant::Binary, params, 1, CRASH_AT)
                .with_fix(FixLevel::Full)
                .with_loss_model(LossModel::Bernoulli(loss));
            if let Some(sim) = run_scenario(&sc, seed).detection_delay {
                sim_clean += 1;
                assert!(sim <= bound, "sim {sim} > bound {bound} (seed {seed})");
            }
        }
        // Both substrates detect in the (same) vast majority of runs.
        let floor = if loss == 0.0 { SEEDS } else { SEEDS / 2 };
        assert!(
            live_clean >= floor,
            "live: {live_clean}/{SEEDS} at loss {loss}"
        );
        assert!(
            sim_clean >= floor,
            "sim: {sim_clean}/{SEEDS} at loss {loss}"
        );
    }
}

/// Same seed, same schedule — bit-identical summary, including message
/// counters and per-event timestamps. Virtual time has no race to lose.
#[test]
fn live_runs_are_deterministic_under_virtual_time() {
    let run = |seed: u64| {
        let params = Params::new(2, 8).unwrap();
        let mut cfg = live_config(Variant::Static, params, 0.1, seed);
        cfg.n = 2;
        let mut cl = VirtualCluster::new(cfg);
        cl.schedule_crash(2, 150);
        cl.run_until(3_000);
        cl.into_report().summary
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
    assert_ne!(a, run(8), "different seeds must diverge");
}

/// A static 3-participant cluster: one crash takes the whole network to
/// inactive (the GM98 "whole network detects") within the bound, and the
/// summary schema carries every phase of the story.
#[test]
fn three_participant_cluster_detects_and_reports() {
    let params = Params::new(2, 8).unwrap();
    let bound = cluster_bound(Variant::Static, params);
    let mut checked = 0;
    for seed in 0..SEEDS {
        let mut cfg = live_config(Variant::Static, params, 0.02, seed);
        cfg.n = 3;
        let mut cl = VirtualCluster::new(cfg);
        cl.schedule_crash(3, 200);
        cl.run_until(200 + 40 * u64::from(params.tmax()));
        assert!(cl.all_inactive());
        let summary = cl.into_report().summary;
        if summary.crashes.is_empty() {
            continue; // loss got there first — tallied by the other tests
        }
        checked += 1;
        let delay = summary.detection_delay.expect("detection");
        assert!(delay <= bound, "seed {seed}: delay {delay} > bound {bound}");
        assert_eq!(summary.false_inactivations, 0);
        assert!(summary.messages_sent > 0);
        let json = summary.to_json();
        assert!(json.contains("\"source\":\"live\""), "{json}");
    }
    assert!(checked >= SEEDS / 2, "only {checked}/{SEEDS} clean runs");
}
