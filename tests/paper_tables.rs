//! Integration: the paper's Table 1 / Table 2 verdicts.
//!
//! The cheap cells (R2/R3: fault-free models, thousands of states; R1's
//! violated cells: BFS stops at the first error) run on the paper's exact
//! `tmax = 10` data sets even in debug builds. R1's *satisfied* cells need
//! an exhaustive sweep of ~10^6 states, so they are asserted here at
//! proportionally reduced constants and in full by `cargo bench`
//! (`table1`/`table2`, release mode).

use accelerated_heartbeat::core::params::PAPER_DATASETS;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::tables::{TABLE1_EXPECTED, TABLE2_EXPECTED};
use accelerated_heartbeat::verify::{verify, Requirement};

fn expected_for(variant: Variant) -> [[bool; 5]; 3] {
    if Variant::TABLE1.contains(&variant) {
        TABLE1_EXPECTED
    } else {
        TABLE2_EXPECTED
    }
}

#[test]
fn r2_and_r3_match_the_paper_on_all_variants_and_datasets() {
    for variant in Variant::ALL {
        let expected = expected_for(variant);
        for (col, (tmin, tmax)) in PAPER_DATASETS.into_iter().enumerate() {
            let params = Params::new(tmin, tmax).unwrap();
            for (row, req) in [Requirement::R2, Requirement::R3].into_iter().enumerate() {
                let v = verify(variant, params, FixLevel::Original, req);
                assert_eq!(
                    v.holds,
                    expected[row + 1][col],
                    "{variant} {req} at tmin={tmin}"
                );
            }
        }
    }
}

#[test]
fn r1_violated_cells_match_the_paper() {
    // The F cells are found quickly (BFS stops at the first monitor
    // error); the T cells are covered by `r1_satisfied_cells_reduced` and
    // the release-mode benches.
    for variant in Variant::ALL {
        for (col, (tmin, tmax)) in PAPER_DATASETS.into_iter().enumerate() {
            if expected_for(variant)[0][col] {
                continue;
            }
            let params = Params::new(tmin, tmax).unwrap();
            let v = verify(variant, params, FixLevel::Original, Requirement::R1);
            assert!(!v.holds, "{variant} R1 must be violated at tmin={tmin}");
            assert!(v.counterexample.is_some());
        }
    }
}

#[test]
fn r1_satisfied_cells_reduced_constants() {
    // tmax = 4, tmin = 3: 2*tmin > tmax, the regime where the claimed
    // 2*tmax bound is correct — R1 must hold for every variant.
    let params = Params::new(3, 4).unwrap();
    for variant in Variant::ALL {
        let v = verify(variant, params, FixLevel::Original, Requirement::R1);
        assert!(v.holds, "{variant} R1 should hold at (3,4): {:?}", v.stats);
    }
}

#[test]
fn r1_violated_cells_reduced_constants() {
    // tmax = 4, tmin = 1: 2*tmin <= tmax, the regime of Figure 10.
    let params = Params::new(1, 4).unwrap();
    for variant in Variant::ALL {
        let v = verify(variant, params, FixLevel::Original, Requirement::R1);
        assert!(!v.holds, "{variant} R1 should fail at (1,4)");
    }
}

#[test]
fn counterexamples_replay_against_the_model() {
    // Every counterexample the checker returns must be a genuine trace:
    // replaying its actions from the initial state reproduces its states.
    use accelerated_heartbeat::verify::requirements::build_model;
    use mck::Model;

    let params = Params::new(10, 10).unwrap();
    for (variant, req) in [
        (Variant::Binary, Requirement::R2),
        (Variant::Binary, Requirement::R3),
        (Variant::Expanding, Requirement::R2),
    ] {
        let v = verify(variant, params, FixLevel::Original, req);
        let ce = v.counterexample.expect("violated at tmin=tmax");
        let model = build_model(variant, params, FixLevel::Original, 1, req);
        let mut cur = ce.initial_state().clone();
        for (action, state) in ce.steps() {
            cur = model
                .next_state(&cur, action)
                .expect("counterexample action must be enabled");
            assert_eq!(&cur, state, "{variant} {req}: trace divergence");
        }
    }
}

#[test]
fn verdict_is_independent_of_engine() {
    // The parallel checker must agree with the sequential one.
    use accelerated_heartbeat::verify::requirements::{build_model, error_predicate};
    use mck::parallel::ParallelChecker;

    let params = Params::new(5, 10).unwrap();
    for req in [Requirement::R2, Requirement::R3] {
        let model = build_model(Variant::Expanding, params, FixLevel::Original, 1, req);
        let seq = verify(Variant::Expanding, params, FixLevel::Original, req);
        let par = ParallelChecker::new(&model)
            .threads(4)
            .check_invariant(|s| !error_predicate(&model, req)(s));
        assert_eq!(seq.holds, par.holds(), "engine disagreement on {req}");
    }
}
