//! Golden lint outcomes for the static analyzer.
//!
//! The expected finding set is the analyzer's regression oracle: every
//! machine *below* the §6.1 receive-priority fix carries the AM09
//! timeout-vs-receive overlap, and every machine at or above it is
//! free of error-severity findings — the one advisory
//! (`pid-concrete-guard` on the member machines' rank-dependent
//! takeover) is itself pinned. A new lint (or a change to the IR
//! extraction) that breaks either direction is a bug in the analyzer,
//! not in the protocols.

use accelerated_heartbeat::analyze::{lint_machine, Lint};
use accelerated_heartbeat::core::describe::DescribeMachine;
use accelerated_heartbeat::core::{CoordSpec, FixLevel, Params, RespSpec, Variant};
use accelerated_heartbeat::member::MemberSpec;

fn machine_irs(
    variant: Variant,
    fix: FixLevel,
) -> Vec<accelerated_heartbeat::core::describe::MachineIr> {
    let p = Params::new(1, 10).expect("valid params");
    vec![
        CoordSpec::new(variant, p, 1, fix).describe(),
        RespSpec::new(variant, p, fix).describe(),
        MemberSpec::new(variant, p, fix).describe(),
    ]
}

/// Every naive machine trio (no receive priority) trips the overlap
/// lint — the static shadow of the AM09 §6 counterexamples.
#[test]
fn every_naive_variant_trips_the_overlap_lint() {
    for variant in Variant::ALL {
        for fix in [FixLevel::Original, FixLevel::CorrectedBounds] {
            let findings: Vec<_> = machine_irs(variant, fix)
                .iter()
                .flat_map(lint_machine)
                .collect();
            assert!(
                findings
                    .iter()
                    .any(|f| f.lint == Lint::TimeoutReceiveOverlap),
                "{}/{:?}: expected a timeout-receive-overlap finding, got {:?}",
                variant.name(),
                fix,
                findings,
            );
        }
    }
}

/// Every fixed machine trio (receive priority on) is clean of every
/// *error-severity* finding. The member machine's deterministic
/// takeover is rank-dependent by design, so the trio legitimately
/// carries the advisory `pid-concrete-guard` — asserted present, and
/// asserted to name the takeover transitions and nothing else.
#[test]
fn every_fixed_variant_is_clean() {
    for variant in Variant::ALL {
        for fix in [FixLevel::ReceivePriority, FixLevel::Full] {
            let findings: Vec<_> = machine_irs(variant, fix)
                .iter()
                .flat_map(lint_machine)
                .collect();
            let errors: Vec<_> = findings.iter().filter(|f| !f.lint.is_advisory()).collect();
            assert!(
                errors.is_empty(),
                "{}/{:?}: expected zero error-severity findings, got {:?}",
                variant.name(),
                fix,
                errors,
            );
            let advisories: Vec<_> = findings.iter().filter(|f| f.lint.is_advisory()).collect();
            assert!(
                !advisories.is_empty(),
                "{}/{:?}: the member takeover must surface as an advisory",
                variant.name(),
                fix,
            );
            for a in advisories {
                assert_eq!(a.lint, Lint::PidConcreteGuard);
                assert!(
                    a.machine.starts_with("member/") && a.items[0].starts_with("takeover"),
                    "unexpected advisory: {a:?}",
                );
            }
        }
    }
}

/// The view-change machine inherits the §6 hazard precisely: below
/// receive priority, its time-triggered membership actions (watchdog
/// fire, takeover, broadcast, eviction) race the receives whose
/// evidence they destroy; at receive priority the side condition
/// defeats every pair.
#[test]
fn the_member_machine_inherits_the_overlap_hazard() {
    let p = Params::new(1, 10).expect("valid params");
    let naive: Vec<_> =
        lint_machine(&MemberSpec::new(Variant::Dynamic, p, FixLevel::Original).describe());
    let racing: Vec<_> = naive
        .iter()
        .filter(|f| f.lint == Lint::TimeoutReceiveOverlap)
        .map(|f| f.items[0].as_str())
        .collect();
    for t in ["watchdog-fire", "takeover", "broadcast", "evict"] {
        assert!(racing.contains(&t), "{t} must race a receive: {racing:?}");
    }
    let fixed =
        lint_machine(&MemberSpec::new(Variant::Dynamic, p, FixLevel::ReceivePriority).describe());
    let errors: Vec<_> = fixed.iter().filter(|f| !f.lint.is_advisory()).collect();
    assert!(
        errors.is_empty(),
        "expected zero error findings, got {errors:?}"
    );
}

/// The overlap findings on naive machines survive the JSON round:
/// machine-readable output carries the lint identifier CI greps for.
#[test]
fn findings_serialize_with_stable_lint_names() {
    let findings: Vec<_> = machine_irs(Variant::Binary, FixLevel::Original)
        .iter()
        .flat_map(lint_machine)
        .collect();
    assert!(!findings.is_empty());
    for f in &findings {
        let json = f.to_json();
        if f.lint.is_advisory() {
            assert!(
                json.contains("\"lint\":\"pid-concrete-guard\"")
                    && json.contains("\"severity\":\"advisory\""),
                "unexpected advisory in golden set: {json}"
            );
        } else {
            assert!(
                json.contains("\"lint\":\"timeout-receive-overlap\"")
                    && json.contains("\"severity\":\"error\""),
                "unexpected finding in golden set: {json}"
            );
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
