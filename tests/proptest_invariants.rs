//! Property-based tests of the core protocol state machines.

use accelerated_heartbeat::core::coordinator::{CoordSpec, TimeoutOutcome};
use accelerated_heartbeat::core::responder::{LeaveDecision, RespSpec};
use accelerated_heartbeat::core::{FixLevel, Heartbeat, Params, Status, Variant};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = Params> {
    (1u32..=16, 0u32..=48).prop_map(|(tmin, extra)| Params::new(tmin, tmin + extra).expect("valid"))
}

fn arb_variant() -> impl Strategy<Value = Variant> {
    prop::sample::select(Variant::ALL.to_vec())
}

/// A random environment stimulus for a coordinator or responder.
#[derive(Clone, Debug)]
enum Stim {
    Ticks(u8),
    Beat { from_offset: u8, flag: bool },
    Timeout,
    Crash,
}

fn arb_stims() -> impl Strategy<Value = Vec<Stim>> {
    prop::collection::vec(
        prop_oneof![
            (1u8..20).prop_map(Stim::Ticks),
            (any::<u8>(), any::<bool>()).prop_map(|(o, f)| Stim::Beat {
                from_offset: o,
                flag: f
            }),
            Just(Stim::Timeout),
            Just(Stim::Crash),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The halving chain: duration equals the sum of a strictly
    /// decreasing geometric-ish sequence bounded by the closed form
    /// `2*tmax - tmin'` (where `tmin' >= tmin`), and the round count is
    /// at most log2(tmax) + 1.
    #[test]
    fn halving_chain_bounds(params in arb_params()) {
        let rounds = params.silent_rounds_to_inactivation();
        let duration = params.halving_chain_duration();
        prop_assert!(rounds >= 1);
        prop_assert!(u64::from(rounds) <= 1 + u64::from(params.tmax()).ilog2() as u64 + 1);
        prop_assert!(duration >= params.tmax());
        prop_assert!(duration < 2 * params.tmax() + 1);
    }

    /// Bound algebra of §6.2: the corrected p0 bound is never larger than
    /// 3*tmax - tmin and at least 2*tmax... whichever regime, it is
    /// consistent with the halving-chain computation.
    #[test]
    fn corrected_p0_bound_consistency(params in arb_params(), variant in arb_variant()) {
        let bound = params.p0_bound_corrected(variant);
        prop_assert!(bound >= 2 * params.tmin());
        prop_assert!(bound <= 3 * params.tmax() - params.tmin());
        if 2 * params.tmin() > params.tmax() {
            prop_assert_eq!(bound, 2 * params.tmax());
        }
        if !variant.two_phase_step() {
            // chain-based sanity: tmax (receipt round) + chain duration
            // never exceeds the corrected bound
            prop_assert!(params.tmax() + params.halving_chain_duration() <= bound.max(3 * params.tmax() - params.tmin()));
        }
    }

    /// Corrected responder bounds: tighter than the original for the
    /// fixed-membership variants, larger for the join variants iff
    /// 2*tmin >= tmax (exactly the regime where the original bound is
    /// wrong).
    #[test]
    fn corrected_responder_bound_regimes(params in arb_params()) {
        let orig = params.responder_bound_original();
        let fixed_static = params.responder_bound_corrected(Variant::Static);
        let fixed_join = params.responder_bound_corrected(Variant::Expanding);
        prop_assert!(fixed_static <= orig);
        if 2 * params.tmin() > params.tmax() {
            prop_assert!(fixed_join > orig);
        } else {
            prop_assert!(fixed_join <= orig);
        }
    }

    /// The coordinator's round length always stays within [tmin, tmax]
    /// while active, whatever the environment does; status is absorbing;
    /// `elapsed` never exceeds the round length.
    #[test]
    fn coordinator_invariants(
        params in arb_params(),
        variant in arb_variant(),
        stims in arb_stims(),
    ) {
        let n = 1;
        let spec = CoordSpec::new(
            if matches!(variant, Variant::Static) { Variant::Static } else { Variant::Binary },
            params, n, FixLevel::Original,
        );
        let mut s = spec.init_state();
        let mut was_inactive = false;
        for stim in stims {
            match stim {
                Stim::Ticks(k) => {
                    for _ in 0..k {
                        if spec.may_tick(&s) { spec.tick(&mut s); }
                    }
                }
                Stim::Beat { .. } => {
                    // the non-dynamic coordinator treats every beat as a
                    // plain heartbeat
                    spec.on_heartbeat(&mut s, 1, Heartbeat::plain());
                }
                Stim::Timeout => {
                    if spec.timeout_due(&s) {
                        let _ = spec.on_timeout(&mut s);
                    }
                }
                Stim::Crash => spec.crash(&mut s),
            }
            prop_assert!(s.t >= params.tmin() && s.t <= params.tmax());
            prop_assert!(s.elapsed <= s.t);
            if was_inactive {
                prop_assert!(s.status.is_inactive(), "no resurrection");
            }
            was_inactive = s.status.is_inactive();
        }
    }

    /// Responder invariants: the watchdog clock never exceeds its bound,
    /// join beats stop after joining, statuses are absorbing, left is
    /// permanent.
    #[test]
    fn responder_invariants(
        params in arb_params(),
        variant in arb_variant(),
        fix in prop::sample::select(FixLevel::ALL.to_vec()),
        stims in arb_stims(),
    ) {
        let spec = RespSpec::new(variant, params, fix);
        let mut s = spec.init_state();
        let mut was_left = false;
        for stim in stims {
            match stim {
                Stim::Ticks(k) => {
                    for _ in 0..k {
                        if spec.may_tick(&s) { spec.tick(&mut s); }
                        else if spec.join_send_due(&s) { let _ = spec.on_join_send(&mut s); }
                        else if spec.watchdog_due(&s) { spec.on_watchdog(&mut s); }
                    }
                }
                Stim::Beat { flag, from_offset } => {
                    let dec = if from_offset % 2 == 0 { LeaveDecision::Stay } else { LeaveDecision::Leave };
                    let hb = if flag {
                        Heartbeat::plain()
                    } else {
                        Heartbeat::leave()
                    };
                    let _ = spec.on_beat(&mut s, hb, dec);
                }
                Stim::Timeout => {
                    if spec.watchdog_due(&s) { spec.on_watchdog(&mut s); }
                }
                Stim::Crash => spec.crash(&mut s),
            }
            prop_assert!(s.waiting <= spec.watchdog_bound());
            prop_assert!(s.join_elapsed <= params.tmin());
            if s.joined {
                prop_assert!(!spec.join_send_due(&s));
            }
            if was_left {
                prop_assert!(s.left, "leaving is permanent");
            }
            was_left = s.left;
            if s.left {
                prop_assert!(variant.supports_leave());
            }
        }
    }

    /// A responder that never hears from the coordinator inactivates
    /// exactly at its watchdog bound.
    #[test]
    fn starved_responder_dies_exactly_at_bound(
        params in arb_params(),
        variant in arb_variant(),
        fix in prop::sample::select(FixLevel::ALL.to_vec()),
    ) {
        let spec = RespSpec::new(variant, params, fix);
        let mut s = spec.init_state();
        let mut t = 0u32;
        loop {
            if spec.watchdog_due(&s) {
                spec.on_watchdog(&mut s);
                break;
            }
            if spec.join_send_due(&s) {
                let _ = spec.on_join_send(&mut s);
                continue;
            }
            spec.tick(&mut s);
            t += 1;
            prop_assert!(t <= spec.watchdog_bound(), "overshot the bound");
        }
        prop_assert_eq!(t, spec.watchdog_bound());
        prop_assert_eq!(s.status, Status::NvInactive);
    }

    /// A coordinator that never hears from its participant inactivates
    /// within tmax + halving_chain_duration of the start (binary).
    #[test]
    fn starved_coordinator_dies_within_chain(params in arb_params()) {
        let spec = CoordSpec::new(Variant::Binary, params, 1, FixLevel::Original);
        let mut s = spec.init_state();
        let mut t = 0u64;
        let limit = u64::from(params.tmax() + params.halving_chain_duration());
        loop {
            if spec.timeout_due(&s) {
                if matches!(spec.on_timeout(&mut s), TimeoutOutcome::Inactivated) {
                    break;
                }
                continue;
            }
            spec.tick(&mut s);
            t += 1;
            prop_assert!(t <= limit, "coordinator survived past the chain bound");
        }
        // the first round counts rcvd=true, so the total is exactly
        // tmax + halving_chain_duration
        prop_assert_eq!(t, limit);
    }
}
