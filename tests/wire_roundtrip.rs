//! Wire-codec properties: every frame round-trips byte-exactly, and no
//! truncated, oversized or corrupted input can make the decoder panic.

use accelerated_heartbeat::core::Heartbeat;
use accelerated_heartbeat::net::wire::{Command, DecodeError, Frame};
use proptest::prelude::*;

/// Any encodable frame: beats with both heartbeat flags and all control
/// commands, over the full pid range of the wire format.
fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0usize..=u16::MAX as usize, any::<bool>()).prop_map(|(src, flag)| {
            let hb = if flag {
                Heartbeat::leave()
            } else {
                Heartbeat::plain()
            };
            Frame::beat(src, hb)
        }),
        (0usize..=u16::MAX as usize, 0u8..3).prop_map(|(src, c)| {
            let cmd = match c {
                0 => Command::Crash,
                1 => Command::Leave,
                _ => Command::Shutdown,
            };
            Frame::control(src, cmd)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_frame_round_trips(frame in any_frame()) {
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(Frame::decode_datagram(&bytes).expect("datagram"), frame);
    }

    #[test]
    fn every_truncation_is_rejected_without_panic(frame in any_frame()) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(DecodeError::Truncated) => {}
                other => prop_assert!(false, "cut {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn trailing_garbage_fails_datagrams_but_not_streams(
        frame in any_frame(),
        extra in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = frame.encode();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&extra);
        // Stream decoding consumes exactly one frame and reports its length...
        let (decoded, used) = Frame::decode(&bytes).expect("prefix intact");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, clean_len);
        // ...while datagram decoding insists the frame fills the packet.
        prop_assert_eq!(Frame::decode_datagram(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Any outcome is fine; panicking or reading out of bounds is not.
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_datagram(&bytes);
    }

    #[test]
    fn corrupting_one_byte_never_panics_and_never_misdecodes_src(
        frame in any_frame(),
        pos in 0usize..7,
        xor in 1u8..=255,
    ) {
        let mut bytes = frame.encode();
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= xor;
        if let Ok((decoded, _)) = Frame::decode(&bytes) {
            // A surviving decode is only acceptable if it reproduces its
            // own encoding (the codec stays canonical under corruption).
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(len in 65u16..=u16::MAX) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.resize(16, 0);
        prop_assert_eq!(Frame::decode(&bytes), Err(DecodeError::Oversized(len as usize)));
    }
}

/// The proptest! shim needs `Arbitrary` for u8; exercise the boundary
/// frames explicitly so the corner cases never depend on random draws.
#[test]
fn boundary_pids_round_trip() {
    for src in [0, 1, usize::from(u16::MAX)] {
        for frame in [
            Frame::beat(src, Heartbeat::plain()),
            Frame::beat(src, Heartbeat::leave()),
            Frame::control(src, Command::Shutdown),
        ] {
            assert_eq!(Frame::decode_datagram(&frame.encode()), Ok(frame));
        }
    }
}
