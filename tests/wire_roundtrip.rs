//! Wire-codec properties: every frame round-trips byte-exactly, and no
//! truncated, oversized or corrupted input can make the decoder panic.

use accelerated_heartbeat::core::view::{View, MAX_VIEW_MEMBERS};
use accelerated_heartbeat::core::Heartbeat;
use accelerated_heartbeat::net::wire::{Command, DecodeError, Frame, WIRE_VERSION};
use proptest::prelude::*;

/// Any encodable frame: beats with both heartbeat flags over the full
/// epoch range, and all control commands, over the full pid range of
/// the wire format.
fn any_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (0usize..=u16::MAX as usize, any::<bool>(), any::<u8>()).prop_map(|(src, flag, epoch)| {
            let hb = if flag {
                Heartbeat::leave()
            } else {
                Heartbeat::plain()
            };
            Frame::beat(src, hb.with_epoch(epoch))
        }),
        (0usize..=u16::MAX as usize, 0u8..4).prop_map(|(src, c)| {
            let cmd = match c {
                0 => Command::Crash,
                1 => Command::Leave,
                2 => Command::Shutdown,
                _ => Command::Revive,
            };
            Frame::control(src, cmd)
        }),
    ]
}

/// Any canonical view: 1..=MAX_VIEW_MEMBERS strictly ascending member
/// pids with per-member bars, coordinated by one of the members.
fn any_view() -> impl Strategy<Value = View> {
    (
        prop::collection::vec(
            (0usize..=u16::MAX as usize, any::<u8>()),
            1..MAX_VIEW_MEMBERS + 1,
        ),
        any::<u32>(),
        any::<u16>(),
    )
        .prop_map(|(raw, view_no, coord_pick)| {
            let mut entries = raw;
            entries.sort_by_key(|e| e.0);
            entries.dedup_by_key(|e| e.0);
            let coordinator = entries[usize::from(coord_pick) % entries.len()].0;
            View::new(view_no, coordinator, &entries)
        })
}

/// Every frame kind of the wire format, including the membership frames
/// [`any_frame`] leaves out.
fn any_frame_any_kind() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any_frame(),
        (0usize..=u16::MAX as usize, any_view())
            .prop_map(|(src, view)| Frame::view_change(src, view)),
        (0usize..=u16::MAX as usize, any_view())
            .prop_map(|(src, view)| Frame::state_reply(src, view)),
        (0usize..=u16::MAX as usize, any::<u8>(), any::<u32>())
            .prop_map(|(src, epoch, view_no)| Frame::state_request(src, epoch, view_no)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn every_frame_round_trips(frame in any_frame()) {
        let bytes = frame.encode();
        let (decoded, used) = Frame::decode(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(Frame::decode_datagram(&bytes).expect("datagram"), frame);
    }

    #[test]
    fn every_truncation_is_rejected_without_panic(frame in any_frame()) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(DecodeError::Truncated) => {}
                other => prop_assert!(false, "cut {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn trailing_garbage_fails_datagrams_but_not_streams(
        frame in any_frame(),
        extra in prop::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut bytes = frame.encode();
        let clean_len = bytes.len();
        bytes.extend_from_slice(&extra);
        // Stream decoding consumes exactly one frame and reports its length...
        let (decoded, used) = Frame::decode(&bytes).expect("prefix intact");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, clean_len);
        // ...while datagram decoding insists the frame fills the packet.
        prop_assert_eq!(Frame::decode_datagram(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // Any outcome is fine; panicking or reading out of bounds is not.
        let _ = Frame::decode(&bytes);
        let _ = Frame::decode_datagram(&bytes);
    }

    #[test]
    fn corrupting_one_byte_never_panics_and_never_misdecodes_src(
        frame in any_frame(),
        pos in 0usize..8,
        xor in 1u8..=255,
    ) {
        let mut bytes = frame.encode();
        prop_assume!(pos < bytes.len());
        bytes[pos] ^= xor;
        if let Ok((decoded, _)) = Frame::decode(&bytes) {
            // A surviving decode is only acceptable if it reproduces its
            // own encoding (the codec stays canonical under corruption).
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected(len in 65u16..=u16::MAX) {
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.resize(16, 0);
        prop_assert_eq!(Frame::decode(&bytes), Err(DecodeError::Oversized(len as usize)));
    }

    #[test]
    fn the_epoch_byte_survives_every_beat_round_trip(
        src in 0usize..=u16::MAX as usize,
        flag in any::<bool>(),
        epoch in any::<u8>(),
    ) {
        let hb = if flag { Heartbeat::leave() } else { Heartbeat::plain() };
        let frame = Frame::beat(src, hb.with_epoch(epoch));
        let bytes = frame.encode();
        // The epoch is the final body byte.
        prop_assert_eq!(*bytes.last().unwrap(), epoch);
        match Frame::decode_datagram(&bytes).expect("own encoding must decode") {
            Frame::Beat { hb, .. } => prop_assert_eq!(hb.epoch, epoch),
            other => prop_assert!(false, "beat decoded as {:?}", other),
        }
    }

    /// Pre-epoch (version-1) frames — 5-byte body, no trailing epoch —
    /// must surface as a version mismatch, never as truncation, garbage
    /// kinds, or (worst) a misparsed epoch.
    #[test]
    fn version_one_frames_are_rejected_as_version_errors(
        kind in 0u8..2,
        src in any::<u16>(),
        payload in 0u8..4,
    ) {
        let mut v1 = vec![5u8, 0, 1, kind];
        v1.extend_from_slice(&src.to_le_bytes());
        v1.push(payload);
        prop_assert_eq!(Frame::decode(&v1), Err(DecodeError::Version(1)));
        prop_assert_eq!(Frame::decode_datagram(&v1), Err(DecodeError::Version(1)));
    }

    /// The version byte is checked before the body layout: whatever
    /// length a foreign-version frame claims, the error is Version.
    #[test]
    fn foreign_versions_are_rejected_whatever_the_body_length(
        version in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..16),
    ) {
        prop_assume!(version != WIRE_VERSION);
        let len = (body.len() + 1) as u16;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.push(version);
        bytes.extend_from_slice(&body);
        prop_assert_eq!(Frame::decode(&bytes), Err(DecodeError::Version(version)));
    }
}

/// Drain a byte stream frame by frame, the way a TCP-style reader would:
/// decode at the front, consume `used`, repeat. Returns the decoded
/// frames and the undecodable tail (empty, a truncated prefix awaiting
/// more bytes, or garbage).
fn drain_stream(mut bytes: &[u8]) -> (Vec<Frame>, &[u8]) {
    let mut frames = Vec::new();
    while !bytes.is_empty() {
        match Frame::decode(bytes) {
            Ok((frame, used)) => {
                frames.push(frame);
                bytes = &bytes[used..];
            }
            Err(_) => break,
        }
    }
    (frames, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // -- Adversarial streams: the network may concatenate, duplicate, --
    // -- reorder, or truncate frames; the reader must never panic and --
    // -- must never invent frame boundaries that were not sent.       --

    #[test]
    fn concatenated_frames_never_misframe(
        frames in prop::collection::vec(any_frame(), 0..12),
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let (decoded, rest) = drain_stream(&stream);
        prop_assert_eq!(decoded, frames);
        prop_assert!(rest.is_empty(), "nothing may be left over");
    }

    #[test]
    fn duplicated_frames_survive_framing(
        frame in any_frame(),
        copies in 2usize..8,
    ) {
        let mut stream = Vec::new();
        for _ in 0..copies {
            stream.extend_from_slice(&frame.encode());
        }
        let (decoded, rest) = drain_stream(&stream);
        prop_assert_eq!(decoded.len(), copies);
        prop_assert!(decoded.iter().all(|f| *f == frame));
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn reordered_frames_keep_their_boundaries(
        frames in prop::collection::vec(any_frame(), 2..10),
        rot in 1usize..9,
    ) {
        // Reordering is delivery-order permutation, not byte shuffling:
        // any rotation of the frame sequence must still frame cleanly.
        let mut reordered = frames.clone();
        reordered.rotate_left(rot % frames.len());
        let mut stream = Vec::new();
        for f in &reordered {
            stream.extend_from_slice(&f.encode());
        }
        let (decoded, rest) = drain_stream(&stream);
        prop_assert_eq!(decoded, reordered);
        prop_assert!(rest.is_empty());
    }

    #[test]
    fn truncated_streams_resume_after_the_missing_bytes_arrive(
        frames in prop::collection::vec(any_frame(), 1..8),
        cut_back in 1usize..7,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let last_len = frames.last().unwrap().encode().len();
        let cut = stream.len() - (cut_back % last_len).max(1);
        // First read: everything before the torn final frame, and only that.
        let (head, rest) = drain_stream(&stream[..cut]);
        prop_assert_eq!(&head[..], &frames[..frames.len() - 1]);
        prop_assert_eq!(Frame::decode(rest), Err(DecodeError::Truncated));
        // The tail completes once the remaining bytes arrive.
        let mut tail = rest.to_vec();
        tail.extend_from_slice(&stream[cut..]);
        let (completed, left) = drain_stream(&tail);
        prop_assert_eq!(&completed[..], &frames[frames.len() - 1..]);
        prop_assert!(left.is_empty());
    }

    #[test]
    fn corrupted_concatenations_never_panic_and_stay_canonical(
        frames in prop::collection::vec(any_frame(), 1..6),
        pos in 0usize..64,
        xor in 1u8..=255,
    ) {
        let mut stream = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let at = pos % stream.len();
        stream[at] ^= xor;
        // Whatever the reader salvages must be canonical re-encodings of
        // what it consumed — it may stop early, it may not invent data.
        let (decoded, rest) = drain_stream(&stream);
        let mut reencoded = Vec::new();
        for f in &decoded {
            reencoded.extend_from_slice(&f.encode());
        }
        prop_assert_eq!(reencoded.len() + rest.len(), stream.len());
        prop_assert_eq!(&stream[..reencoded.len()], &reencoded[..]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `encode_into` is the hot-path encoder: for every frame kind it
    /// must produce byte-for-byte what `encode` returns, regardless of
    /// what garbage the reused buffer held before the call.
    #[test]
    fn encode_into_matches_encode_on_any_dirty_buffer(
        frame in any_frame_any_kind(),
        dirt in prop::collection::vec(any::<u8>(), 0..80),
    ) {
        let fresh = frame.encode();
        let mut reused = dirt;
        frame.encode_into(&mut reused);
        prop_assert_eq!(&reused, &fresh);
        // And the reused buffer still decodes to the same frame.
        let (decoded, used) = Frame::decode(&reused).expect("own encoding must decode");
        prop_assert_eq!(decoded, frame);
        prop_assert_eq!(used, fresh.len());
        // Back-to-back reuse without clearing in between: the second
        // encoding fully replaces the first.
        frame.encode_into(&mut reused);
        prop_assert_eq!(reused, fresh);
    }
}

/// The proptest! shim needs `Arbitrary` for u8; exercise the boundary
/// frames explicitly so the corner cases never depend on random draws.
#[test]
fn boundary_pids_round_trip() {
    for src in [0, 1, usize::from(u16::MAX)] {
        for frame in [
            Frame::beat(src, Heartbeat::plain()),
            Frame::beat(src, Heartbeat::leave()),
            Frame::beat(src, Heartbeat::plain().with_epoch(u8::MAX)),
            Frame::control(src, Command::Shutdown),
            Frame::control(src, Command::Revive),
        ] {
            assert_eq!(Frame::decode_datagram(&frame.encode()), Ok(frame));
        }
    }
}
