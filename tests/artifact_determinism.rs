//! The checked-in `artifacts/` are byte-pinned: regenerating each one
//! in process must reproduce it exactly. This is the repo's contract
//! that sim runs are deterministic functions of their plan — any hot
//! path change that perturbs RNG consumption order, event ordering, or
//! serialization shows up here as a byte diff, not as a silent drift
//! the campaign differ later has to explain.
//!
//! Only the sim-backend artifacts are pinned here (fast, thread-free);
//! `scripts/ci.sh` re-derives the live counterparts through the
//! emitter, which gates them the same way.

use accelerated_heartbeat::chaos::{
    run_campaign, run_failover_campaign, run_rejoin_demo, Backend, CampaignSpec,
};
use accelerated_heartbeat::core::{FixLevel, Params, Variant};

/// The seed behind the checked-in rejoin artifacts (mirrors the
/// `chaos_campaign` example's `REJOIN_SEED`).
const REJOIN_SEED: u64 = 1;

fn checked_in(name: &str) -> String {
    let path = format!("{}/artifacts/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn rejoin_sim_artifact_is_byte_identical() {
    let demo = run_rejoin_demo(Backend::Sim, REJOIN_SEED);
    assert_eq!(
        format!("{}\n", demo.to_json()),
        checked_in("rejoin_sim.json"),
        "rejoin_sim.json drifted from the checked-in golden"
    );
}

#[test]
fn failover_sim_artifact_is_byte_identical() {
    let report = run_failover_campaign(Backend::Sim);
    assert_eq!(
        format!("{}\n", report.to_json()),
        checked_in("failover_sim.json"),
        "failover_sim.json drifted from the checked-in golden"
    );
}

/// The grid behind `artifacts/campaign_gm98_sim.json` (the
/// `chaos_campaign` example's `full_spec` for the sim backend, with
/// `--monitor` on — the configuration the artifact was emitted with).
fn gm98_grid() -> CampaignSpec {
    CampaignSpec {
        name: "gm98-grid".into(),
        backend: Backend::Sim,
        variant: Variant::Binary,
        params: Params::new(2, 8).expect("valid"),
        n: 1,
        duration: 2_000,
        fixes: vec![
            FixLevel::Original,
            FixLevel::ReceivePriority,
            FixLevel::Full,
        ],
        loss: vec![0.0, 0.02, 0.05],
        burst: vec![2.0],
        drift: vec![(1, 1), (101, 100)],
        partition: vec![0, 8],
        seeds: (1..=10).collect(),
        threads: 2,
        monitor: true,
    }
}

#[test]
fn campaign_sim_artifact_is_byte_identical() {
    let report = run_campaign(&gm98_grid());
    assert_eq!(
        format!("{}\n", report.to_json()),
        checked_in("campaign_gm98_sim.json"),
        "campaign_gm98_sim.json drifted from the checked-in golden"
    );
}
