//! Integration: the extension layers (liveness, symmetry reduction,
//! rejoin) working together across crates.

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::liveness::{
    check_eventual_inactivation, network_crash, network_down,
};
use accelerated_heartbeat::verify::rejoin_model::{rejoin_results, RejoinModel};
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate, Requirement};
use accelerated_heartbeat::verify::symmetry::canonical;
use accelerated_heartbeat::verify::HbModel;
use mck::liveness::check_leads_to;
use mck::symmetry::Symmetric;
use mck::Checker;

#[test]
fn liveness_holds_while_bounded_r1_fails_same_configuration() {
    // The sharpest statement of what the 2009 paper refutes: at (1,4) the
    // original binary protocol violates the *timed* requirement R1, yet
    // the *untimed* GM98 eventuality still holds on the very same model.
    let params = Params::new(1, 4).unwrap();
    let r1 = accelerated_heartbeat::verify::verify(
        Variant::Binary,
        params,
        FixLevel::Original,
        Requirement::R1,
    );
    assert!(!r1.holds, "the timed bound is wrong");
    let live = check_eventual_inactivation(Variant::Binary, params, FixLevel::Original, 1, 1 << 22);
    assert!(live.holds(), "the untimed eventuality is sound");
}

#[test]
fn liveness_under_symmetry_reduction_static_n2() {
    // Compose the two reductions: the leads-to check run on the symmetry
    // quotient must agree with the full model (both predicates are
    // permutation-invariant).
    let params = Params::new(1, 3).unwrap();
    let model = HbModel::new(Variant::Static, params, 2, FixLevel::Original);
    let full = check_leads_to(&model, network_crash, network_down, 1 << 22);
    let sym = Symmetric::new(&model, canonical);
    let reduced = check_leads_to(&sym, network_crash, network_down, 1 << 22);
    assert!(full.holds());
    assert!(reduced.holds());
}

#[test]
fn symmetry_preserves_r2_verdict_at_the_race_point() {
    // tmin = tmax: R2 is violated; the quotient must find it too, at the
    // same depth.
    let params = Params::new(3, 3).unwrap();
    let model = build_model(
        Variant::Static,
        params,
        FixLevel::Original,
        2,
        Requirement::R2,
    );
    let pred = error_predicate(&model, Requirement::R2);
    let full = Checker::new(&model).find_state(&pred).expect("violated");
    let sym = Symmetric::new(&model, canonical);
    let reduced = Checker::new(&sym).find_state(&pred).expect("violated");
    assert_eq!(full.len(), reduced.len());
}

#[test]
fn rejoin_grid_is_stable_across_parameters() {
    for (tmin, tmax) in [(2u32, 4u32), (1, 4), (2, 2)] {
        let r = rejoin_results(Params::new(tmin, tmax).unwrap());
        assert!(
            !r.naive_coordinator_safe,
            "({tmin},{tmax}): naive rejoin must be racy"
        );
        assert!(
            r.epoch_participant_safe && r.epoch_coordinator_safe,
            "({tmin},{tmax}): epochs must repair it"
        );
    }
}

#[test]
fn epoch_rejoin_network_still_detects_crashes() {
    // The epoch extension must not break the protocol's purpose: a crash
    // of an enrolled participant still leads to full inactivation.
    // (Fault-free rejoin model has no crash action, so check the liveness
    // on the *base* dynamic protocol with leaves enabled — the rejoin
    // coordinator's acceleration logic is the same code path — plus the
    // rejoin model's own deadlock freedom.)
    let params = Params::new(2, 4).unwrap();
    let live = check_eventual_inactivation(Variant::Dynamic, params, FixLevel::Full, 1, 1 << 22);
    assert!(live.holds());
    let model = RejoinModel::new(params, 1, true, 2);
    let graph = mck::graph::StateGraph::explore(&model, 1 << 21);
    assert!(!graph.truncated);
    assert_eq!(graph.stats().deadlocks, 0);
}
