//! Integration: the multi-party protocols with more than one participant.
//!
//! The table reproduction uses `n = 1` (the paper's verdicts do not depend
//! on `n`); these tests spot-check that claim with `n = 2` and `n = 3`.

use accelerated_heartbeat::core::{FixLevel, Params, Status, Variant};
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate};
use accelerated_heartbeat::verify::{verify_with_n, Requirement};
use mck::Checker;

#[test]
fn static_n2_matches_n1_verdicts_on_r2_r3() {
    for (tmin, tmax, expected) in [(5u32, 10u32, true), (10, 10, false)] {
        let params = Params::new(tmin, tmax).unwrap();
        for req in [Requirement::R2, Requirement::R3] {
            let v = verify_with_n(Variant::Static, params, FixLevel::Original, req, 2);
            assert_eq!(v.holds, expected, "static n=2 {req} at tmin={tmin}");
        }
    }
}

#[test]
fn expanding_n2_matches_n1_verdicts_on_r2() {
    for (tmin, tmax, expected) in [(4u32, 10u32, true), (5, 10, false)] {
        let params = Params::new(tmin, tmax).unwrap();
        let v = verify_with_n(
            Variant::Expanding,
            params,
            FixLevel::Original,
            Requirement::R2,
            2,
        );
        assert_eq!(v.holds, expected, "expanding n=2 R2 at tmin={tmin}");
    }
}

#[test]
fn dynamic_n2_fixed_passes_r2_r3() {
    let params = Params::new(3, 4).unwrap();
    for req in [Requirement::R2, Requirement::R3] {
        let v = verify_with_n(Variant::Dynamic, params, FixLevel::Full, req, 2);
        assert!(v.holds, "dynamic n=2 fixed {req}");
    }
}

#[test]
fn static_n3_r3_holds_below_tmax() {
    let params = Params::new(2, 4).unwrap();
    let v = verify_with_n(
        Variant::Static,
        params,
        FixLevel::Original,
        Requirement::R3,
        3,
    );
    assert!(v.holds, "{:?}", v.stats);
}

#[test]
fn static_n2_one_crash_still_brings_down_coordinator() {
    // The GM98 goal with several participants: one participant's crash
    // eventually inactivates p[0] even though the other keeps replying.
    let params = Params::new(1, 4).unwrap();
    let model = build_model(
        Variant::Static,
        params,
        FixLevel::Original,
        2,
        Requirement::R2,
    )
    .allow_crashes(false)
    .crashable(1, true);
    let path = Checker::new(&model).find_state(|s| s.coord.status == Status::NvInactive);
    assert!(
        path.is_some(),
        "p[0] must be able to inactivate after p[1]'s crash"
    );
    // ... and in that run the second participant was never the cause:
    let path = path.unwrap();
    assert!(path
        .states()
        .iter()
        .all(|s| s.resps[1].status != Status::Crashed));
}

#[test]
fn expanding_coordinator_only_dies_because_of_a_joined_participant() {
    // With crashes allowed, the coordinator can be starved into
    // non-voluntary inactivation — but never by a participant it has not
    // heard from: `p[0] NV-inactive` implies some participant had joined.
    let params = Params::new(2, 4).unwrap();
    let model = build_model(
        Variant::Expanding,
        params,
        FixLevel::Full,
        2,
        Requirement::R3,
    )
    .allow_crashes(true)
    .allow_loss(true);
    let bad = Checker::new(&model)
        .find_state(|s| s.coord.status == Status::NvInactive && s.coord.jnd.iter().all(|j| !j));
    assert!(
        bad.is_none(),
        "p[0] inactivated without any joined participant"
    );
    // Silence the unused-import lint for error_predicate in this module.
    let _ = error_predicate(&model, Requirement::R3);
}
