//! Property-based cross-validation between the analytic bounds, the
//! discrete-event simulator and the model checker — three independent
//! implementations of the same semantics must agree.

use accelerated_heartbeat::core::{FixLevel, Params, Status, Variant};
use accelerated_heartbeat::sim::{run_scenario, Scenario};
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate, Requirement};
use mck::sim::{check_invariant_by_walks, WalkOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = Params> {
    (1u32..=6, 0u32..=6)
        .prop_map(|(tmin, extra)| Params::new(tmin, tmin + extra).expect("tmin <= tmax"))
}

fn arb_variant() -> impl Strategy<Value = Variant> {
    prop::sample::select(Variant::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free simulation never inactivates anything (the sim analogue
    /// of R2 ∧ R3) — for the *fixed* protocols on any parameters.
    #[test]
    fn sim_fixed_lossless_never_inactivates(
        params in arb_params(),
        variant in arb_variant(),
        seed in 0u64..1000,
    ) {
        let sc = Scenario::steady_state(variant, params, 400)
            .with_fix(FixLevel::Full);
        let report = run_scenario(&sc, seed);
        prop_assert_eq!(report.false_inactivations, 0);
        prop_assert!(report.nv_inactivations.is_empty());
    }

    /// For the *original* protocols the same holds whenever
    /// `tmin < tmax` (the paper's R2/R3 verdicts: violations need
    /// `tmin = tmax`, except the expanding/dynamic join window
    /// `2·tmin >= tmax`).
    #[test]
    fn sim_original_lossless_safe_region(
        params in arb_params(),
        seed in 0u64..1000,
    ) {
        prop_assume!(params.tmin() < params.tmax());
        let sc = Scenario::steady_state(Variant::Binary, params, 400);
        let report = run_scenario(&sc, seed);
        prop_assert!(report.nv_inactivations.is_empty());
    }

    /// Simulated detection delays respect the corrected analytic bounds.
    #[test]
    fn sim_detection_within_corrected_bounds(
        params in arb_params(),
        variant in arb_variant(),
        seed in 0u64..1000,
        phase in 0u32..16,
    ) {
        let crash_at = u64::from(3 * params.tmax() + phase);
        let sc = Scenario::crash_at(variant, params, 1, crash_at)
            .with_fix(FixLevel::Full);
        let report = run_scenario(&sc, seed);
        let delay = report.detection_delay.expect("fixed protocol must detect");
        let bound = u64::from(
            params.p0_bound_corrected(variant)
                + params.tmin()
                + params.responder_bound_corrected(variant),
        );
        prop_assert!(delay <= bound, "delay {} > bound {}", delay, bound);
    }

    /// Random walks through the fixed fault-free *model* never see a
    /// spurious inactivation (smoke-test agreement between walker and
    /// exhaustive checker).
    #[test]
    fn model_walks_fixed_protocols_stay_safe(
        params in arb_params(),
        variant in arb_variant(),
        seed in 0u64..1000,
    ) {
        let model = build_model(variant, params, FixLevel::Full, 1, Requirement::R2);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = check_invariant_by_walks(&model, &mut rng, 3, 300, |s| {
            !error_predicate(&model, Requirement::R2)(s)
                && s.coord.status != Status::NvInactive
        });
        let ok = matches!(out, WalkOutcome::NoViolationFound { .. });
        prop_assert!(ok, "walk hit a spurious inactivation");
    }

    /// The simulator's steady-state message rate converges to 2/tmax.
    #[test]
    fn sim_rate_tracks_two_over_tmax(seed in 0u64..100, tmax in 4u32..=32) {
        let params = Params::new(2, tmax).unwrap();
        let sc = Scenario::steady_state(Variant::Binary, params, 20_000);
        let rate = run_scenario(&sc, seed).message_rate();
        let expected = 2.0 / f64::from(tmax);
        prop_assert!(
            (rate - expected).abs() / expected < 0.10,
            "rate {} vs expected {}", rate, expected
        );
    }

    /// Reliability exponent: with loss probability p, the chance that a
    /// single round of k = silent_rounds_to_inactivation() consecutive
    /// beats is all-lost is p^k — for moderate horizons and small p the
    /// accelerated protocol survives where a 1-loss-tolerant one would
    /// not. (Statistical smoke check, not a sharp bound.)
    #[test]
    fn sim_survives_light_loss(seed in 0u64..50) {
        let params = Params::new(1, 16).unwrap(); // tolerates 4 losses
        let sc = Scenario::lossy(Variant::Binary, params, 0.02, 5_000);
        let report = run_scenario(&sc, seed);
        prop_assert_eq!(report.false_inactivations, 0);
    }
}

// -- Promoted proptest regressions ----------------------------------
//
// The two seeds checked in to `cross_validation.proptest-regressions`
// both shrink to `Params { tmin: 1, tmax: 1 }` — the legal degenerate
// point where the halving chain is a single round (`Params::new`
// accepts any `0 < tmin ≤ tmax`). They are promoted here to named,
// always-run deterministic tests so the corner stays covered even if
// the regression file is pruned or proptest's replay order changes.

/// Regression: `sim_fixed_lossless_never_inactivates` once failed at
/// `tmin = tmax = 1`, binary, seed 0 — the fixed protocol must stay
/// quiet even when every round is exactly one tick.
#[test]
fn regression_tmin_eq_tmax_fixed_lossless_never_inactivates() {
    let params = Params::new(1, 1).unwrap();
    let sc = Scenario::steady_state(Variant::Binary, params, 400).with_fix(FixLevel::Full);
    let report = run_scenario(&sc, 0);
    assert_eq!(report.false_inactivations, 0);
    assert!(
        report.nv_inactivations.is_empty(),
        "spurious inactivations: {:?}",
        report.nv_inactivations
    );
}

/// Regression: `sim_detection_within_corrected_bounds` once failed at
/// `tmin = tmax = 1`, binary, seed 0, phase 2 (crash at t = 5) — the
/// corrected bound must hold all the way down to one-tick rounds.
#[test]
fn regression_tmin_eq_tmax_detection_within_corrected_bound() {
    let params = Params::new(1, 1).unwrap();
    let crash_at = u64::from(3 * params.tmax() + 2);
    let sc = Scenario::crash_at(Variant::Binary, params, 1, crash_at).with_fix(FixLevel::Full);
    let report = run_scenario(&sc, 0);
    let delay = report.detection_delay.expect("fixed protocol must detect");
    let bound = u64::from(
        params.p0_bound_corrected(Variant::Binary)
            + params.tmin()
            + params.responder_bound_corrected(Variant::Binary),
    );
    assert!(delay <= bound, "delay {delay} > bound {bound}");
}

#[test]
fn sim_and_model_agree_on_the_tmin_eq_tmax_race() {
    // The model checker says R3 is violated at tmin = tmax (Fig 12); the
    // simulator, whose tie-breaking is randomized, must be able to hit the
    // same race across seeds.
    let params = Params::new(4, 4).unwrap();
    let mut hits = 0;
    for seed in 0..400 {
        let sc = Scenario::steady_state(Variant::Binary, params, 400);
        let report = run_scenario(&sc, seed);
        if report
            .nv_inactivations
            .iter()
            .any(|&(pid, _)| pid == 0 || pid == 1)
        {
            hits += 1;
        }
    }
    assert!(hits > 0, "the simulator never exhibited the tmin=tmax race");
    // ...and the fixed protocol never does:
    for seed in 0..400 {
        let sc = Scenario::steady_state(Variant::Binary, params, 400).with_fix(FixLevel::Full);
        let report = run_scenario(&sc, seed);
        assert!(
            report.nv_inactivations.is_empty(),
            "fixed race at seed {seed}"
        );
    }
}
