//! End-to-end membership scenarios across both substrates.
//!
//! Pins the `hb-member` engine's promise (see `crates/hb-member/src/engine.rs`):
//! the simulated and the live runtime execute the same harness, so a
//! golden coordinator-crash plan yields *byte-identical* view-change
//! event streams on both — and the membership semantics (concurrent
//! rejoins mid-view-change, state transfer to a late joiner) hold on the
//! live substrate, not just in the simulator.

use accelerated_heartbeat::chaos::{failover_plan, run_plan_member, Backend};
use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::core::Params;
use accelerated_heartbeat::member::{
    run_live, FaultKind, MemberConfig, MemberFault, MemberReport, MemberSpec, RoleKind,
};

fn spec() -> MemberSpec {
    MemberSpec::dynamic_full(Params::new(2, 8).unwrap())
}

fn fault(at: u64, kind: FaultKind, pid: usize) -> MemberFault {
    MemberFault { at, kind, pid }
}

/// Just the membership frames of a run, one line per event.
fn view_stream(report: &MemberReport) -> String {
    report
        .events
        .events()
        .iter()
        .filter(|e| matches!(e, Event::ViewChange { .. } | Event::StateTransfer { .. }))
        .map(|e| format!("{e}\n"))
        .collect()
}

/// Two crash victims revive while the group is still mid-failover: both
/// joiners request state concurrently, the new coordinator admits both,
/// and the group converges on one view containing everybody.
#[test]
fn concurrent_joins_during_a_view_change_converge() {
    let mut cfg = MemberConfig::clean(spec(), 5, 21, 900);
    cfg.faults = vec![
        fault(40, FaultKind::Crash, 3),
        fault(60, FaultKind::Crash, 4),
        fault(300, FaultKind::Crash, 0),
        // Revive both victims right as the failover view change runs.
        fault(320, FaultKind::Revive, 3),
        fault(324, FaultKind::Revive, 4),
    ];
    let report = run_live(cfg, None, Vec::new());

    // Pid 1 took over; the concurrent joiners are plain participants.
    assert_eq!(report.roles[1], RoleKind::Coordinator);
    assert_eq!(report.roles[3], RoleKind::Participant);
    assert_eq!(report.roles[4], RoleKind::Participant);
    assert!(report.agreed(), "one view, no split: {:?}", report.views);
    assert!(!report.views[1].contains(0), "the crashed coordinator left");
    assert!(report.views[1].contains(3) && report.views[1].contains(4));

    // Both concurrent admissions shipped state from the *new* coordinator.
    for joiner in [3, 4] {
        assert!(
            report
                .events
                .events()
                .iter()
                .any(|e| matches!(e, Event::StateTransfer { from: 1, to, .. } if *to == joiner)),
            "no state transfer to pid {joiner}"
        );
    }
    // Every fault has a resolved two-sided sample.
    for s in &report.reconv {
        assert!(s.detect.is_some() && s.stable.is_some(), "unresolved {s:?}");
    }
}

/// A victim that stays down for most of the run still gets the full
/// current view (with its fresh epoch as the bar) when it finally asks.
#[test]
fn state_transfer_reaches_a_late_joiner() {
    let mut cfg = MemberConfig::clean(spec(), 4, 22, 1000);
    cfg.faults = vec![
        fault(50, FaultKind::Crash, 2),
        fault(700, FaultKind::Revive, 2),
    ];
    let report = run_live(cfg, None, Vec::new());

    assert_eq!(report.roles[2], RoleKind::Participant);
    assert!(report.agreed());
    assert!(report.views[2].contains(2), "joiner is in its own view");
    assert_eq!(
        report.views[2].bar_of(2),
        Some(1),
        "the bar is the second incarnation"
    );
    // The transfer came from the incumbent coordinator and carried the
    // view the group actually agrees on.
    let shipped = report
        .events
        .events()
        .iter()
        .find_map(|e| match e {
            Event::StateTransfer {
                from: 0,
                to: 2,
                view_no,
                ..
            } => Some(*view_no),
            _ => None,
        })
        .expect("a state transfer to the late joiner");
    assert_eq!(shipped, report.views[2].view_no);
}

/// The golden coordinator-crash plan (the `--failover` campaign's lossy
/// cell) produces byte-identical view-change streams on both substrates.
#[test]
fn sim_and_live_view_change_streams_are_byte_identical() {
    let plan = failover_plan(0.05, 1);
    let sim = run_plan_member(&plan, Backend::Sim);
    let live = run_plan_member(&plan, Backend::Live);

    let stream = view_stream(&sim.report);
    assert_eq!(stream, view_stream(&live.report), "substrates diverged");

    // The stream tells the §I failover story in order: genesis, the
    // crash-triggered view change to coordinator 1, then the revived
    // ex-coordinator's state transfer and readmission.
    let lines: Vec<&str> = stream.lines().collect();
    assert!(lines.len() >= 4, "too few membership frames: {stream}");
    let installs: Vec<_> = sim
        .report
        .events
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::ViewChange {
                view_no,
                coordinator,
                ..
            } => Some((*view_no, *coordinator)),
            _ => None,
        })
        .collect();
    assert!(
        installs.starts_with(&[(0, 0)]),
        "genesis first: {installs:?}"
    );
    assert!(
        installs.contains(&(1, 1)) || installs.iter().any(|&(v, c)| v >= 1 && c == 1),
        "failover view coordinated by pid 1: {installs:?}"
    );
    assert!(
        sim.report
            .events
            .events()
            .iter()
            .any(|e| matches!(e, Event::StateTransfer { from: 1, to: 0, .. })),
        "the demoted ex-coordinator got state from its successor"
    );
    // And the summaries agree modulo the substrate label.
    let mut s = sim.summary.clone();
    s.source = live.summary.source;
    assert_eq!(s, live.summary);
}
