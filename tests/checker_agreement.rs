//! Integration: the three exploration engines (sequential BFS, parallel
//! BFS, DFS) and the random walker agree with each other on the heartbeat
//! models, and the LTS pipeline is self-consistent.

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::requirements::{build_model, error_predicate, Requirement};
use accelerated_heartbeat::verify::solo::{p0_raw_lts, p0_reduced_lts};
use mck::dfs::{Dfs, DfsOutcome};
use mck::parallel::ParallelChecker;
use mck::sim::random_walk;
use mck::{Checker, Model};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn engines_agree_on_state_counts() {
    for (tmin, tmax) in [(1u32, 3u32), (2, 4), (3, 3)] {
        let params = Params::new(tmin, tmax).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R2,
        );
        let seq = Checker::new(&model).check_invariant(|_| true);
        let par = ParallelChecker::new(&model)
            .threads(4)
            .check_invariant(|_| true);
        let dfs = Dfs::new(&model).find(|_| false);
        assert_eq!(seq.stats().states, par.stats().states, "({tmin},{tmax})");
        match dfs {
            DfsOutcome::Unreachable(stats) => {
                assert_eq!(stats.states, seq.stats().states, "({tmin},{tmax})")
            }
            _ => panic!("goal `false` can never be found"),
        }
    }
}

#[test]
fn engines_agree_on_verdicts_with_faults() {
    let params = Params::new(2, 4).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R1,
    );
    let goal = |s: &_| error_predicate(&model, Requirement::R1)(s);
    let seq = Checker::new(&model).find_state(goal);
    let dfs = Dfs::new(&model).find(goal);
    let par = ParallelChecker::new(&model)
        .threads(2)
        .check_invariant(|s| !goal(s));
    assert!(seq.is_some());
    assert!(dfs.path().is_some());
    assert!(par.counterexample().is_some());
    // BFS counterexamples are shortest.
    assert!(seq.as_ref().unwrap().len() <= dfs.path().unwrap().len());
}

#[test]
fn random_walks_stay_within_the_reachable_set() {
    // Every state a random walk visits must be in the exhaustive set —
    // cheap sanity that walker and checker share transition semantics.
    let params = Params::new(2, 3).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    let graph = mck::graph::StateGraph::explore(&model, usize::MAX);
    let all: std::collections::HashSet<_> = graph.states.iter().cloned().collect();
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..20 {
        let path = random_walk(&model, &mut rng, 200);
        for s in path.states() {
            assert!(all.contains(&s), "walker escaped the reachable set");
        }
    }
}

#[test]
fn iterative_deepening_matches_bfs_depth() {
    // tmin = tmax: the regime where R3 is actually violated (Fig 12).
    let params = Params::new(4, 4).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R3,
    );
    let goal = |s: &<accelerated_heartbeat::verify::HbModel as Model>::State| {
        error_predicate(&model, Requirement::R3)(s)
    };
    let bfs = Checker::new(&model).find_state(goal).expect("violated");
    // Note: depth-bounded DFS with global dedup may need a much larger
    // depth than the BFS distance before it finds the goal (deep visits
    // can shadow shorter routes), so give it an effectively unbounded
    // final round.
    let idfs = Dfs::new(&model).iterative_deepening(goal, 1 << 20);
    let idfs_path = idfs.path().expect("violated");
    // BFS is optimal: nothing can beat it.
    assert!(idfs_path.len() >= bfs.len());
}

#[test]
fn lts_pipeline_is_idempotent_and_language_preserving() {
    let params = Params::new(1, 2).unwrap();
    let raw = p0_raw_lts(params);
    let reduced = p0_reduced_lts(params);
    let re_reduced = reduced.determinize_weak().minimize_traces();
    assert_eq!(reduced.num_states, re_reduced.num_states);
    assert_eq!(reduced.transitions.len(), re_reduced.transitions.len());
    // Language preservation on sample traces (modulo hidden ticks).
    let raw_hidden = raw.hide(&["tick p0"]);
    for trace in [
        vec!["timeout at P0", "for p1(hb0)"],
        vec!["inactivate v p0"],
        vec!["from p1(hb1)", "timeout at P0", "for p1(hb0)"],
        vec!["timeout at P0", "inactivate nv p0"], // NOT accepted: first round always has rcvd=true
    ] {
        assert_eq!(
            raw_hidden.accepts_weak_trace(&trace),
            reduced.accepts_weak_trace(&trace),
            "language divergence on {trace:?}"
        );
    }
}

#[test]
fn model_has_no_deadlocks() {
    // Time can always pass eventually: the composed models never deadlock.
    for variant in [Variant::Binary, Variant::Expanding, Variant::Dynamic] {
        let params = Params::new(2, 3).unwrap();
        let model = build_model(variant, params, FixLevel::Original, 1, Requirement::R1);
        let deadlocks = Dfs::new(&model).max_states(300_000).deadlocks();
        assert!(deadlocks.is_empty(), "{variant}: {deadlocks:?}");
    }
}

#[test]
fn multi_property_pass_agrees_with_dedicated_checks() {
    // One exploration answering R2 and R3 together must give the same
    // verdicts and the same shortest-violation depths as two dedicated
    // runs.
    use accelerated_heartbeat::verify::verify;
    use accelerated_heartbeat::verify::Requirement;
    use mck::props::{check_all, Property};

    let params = Params::new(4, 4).unwrap();
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    let report = check_all(
        &model,
        vec![
            Property::invariant("r2", |s: &accelerated_heartbeat::verify::HbState| {
                !s.resps
                    .iter()
                    .any(|r| r.status == accelerated_heartbeat::core::Status::NvInactive)
            }),
            Property::invariant("r3", |s: &accelerated_heartbeat::verify::HbState| {
                !(s.coord.status == accelerated_heartbeat::core::Status::NvInactive
                    && s.resps.iter().all(|r| r.status.is_active()))
            }),
        ],
        usize::MAX,
    );
    for (name, req) in [("r2", Requirement::R2), ("r3", Requirement::R3)] {
        let dedicated = verify(Variant::Binary, params, FixLevel::Original, req);
        assert_eq!(report.holds(name), Some(dedicated.holds), "{name}");
        if let (Some(multi), Some(single)) =
            (report.violation(name), dedicated.counterexample.as_ref())
        {
            assert_eq!(multi.len(), single.len(), "{name} depth");
        }
    }
}
