//! End-to-end smoke test over real UDP sockets and the wall clock: a
//! coordinator and a participant on localhost, a crash injected over the
//! control channel, detection within the corrected §6.2 coordinator bound.
//!
//! Event timestamps are protocol ticks derived from the shared wall
//! clock, so the bound is asserted exactly; only the overall watchdog
//! deadline is wall time.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use accelerated_heartbeat::core::coordinator::CoordSpec;
use accelerated_heartbeat::core::responder::RespSpec;
use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::core::{FixLevel, Params, Status, Variant};
use accelerated_heartbeat::net::wire::{Command, Frame};
use accelerated_heartbeat::net::{
    EventSink, NodeRuntime, TimeSource, Transport, UdpTransport, WallClock,
};

#[test]
fn udp_cluster_detects_injected_crash_within_corrected_bound() {
    let params = Params::new(2, 8).unwrap();
    let bound = u64::from(params.p0_bound_corrected(Variant::Binary));
    // A roomy tick: the protocol only collapses spuriously if the host
    // stalls every thread for > watchdog-bound ticks of real time.
    let tick = Duration::from_millis(20);
    let clock = WallClock::new(tick);
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    let mut coord_t = UdpTransport::bind("127.0.0.1:0").unwrap();
    let mut part_t = UdpTransport::bind("127.0.0.1:0").unwrap();
    let mut injector = UdpTransport::bind("127.0.0.1:0").unwrap();
    coord_t.add_peer(1, part_t.local_addr().unwrap());
    part_t.add_peer(0, coord_t.local_addr().unwrap());
    injector.add_peer(1, part_t.local_addr().unwrap());

    let mut coord = NodeRuntime::coordinator(
        CoordSpec::new(Variant::Binary, params, 1, FixLevel::Full),
        coord_t,
    )
    .with_sink(EventSink::memory());
    let coord_thread = {
        let (clock, stop, done) = (clock, Arc::clone(&stop), Arc::clone(&done));
        thread::spawn(move || {
            coord.run(&clock, &stop).unwrap();
            done.store(true, Ordering::Relaxed);
            coord.finish()
        })
    };
    let mut part = NodeRuntime::participant(
        1,
        RespSpec::new(Variant::Binary, params, FixLevel::Full),
        part_t,
    )
    .with_sink(EventSink::memory());
    let part_thread = {
        let (clock, stop) = (clock, Arc::clone(&stop));
        thread::spawn(move || {
            part.run(&clock, &stop).unwrap();
            part.finish()
        })
    };

    thread::sleep(clock.until(30));
    injector
        .send(clock.now(), 1, &Frame::control(2, Command::Crash), 0)
        .unwrap();

    // Wall-time watchdog: well past bound ticks, far below the test
    // harness timeout.
    let deadline = Instant::now() + Duration::from_secs(15);
    while !done.load(Ordering::Relaxed) && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let coord_report = coord_thread.join().unwrap();
    let part_report = part_thread.join().unwrap();

    if part_report.status != Status::Crashed {
        // The host stalled the threads long enough for a false
        // inactivation before the injection landed; nothing to measure.
        eprintln!("skipping: host stall pre-empted the injected crash");
        return;
    }
    assert_eq!(coord_report.status, Status::NvInactive, "must detect");
    let crash_at = part_report
        .log
        .events()
        .iter()
        .find_map(|e| match e {
            Event::Crash { at, .. } => Some(*at),
            _ => None,
        })
        .expect("participant logs its crash");
    let detected_at = coord_report
        .log
        .events()
        .iter()
        .find_map(|e| match e {
            Event::NvInactivate { at, .. } => Some(*at),
            _ => None,
        })
        .expect("coordinator logs its inactivation");
    let delay = detected_at.saturating_sub(crash_at);
    assert!(
        delay <= bound,
        "detected after {delay} ticks > bound {bound}"
    );
    assert!(
        coord_report.counters.halvings >= 1,
        "acceleration kicked in"
    );
}
