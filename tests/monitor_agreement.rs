//! Agreement tests for the streaming requirement monitor: the incremental
//! `hb-monitor` checkers, the tick-stepped `hb-verify` reference replay,
//! and the live tap attached during a run must all reach the same
//! verdicts — and the two substrates must emit the same event schema.

use std::sync::{Arc, Mutex};

use accelerated_heartbeat::chaos::{
    run_plan_monitored, run_plan_sim_tapped, Backend, FaultPlan, FaultSpec, Link, ProtoSpec, Window,
};
use accelerated_heartbeat::core::events::{event_json, EventTap, SharedTap};
use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::monitor;
use accelerated_heartbeat::net::{ClusterConfig, Faults, VirtualCluster};
use accelerated_heartbeat::sim::channel::LossModel;
use accelerated_heartbeat::sim::schema::{FirstViolation, MonitorVerdicts};
use accelerated_heartbeat::sim::{run_scenario, Scenario};
use accelerated_heartbeat::verify::reference_verdicts;
use proptest::prelude::*;

/// A tap that records the raw event stream for offline replay.
#[derive(Default)]
struct Recorder(Vec<Event>);

impl EventTap for Recorder {
    fn on_event(&mut self, e: &Event) {
        self.0.push(*e);
    }
}

// -- Satellite: one event schema, both substrates --------------------

/// Render a log as canonical lines, sorted by `(tick, rendered record)`
/// so per-node logs merge deterministically regardless of polling order.
fn canonical(events: &[Event]) -> Vec<String> {
    let mut lines: Vec<(u64, String)> = events.iter().map(|e| (e.at(), event_json(e))).collect();
    lines.sort();
    lines.into_iter().map(|(_, l)| l).collect()
}

/// The same lossless seeded crash run on the simulator and on the live
/// loopback cluster must produce the same event sequence — the schema
/// is shared, and with no randomness in flight the two substrates march
/// in lockstep.
#[test]
fn sim_and_live_emit_the_same_lossless_event_stream() {
    let params = Params::new(2, 8).unwrap();
    for seed in [1, 7] {
        let sc = Scenario {
            crashes: vec![(1, 100)],
            ..Scenario::steady_state(Variant::Binary, params, 400)
        }
        .with_fix(FixLevel::Full)
        .with_log();
        let sim = run_scenario(&sc, seed);

        let mut cl = VirtualCluster::new(ClusterConfig {
            variant: Variant::Binary,
            params,
            fix: FixLevel::Full,
            n: 1,
            faults: Faults::none(),
            seed,
            record_events: true,
        });
        cl.schedule_crash(1, 100);
        cl.run_until(400);
        let live = cl.into_report();
        let mut live_events: Vec<Event> = Vec::new();
        for node in &live.nodes {
            live_events.extend(node.log.events().iter().copied());
        }

        let sim_lines = canonical(sim.log.events());
        let live_lines = canonical(&live_events);
        for (i, (s, l)) in sim_lines.iter().zip(&live_lines).enumerate() {
            assert_eq!(s, l, "seed {seed}: streams diverge at record {i}");
        }
        assert_eq!(
            sim_lines.len(),
            live_lines.len(),
            "seed {seed}: stream lengths differ"
        );
    }
}

// -- Golden verdicts: the paper's bound error, pinned ----------------

/// The seed-pinned naive crash run: under the claimed `2·tmax` bound the
/// monitor must catch the R1 breach on both substrates — same
/// requirement, same pid, same bound; the live substrate runs one tick
/// of phase ahead of the simulator.
#[test]
fn golden_naive_crash_verdicts_pin_the_r1_breach() {
    let plan = |fix| {
        FaultPlan::new(
            "golden-crash",
            1,
            ProtoSpec {
                variant: Variant::Binary,
                params: Params::new(2, 8).unwrap(),
                fix,
                n: 1,
                duration: 600,
                membership: false,
            },
        )
        .with(FaultSpec::Crash { pid: 1, at: 300 })
    };

    let sim = run_plan_monitored(&plan(FixLevel::Original), Backend::Sim);
    let live = run_plan_monitored(&plan(FixLevel::Original), Backend::Live);
    assert_eq!(
        sim.monitor.unwrap().r1,
        Some(FirstViolation {
            pid: 1,
            at: 315,
            bound: 16
        }),
        "sim verdict moved: {:?}",
        sim.monitor
    );
    assert_eq!(
        live.monitor.unwrap().r1,
        Some(FirstViolation {
            pid: 1,
            at: 314,
            bound: 16
        }),
        "live verdict moved: {:?}",
        live.monitor
    );

    // Same crash under the corrected bounds: categorically clean, on
    // both substrates.
    for backend in [Backend::Sim, Backend::Live] {
        let fixed = run_plan_monitored(&plan(FixLevel::Full), backend);
        let v = fixed.monitor.unwrap();
        assert!(v.clean(), "{backend:?} full-fix verdicts: {}", v.to_json());
    }
}

// -- Streaming vs reference vs live tap ------------------------------

/// The reference replay's `(r1, r2, r3)` mapped into the shared schema.
type RefVerdicts = (
    Option<FirstViolation>,
    Option<FirstViolation>,
    Option<FirstViolation>,
);

/// Run `plan` on the simulator three ways and return
/// `(tap_verdicts, replay_verdicts, reference_as_first_violations)`.
fn three_way(plan: &FaultPlan) -> (MonitorVerdicts, MonitorVerdicts, RefVerdicts) {
    let p = &plan.proto;

    // 1. the tap attached during the run
    let tapped = run_plan_monitored(plan, Backend::Sim)
        .monitor
        .expect("monitored run must carry verdicts");

    // 2. record the raw stream, replay it through the streaming checker
    let rec = Arc::new(Mutex::new(Recorder::default()));
    let tap: SharedTap = rec.clone();
    let summary = run_plan_sim_tapped(plan, tap);
    let mut events = std::mem::take(&mut rec.lock().expect("recorder poisoned").0);
    let replayed = monitor::replay(p.variant, p.params, p.fix, p.n, &events, summary.duration);

    // 3. the tick-stepped hb-verify reference on the same stream
    events.sort_by_key(Event::at);
    let refv = reference_verdicts(p.variant, p.params, p.fix, p.n, &events, summary.duration);
    let as_fv = |v: Option<accelerated_heartbeat::verify::Violation>| {
        v.map(|v| FirstViolation {
            pid: v.pid,
            at: v.at,
            bound: v.bound,
        })
    };
    (
        tapped,
        replayed,
        (as_fv(refv.r1), as_fv(refv.r2), as_fv(refv.r3)),
    )
}

fn assert_three_way_agree(plan: &FaultPlan) {
    let (tapped, replayed, reference) = three_way(plan);
    assert_eq!(
        tapped, replayed,
        "{}: live tap vs log replay diverge",
        plan.name
    );
    assert_eq!(
        (replayed.r1, replayed.r2, replayed.r3),
        reference,
        "{}: streaming checker vs hb-verify reference diverge",
        plan.name
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small fault plans: the verdicts of the streaming checker —
    /// attached live or replayed from the recorded log — must match the
    /// deliberately different-shaped tick-stepped reference replay in
    /// `hb-verify::monitor`, for every fix level and requirement.
    #[test]
    fn streaming_and_reference_verdicts_agree_on_random_plans(
        seed in 0u64..10_000,
        variant_ix in 0usize..3,
        fix_ix in 0usize..4,
        n in 1usize..=2,
        loss_pm in 0u32..200,
        crash_at in 0u64..260,
        crash_pid in 1usize..=2,
        revive_delta in 0u64..60,
    ) {
        let variant = [Variant::Binary, Variant::Static, Variant::Expanding][variant_ix];
        // the binary protocols are two-process by definition
        let n = if variant == Variant::Binary { 1 } else { n };
        let fix = [
            FixLevel::Original,
            FixLevel::ReceivePriority,
            FixLevel::CorrectedBounds,
            FixLevel::Full,
        ][fix_ix];
        let mut plan = FaultPlan::new(
            format!("prop/{seed}"),
            seed,
            ProtoSpec {
                variant,
                params: Params::new(2, 8).unwrap(),
                fix,
                n,
                duration: 400,
                membership: false,
            },
        );
        // loss below 1% / crash before t=60 / revive_delta 0 double as
        // the "no such fault" arms (the shim has no Option strategies).
        if loss_pm >= 10 {
            plan = plan.with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: LossModel::Bernoulli(f64::from(loss_pm) / 1000.0),
            });
        }
        if crash_at >= 60 {
            let pid = crash_pid.min(n);
            plan = plan.with(FaultSpec::Crash { pid, at: crash_at });
            if revive_delta > 0 {
                plan = plan.with(FaultSpec::Revive { pid, at: crash_at + revive_delta });
            }
        }
        plan.validate().expect("generated plan must validate");
        assert_three_way_agree(&plan);
    }
}

/// The rejoin demo's adversarial reorder + crash + revive plan — stale
/// beats, epoch bars, held-back frames — is exactly the kind of trace
/// where the mirror and the reference could drift; pin the agreement on
/// it directly, at both fix levels.
#[test]
fn rejoin_demo_traces_agree_three_ways() {
    for fix in [FixLevel::CorrectedBounds, FixLevel::Full] {
        let plan = accelerated_heartbeat::chaos::rejoin_demo_plan(fix, 1);
        assert_three_way_agree(&plan);
    }
}
