//! Property test: ample-set reduction never changes a verdict.
//!
//! The exhaustive cross-check (`hb_analyze::por_check`) pins the paper's
//! table cells; this test walks random *small* corners of the parameter
//! space — every variant, every fix level, every requirement — and
//! insists the reduced exploration reaches the same verdict as the full
//! one. Parameters are kept small so the full exploration stays cheap;
//! R1 cells run at one participant for the same reason the cross-check
//! pins them there (the full fault-bearing graph is the expensive side).

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::por::verify_with_n_por;
use accelerated_heartbeat::verify::requirements::{verify_with_n, Requirement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn por_and_full_exploration_agree(
        variant in prop::sample::select(Variant::ALL.to_vec()),
        fix in prop::sample::select(FixLevel::ALL.to_vec()),
        req in prop::sample::select(Requirement::ALL.to_vec()),
        tmin in 1u32..=3,
        extra in 0u32..=3,
        wide in any::<bool>(),
    ) {
        let params = Params::new(tmin, tmin + extra).expect("valid params");
        let two_process = matches!(
            variant,
            Variant::Binary | Variant::RevisedBinary | Variant::TwoPhase
        );
        // Fault-free requirements get a second participant on the
        // multi-party variants when the dice say so.
        let n = if two_process || req == Requirement::R1 || !wide {
            1
        } else {
            2
        };
        let full = verify_with_n(variant, params, fix, req, n);
        let por = verify_with_n_por(variant, params, fix, req, n);
        prop_assert!(
            full.holds == por.holds,
            "verdict divergence on {}/{}-{}/{:?}/{:?}/n={}: full={} por={}",
            variant.name(),
            params.tmin(),
            params.tmax(),
            fix,
            req,
            n,
            full.holds,
            por.holds
        );
        prop_assert!(
            por.stats.states <= full.stats.states || !full.holds,
            "reduction grew a passing cell: full={} por={}",
            full.stats.states,
            por.stats.states
        );
    }
}
