//! End-to-end chaos-plan tests: one JSON fault plan, two backends.
//!
//! The acceptance scenario for the chaos engine: a single declarative
//! fault plan (Gilbert–Elliott burst loss, a transient partition,
//! bounded clock drift on the crash victim, and a scheduled crash) is
//! parsed from its JSON text and executed on BOTH the discrete-event
//! simulator and the live loopback runtime. On each backend:
//!
//! * replay under the same seed is byte-identical
//!   (`RunSummary::to_json`);
//! * the `receive-priority` fix detects the crash within the corrected
//!   §6.2 bound (3·tmax − tmin = 22 ticks for (tmin, tmax) = (2, 8));
//! * the unfixed (`original`) protocol exhibits its known violation:
//!   detection takes longer than the bound of 2·tmax = 16 ticks claimed
//!   by the original paper (the crash lands just after a participant
//!   reply, so the coordinator restarts a full round before the
//!   halving chain begins — AM09's R1 counterexample).
//!
//! Seed 1 is pinned: under this plan both backends keep the pair alive
//! through the burst-loss window and the 8-tick partition, so the
//! scheduled crash at tick 1200 actually fires and the detection delay
//! is meaningful on every run below.

use hb_chaos::{run_plan, Backend, FaultPlan, FaultSpec};
use hb_core::FixLevel;

/// The checked-in plan text, exactly as `FaultPlan::to_json` emits it.
const PLAN_JSON: &str = r#"{"record":"fault_plan","name":"acceptance","seed":1,"proto":{"variant":"binary","tmin":2,"tmax":8,"fix":"original","n":1,"duration":2000,"membership":false},"faults":[{"kind":"loss","from":0,"to":400,"src":null,"dst":null,"model":{"law":"gilbert-elliott","to_bad":0.026315789473684213,"to_good":0.5,"good_loss":0,"bad_loss":1}},{"kind":"partition","from":600,"to":608,"groups":[[0],[1]]},{"kind":"drift","pid":1,"offset":0,"num":101,"den":100},{"kind":"crash","pid":1,"at":1200}]}"#;

fn acceptance_plan(fix: FixLevel) -> FaultPlan {
    let mut plan = FaultPlan::from_json(PLAN_JSON).expect("checked-in plan must parse");
    plan.proto.fix = fix;
    plan
}

#[test]
fn plan_json_is_canonical() {
    let plan = FaultPlan::from_json(PLAN_JSON).unwrap();
    assert_eq!(
        plan.to_json(),
        PLAN_JSON,
        "serializer must round-trip the literal"
    );
    assert_eq!(plan.seed, 1);
    assert_eq!(plan.crashes(), vec![(1, 1200)]);
    assert!(plan
        .faults
        .iter()
        .any(|f| matches!(f, FaultSpec::Drift { pid: 1, .. })));
}

#[test]
fn same_plan_runs_on_both_backends_with_identical_replay() {
    let plan = acceptance_plan(FixLevel::ReceivePriority);
    for backend in [Backend::Sim, Backend::Live] {
        let first = run_plan(&plan, backend);
        let second = run_plan(&plan, backend);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{} replay must be byte-identical",
            backend.name()
        );
        assert_eq!(first.source, backend.name());
        assert_eq!(first.crashes, vec![(1, 1200)]);
        // A different seed must actually change the trajectory, or the
        // determinism assertion above would be vacuous.
        let mut reseeded = plan.clone();
        reseeded.seed = 2;
        assert_ne!(run_plan(&reseeded, backend).to_json(), first.to_json());
    }
}

#[test]
fn fixed_variant_meets_corrected_bound_where_original_breaks_claimed() {
    let claimed = {
        let plan = acceptance_plan(FixLevel::Original);
        u64::from(plan.proto.params.p0_bound_claimed())
    };
    let corrected = {
        let plan = acceptance_plan(FixLevel::Original);
        u64::from(plan.proto.params.p0_bound_corrected(plan.proto.variant))
    };
    assert!(claimed < corrected, "(2,8): claimed 16 < corrected 22");

    for backend in [Backend::Sim, Backend::Live] {
        // Unfixed: the crash is detected, but only after the claimed
        // 2·tmax window has already elapsed — the known R1 violation.
        let original = run_plan(&acceptance_plan(FixLevel::Original), backend);
        assert_eq!(original.crashes, vec![(1, 1200)], "{}", backend.name());
        let d = original
            .detection_delay
            .expect("original must still detect the crash");
        assert!(
            d > claimed,
            "{}: original detection {d} should exceed the claimed bound {claimed}",
            backend.name()
        );

        // Fixed: same faults, detection within the corrected bound and
        // no false suspicions despite burst loss + partition + drift.
        // (The full fix also tightens the responder deadline to the
        // corrected 2·tmax, which the 1% drift can push past on the
        // live backend — the receive-priority level is the one this
        // scenario pins.)
        let fixed = run_plan(&acceptance_plan(FixLevel::ReceivePriority), backend);
        assert_eq!(fixed.crashes, vec![(1, 1200)], "{}", backend.name());
        assert_eq!(fixed.false_inactivations, 0, "{}", backend.name());
        let d = fixed.detection_delay.expect("fixed must detect the crash");
        assert!(
            d <= corrected,
            "{}: detection {d} exceeds corrected bound {corrected}",
            backend.name()
        );
    }
}

/// A pinned crash + revive plan (§7): the victim crashes at tick 1200
/// and restarts five ticks later, inside the coordinator's halving
/// chain, so the fresh incarnation re-registers instead of being
/// detected as dead.
const REVIVE_PLAN_JSON: &str = r#"{"record":"fault_plan","name":"acceptance-revive","seed":1,"proto":{"variant":"binary","tmin":2,"tmax":8,"fix":"full-fix","n":1,"duration":2000,"membership":false},"faults":[{"kind":"crash","pid":1,"at":1200},{"kind":"revive","pid":1,"at":1205}]}"#;

#[test]
fn revive_plan_is_canonical_and_replays_identically_on_both_backends() {
    let plan = FaultPlan::from_json(REVIVE_PLAN_JSON).unwrap();
    assert_eq!(
        plan.to_json(),
        REVIVE_PLAN_JSON,
        "serializer must round-trip the literal"
    );
    plan.validate().expect("crash-then-revive must validate");

    for backend in [Backend::Sim, Backend::Live] {
        let first = run_plan(&plan, backend);
        let second = run_plan(&plan, backend);
        assert_eq!(
            first.to_json(),
            second.to_json(),
            "{} crash/revive replay must be byte-identical",
            backend.name()
        );
        assert_eq!(first.crashes, vec![(1, 1200)], "{}", backend.name());
        assert_eq!(first.revives, vec![(1, 1205)], "{}", backend.name());
        // The revived incarnation re-registers within the corrected
        // coordinator bound...
        let bound = u64::from(plan.proto.params.p0_bound_corrected(plan.proto.variant));
        let rc = first
            .reconv_detect
            .unwrap_or_else(|| panic!("{}: revived node never re-registered", backend.name()));
        assert!(
            rc <= bound,
            "{}: re-convergence {rc} exceeds corrected bound {bound}",
            backend.name()
        );
        // ...and stabilises (active + joined again) no earlier than that.
        let st = first
            .reconv_stable
            .unwrap_or_else(|| panic!("{}: revived node never stabilised", backend.name()));
        assert!(
            st >= rc,
            "{}: stability {st} precedes detection {rc}",
            backend.name()
        );
        // ...and under the epoch bar nothing stale slips through.
        assert_eq!(first.stale_beats_admitted, 0, "{}", backend.name());
    }
}

#[test]
fn drift_shapes_the_live_run_but_not_the_sim() {
    // The simulator has a single global clock, so removing the drift
    // fault must not change its trajectory; the live backend skews the
    // participant's poll clock, so there removing drift must change
    // something (seed 1 is pinned so both runs stay comparable).
    let with_drift = acceptance_plan(FixLevel::Full);
    let mut without = with_drift.clone();
    without
        .faults
        .retain(|f| !matches!(f, FaultSpec::Drift { .. }));

    assert_eq!(
        run_plan(&with_drift, Backend::Sim).to_json(),
        run_plan(&without, Backend::Sim).to_json(),
        "sim ignores drift"
    );
    assert_ne!(
        run_plan(&with_drift, Backend::Live).to_json(),
        run_plan(&without, Backend::Live).to_json(),
        "live applies drift"
    );
}
