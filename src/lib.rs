//! # accelerated-heartbeat
//!
//! A Rust reproduction of **"Accelerated Heartbeat Protocols"** (M. G. Gouda
//! and T. M. McGuire, ICDCS '98) together with the full formal analysis of
//! **"Formal Specification and Analysis of Accelerated Heartbeat Protocols"**
//! (M. Atif and M. R. Mousavi, TU/e CS-Report 09-04, 2009).
//!
//! This façade crate re-exports the workspace members:
//!
//! * [`core`] (`hb-core`) — the protocol family (binary, revised binary,
//!   two-phase, static, expanding, dynamic) as pure state machines, plus the
//!   Section-6 fixes.
//! * [`mck`] — an explicit-state model checker (BFS/DFS/parallel, LTS
//!   reduction, digital clocks).
//! * [`sim`] (`hb-sim`) — a discrete-event network simulator with lossy
//!   bounded-delay channels, crash/churn injection, and metrics.
//! * [`verify`] (`hb-verify`) — the composed timed models, the requirements
//!   R1–R3, and the verification campaign regenerating the paper's tables
//!   and counter-example figures.
//! * [`net`] (`hb-net`) — a live runtime: wire codec, loopback and UDP
//!   transports, wall/virtual time sources, and a deadline-driven node
//!   event loop running the unmodified machines in real time.
//! * [`monitor`] (`hb-monitor`) — streaming runtime verification: the
//!   R1–R3 requirement automata compiled from `hb-verify`'s declarative
//!   monitor definitions into O(participants) incremental checkers that
//!   tap the shared event stream of both runtimes and timestamp the
//!   first violation.
//! * [`chaos`] (`hb-chaos`) — deterministic fault injection: declarative
//!   JSON fault plans (burst loss, partitions, duplication, reordering,
//!   delay spikes, clock drift, crash/churn schedules) executed on both
//!   the simulator and the live runtime, plus a parallel chaos-campaign
//!   runner sweeping fault grids into deterministic reports.
//! * [`analyze`] (`hb-analyze`) — the static protocol analyzer: lints
//!   over the machines' transition-system IR (the AM09 timeout-vs-receive
//!   overlap, unreachable states, dead transitions, ambiguous receives,
//!   epoch monotonicity) and the soundness cross-check for the
//!   partial-order reduction in [`verify`](hb_verify::por).
//!
//! ## Quickstart
//!
//! Model-check requirement R2 on the original binary protocol with
//! `tmin = tmax = 10` (the paper's Figure 11 scenario) and print the
//! counterexample:
//!
//! ```
//! use accelerated_heartbeat::core::{Params, Variant, FixLevel};
//! use accelerated_heartbeat::verify::{verify, Requirement};
//!
//! let params = Params::new(10, 10).unwrap();
//! let verdict = verify(Variant::Binary, params, FixLevel::Original, Requirement::R2);
//! assert!(!verdict.holds); // the paper's Table 1: R2 fails at tmin = tmax
//! ```
//!
//! Run the protocol in the simulator instead:
//!
//! ```
//! use accelerated_heartbeat::core::{Params, Variant};
//! use accelerated_heartbeat::sim::{Scenario, run_scenario};
//!
//! let params = Params::new(2, 8).unwrap();
//! let report = run_scenario(&Scenario::steady_state(Variant::Binary, params, 200), 42);
//! assert_eq!(report.false_inactivations, 0);
//! ```

#![forbid(unsafe_code)]

pub use hb_analyze as analyze;
pub use hb_chaos as chaos;
pub use hb_core as core;
pub use hb_member as member;
pub use hb_monitor as monitor;
pub use hb_net as net;
pub use hb_sim as sim;
pub use hb_verify as verify;
pub use mck;
