//! Model-check the accelerated heartbeat protocols.
//!
//! Checks requirements R1–R3 for a chosen variant and fix level across the
//! paper's data sets, printing verdicts, state counts and — for violated
//! cells — the shortest counterexample as a sequence chart.
//!
//! ```text
//! cargo run --release --example verify_protocols -- [variant] [original|full]
//! # e.g.
//! cargo run --release --example verify_protocols -- binary original
//! cargo run --release --example verify_protocols -- expanding full
//! ```

use accelerated_heartbeat::core::params::PAPER_DATASETS;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::render::path_to_log;
use accelerated_heartbeat::verify::{verify, Requirement};

fn parse_variant(name: &str) -> Option<Variant> {
    Variant::ALL
        .into_iter()
        .find(|v| v.name().starts_with(name))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let variant = args
        .get(1)
        .and_then(|s| parse_variant(s))
        .unwrap_or(Variant::Binary);
    let fix = match args.get(2).map(String::as_str) {
        Some("full") => FixLevel::Full,
        Some("receive-priority") => FixLevel::ReceivePriority,
        Some("corrected-bounds") => FixLevel::CorrectedBounds,
        _ => FixLevel::Original,
    };

    println!("== model checking {variant} at fix level {fix} ==\n");
    let mut first_ce_shown = false;
    for req in Requirement::ALL {
        print!("{req}:");
        let mut cells = Vec::new();
        for (tmin, tmax) in PAPER_DATASETS {
            let params = Params::new(tmin, tmax)?;
            let v = verify(variant, params, fix, req);
            print!("  tmin={tmin}: {}", v.symbol());
            cells.push(v);
        }
        println!();
        if !first_ce_shown {
            if let Some(v) = cells.iter().find(|v| !v.holds) {
                let ce = v.counterexample.as_ref().expect("violated => CE");
                println!(
                    "\nshortest counterexample for {req} at {} ({} transitions, {} states explored):",
                    v.params,
                    ce.len(),
                    v.stats.states
                );
                println!("{}", path_to_log(ce).render_chart(1));
                first_ce_shown = true;
            }
        }
    }
    println!("(T = requirement holds, F = violated; compare Tables 1-2 of Atif & Mousavi 2009)");
    Ok(())
}
