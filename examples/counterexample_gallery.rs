//! Regenerate the paper's counter-example figures (Figures 10–13) by
//! replaying their exact schedules against the composed models.
//!
//! ```text
//! cargo run --release --example counterexample_gallery
//! ```

use accelerated_heartbeat::verify::figures::all_figures;

fn main() {
    println!("== Atif & Mousavi (2009), Figures 10-13: counter-example gallery ==\n");
    for figure in all_figures() {
        println!("{}", figure.render());
        println!("{}", "=".repeat(60));
    }
    println!(
        "Each replay is the paper's schedule step-for-step; 'replay valid' means\n\
         every step was an enabled transition of our model and 'error reached'\n\
         means the run passed through the requirement's error state. The BFS\n\
         length is an independently found shortest counterexample for the same\n\
         protocol configuration."
    );
}
