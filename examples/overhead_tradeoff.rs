//! The headline trade-off of the ICDCS '98 paper: accelerated heartbeats
//! get low steady-state overhead, bounded detection delay *and* loss
//! tolerance at once, while a naive fixed-period heartbeat must pick two.
//!
//! Sweeps the acceleration ratio `tmax/tmin` and compares against naive
//! baselines tuned to match the accelerated protocol on one axis at a
//! time.
//!
//! ```text
//! cargo run --release --example overhead_tradeoff
//! ```

use accelerated_heartbeat::core::{Params, Variant};
use accelerated_heartbeat::sim::{run_scenario, NaiveConfig, NaiveWorld, Scenario};

fn measured_rate_accelerated(params: Params) -> f64 {
    let sc = Scenario::steady_state(Variant::Binary, params, 20_000);
    run_scenario(&sc, 7).message_rate()
}

fn measured_rate_naive(cfg: NaiveConfig) -> f64 {
    let mut w = NaiveWorld::new(cfg, 7);
    w.run_until(20_000);
    w.into_report().message_rate()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tmin = 2;
    println!("accelerated heartbeat vs naive fixed-period heartbeat (tmin = {tmin})\n");
    println!(
        "{:>6} {:>12} {:>12} {:>12} | {:>14} {:>14}",
        "tmax", "acc rate", "acc detect", "acc losses", "naive@detect", "naive@losses"
    );
    println!("{}", "-".repeat(80));

    for ratio in [1u32, 2, 4, 8, 16, 32] {
        let tmax = tmin * ratio;
        let params = Params::new(tmin, tmax)?;
        let acc_rate = measured_rate_accelerated(params);
        let acc_detect = params.p0_bound_corrected(Variant::Binary);
        let acc_tolerance = params.silent_rounds_to_inactivation() - 1;

        // Naive tuned to match the accelerated *detection* bound with the
        // same loss tolerance: period = bound / (tolerance + 1).
        let period_d = (acc_detect / (acc_tolerance + 1)).max(1);
        let naive_detect_rate = measured_rate_naive(NaiveConfig {
            period: period_d,
            tolerance: acc_tolerance,
            delay_bound: tmin,
            n: 1,
            loss_prob: 0.0,
        });

        // Naive tuned to match the accelerated *rate*: period = tmax; at
        // the same loss tolerance its detection bound balloons.
        let naive_rate_cfg = NaiveConfig {
            period: tmax,
            tolerance: acc_tolerance,
            delay_bound: tmin,
            n: 1,
            loss_prob: 0.0,
        };

        println!(
            "{:>6} {:>12.4} {:>12} {:>12} | {:>10.4} x{:<3.1} {:>10} unit",
            tmax,
            acc_rate,
            acc_detect,
            acc_tolerance,
            naive_detect_rate,
            naive_detect_rate / acc_rate.max(1e-9),
            naive_rate_cfg.detection_bound(),
        );
    }

    println!(
        "\nreading the table: to match the accelerated protocol's detection bound\n\
         and loss tolerance, the naive protocol must send x-times more messages\n\
         (column 5-6); to match its message rate instead, the naive detection\n\
         bound balloons (last column vs column 3). The accelerated protocol's\n\
         advantage grows with tmax/tmin — the '98 paper's acceleration thesis."
    );
    Ok(())
}
