//! Quickstart: run the binary accelerated heartbeat protocol in the
//! discrete-event simulator, crash the participant, and watch the
//! coordinator detect it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use accelerated_heartbeat::core::{Params, Variant};
use accelerated_heartbeat::sim::{run_scenario, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // tmin = 2 (round-trip delay bound / fastest round),
    // tmax = 8 (steady-state round length).
    let params = Params::new(2, 8)?;

    println!("== accelerated binary heartbeat, {params} ==\n");
    println!(
        "steady-state overhead : ~2/tmax = {:.3} msgs/unit",
        2.0 / f64::from(params.tmax())
    );
    println!(
        "detection bound (p[0]): {} units (corrected, Atif & Mousavi '09 §6.2)",
        params.p0_bound_corrected(Variant::Binary)
    );
    println!(
        "loss tolerance        : {} consecutive beats\n",
        params.silent_rounds_to_inactivation()
    );

    // Run 200 time units, crash p[1] at t = 100, log everything.
    let scenario = Scenario {
        crashes: vec![(1, 100)],
        duration: 200,
        ..Scenario::steady_state(Variant::Binary, params, 0)
    }
    .with_log();

    let report = run_scenario(&scenario, 42);

    println!("{}", report.log.render_chart(1));
    println!("messages sent      : {}", report.messages_sent);
    println!(
        "message rate       : {:.3} msgs/unit",
        report.message_rate()
    );
    match report.detection_delay {
        Some(d) => println!("crash detected in  : {d} time units"),
        None => println!("crash not detected within the horizon"),
    }
    println!(
        "final status       : p[0] {:?}, p[1] {:?}",
        report.final_status[0], report.final_status[1]
    );
    Ok(())
}
