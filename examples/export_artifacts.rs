//! Export graphical artifacts: the reduced transition systems of
//! Figures 1–2 as Graphviz DOT files, plus the full composed binary model
//! at miniature parameters (for inspection with `dot -Tsvg`).
//!
//! ```text
//! cargo run --release --example export_artifacts [out_dir]
//! ```

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::verify::solo::{p0_figure_lts, p1_figure_lts};
use accelerated_heartbeat::verify::HbModel;
use mck::graph::StateGraph;
use std::fs;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "artifacts".into())
        .into();
    fs::create_dir_all(&out_dir)?;

    let fig_params = Params::new(1, 2)?;
    let artifacts = [
        ("figure1_p0.dot", p0_figure_lts(fig_params).to_dot()),
        ("figure2_p1.dot", p1_figure_lts(fig_params).to_dot()),
    ];
    for (name, dot) in artifacts {
        let path = out_dir.join(name);
        fs::write(&path, dot)?;
        println!("wrote {}", path.display());
    }

    // The full composed model of the binary protocol at (1,2), fault-free:
    // small enough to look at as a graph.
    let model = HbModel::new(Variant::Binary, Params::new(1, 2)?, 1, FixLevel::Original)
        .allow_loss(false)
        .allow_crashes(false);
    let graph = StateGraph::explore(&model, 10_000);
    let stats = graph.stats();
    let path = out_dir.join("binary_composed_1_2.dot");
    fs::write(&path, graph.to_dot(&model))?;
    println!(
        "wrote {} ({} states, {} transitions, diameter {})",
        path.display(),
        stats.states,
        stats.transitions,
        stats.diameter
    );
    println!(
        "\nrender with e.g.: dot -Tsvg {}/figure1_p0.dot -o figure1.svg",
        out_dir.display()
    );
    Ok(())
}
