//! Run a chaos campaign: sweep a fault grid (burst loss × partition ×
//! drift) over the protocol at several fix levels and report detection
//! delays against the claimed and corrected §6.2 bounds.
//!
//! ```text
//! cargo run --release --example chaos_campaign                  # full grid, sim
//! cargo run --release --example chaos_campaign -- --smoke       # CI grid, seed-pinned
//! cargo run --release --example chaos_campaign -- --backend live
//! cargo run --release --example chaos_campaign -- --monitor     # streaming R1–R3 verdicts
//! cargo run --release --example chaos_campaign -- --out artifacts/campaign.json
//! cargo run --release --example chaos_campaign -- --table       # markdown summary
//! cargo run --release --example chaos_campaign -- --rejoin artifacts
//! cargo run --release --example chaos_campaign -- --failover artifacts
//! cargo run --release --example chaos_campaign -- --diff a.json b.json
//! ```
//!
//! `--monitor` attaches a streaming `hb-monitor` requirement checker to
//! every run and gates the result: cells running under-corrected fixes
//! (the claimed `2·tmax` bound) must reproduce at least one R1 violation
//! per cell — the paper's bound error, caught online — while cells with
//! corrected bounds must come back monitor-clean. Any other outcome
//! exits non-zero.
//!
//! `--rejoin DIR` skips the grid and instead emits the §7 rejoin
//! demonstration artifacts (`rejoin_sim.json` / `rejoin_live.json`):
//! one seed-pinned reorder + crash + revive plan per backend, run with
//! epochs off and on.
//!
//! `--failover DIR` emits the coordinator-failover campaign artifacts
//! (`failover_sim.json` / `failover_live.json`): membership plans that
//! crash the coordinator mid-run on the `hb-member` group layer, fail
//! over to the lowest live pid, revive the ex-coordinator demoted, and
//! record the two-sided re-convergence metric — gated on group
//! agreement, demotion-not-split, clean R1–R3 monitors, and replay
//! determinism per cell.
//!
//! `--diff A B` compares two campaign reports cell by cell with the
//! calibrated sim-vs-live tolerances of [`hb_chaos::diff`], prints the
//! divergence report, and exits non-zero on any hard divergence — the
//! CI gate for the checked-in `campaign_gm98_sim.json` /
//! `campaign_gm98_live.json` artifact pair.
//!
//! The report is deterministic: the same grid, seeds, and backend always
//! produce byte-identical JSON, regardless of `--threads`. CI runs the
//! smoke grid twice and diffs the outputs.

use std::io::Write as _;

use accelerated_heartbeat::chaos::{
    diff_reports, run_campaign, run_failover_campaign, run_rejoin_demo, Backend, CampaignReport,
    CampaignSpec, Tolerances,
};
use accelerated_heartbeat::core::{FixLevel, Params, Variant};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The seed-pinned CI grid: 8 cells, 3 seeds, sim backend, < 1 s.
fn smoke_spec(threads: usize) -> CampaignSpec {
    CampaignSpec {
        name: "smoke".into(),
        backend: Backend::Sim,
        variant: Variant::Binary,
        params: Params::new(2, 8).unwrap(),
        n: 1,
        duration: 600,
        fixes: vec![
            FixLevel::Original,
            FixLevel::ReceivePriority,
            FixLevel::Full,
        ],
        loss: vec![0.0, 0.05],
        burst: vec![2.0],
        drift: vec![(1, 1)],
        partition: vec![0, 8],
        seeds: vec![1, 2, 3],
        threads,
        monitor: false,
    }
}

/// The full grid behind EXPERIMENTS.md: loss × burst × drift × partition
/// at three fix levels, ten seeds per cell.
fn full_spec(backend: Backend, threads: usize) -> CampaignSpec {
    CampaignSpec {
        name: "gm98-grid".into(),
        backend,
        variant: Variant::Binary,
        params: Params::new(2, 8).unwrap(),
        n: 1,
        duration: 2_000,
        fixes: vec![
            FixLevel::Original,
            FixLevel::ReceivePriority,
            FixLevel::Full,
        ],
        loss: vec![0.0, 0.02, 0.05],
        burst: vec![2.0],
        drift: vec![(1, 1), (101, 100)],
        partition: vec![0, 8],
        seeds: (1..=10).collect(),
        threads,
        monitor: false,
    }
}

/// The `--monitor` gate: under-corrected cells must reproduce the R1
/// bound breach (that is the paper's finding, observed online); cells
/// with corrected bounds must be monitor-clean. Drifted cells carry no
/// verdicts (`monitor_runs == 0` — local-clock stamps would alias skew
/// as breaches) and are exempt. Returns the offending cells.
fn monitor_gate(report: &CampaignReport) -> Vec<String> {
    let mut bad = Vec::new();
    for c in &report.cells {
        if c.monitor_runs == 0 {
            continue;
        }
        let label = format!(
            "{}/loss{}x{}/drift{}-{}/part{}",
            c.cell.fix.name(),
            c.cell.loss,
            c.cell.burst,
            c.cell.drift.0,
            c.cell.drift.1,
            c.cell.partition
        );
        if c.cell.fix.corrected_bounds() {
            if c.monitor_clean != c.monitor_runs {
                bad.push(format!(
                    "{label}: corrected-bounds cell not clean \
                     ({}/{} clean, r1={} r2={} r3={})",
                    c.monitor_clean, c.monitor_runs, c.monitor_r1, c.monitor_r2, c.monitor_r3
                ));
            }
        } else if c.monitor_r1 == 0 {
            bad.push(format!(
                "{label}: under-corrected cell failed to reproduce the \
                 claimed-bound R1 breach ({} monitored runs)",
                c.monitor_runs
            ));
        }
    }
    bad
}

/// Render the report as a markdown table (the EXPERIMENTS.md format).
fn markdown_table(report: &CampaignReport) -> String {
    let mut out = String::new();
    out.push_str(
        "| fix | loss | drift | partition | detected | down first | mean delay | max | \
         claimed | corrected | >claimed | >corrected | false susp. | reconv | detect mean | \
         detect max | stable | stable mean | stable max | stale adm. | mon clean | mon R1 | \
         mon first |\n",
    );
    out.push_str(
        "|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|\
         ---|---|---|\n",
    );
    for c in &report.cells {
        // Unmonitored (drifted) cells show "-" in every monitor column.
        let (mon_clean, mon_r1) = if c.monitor_runs == 0 {
            ("-".to_string(), "-".to_string())
        } else {
            (
                format!("{}/{}", c.monitor_clean, c.monitor_runs),
                c.monitor_r1.to_string(),
            )
        };
        let mon_first = c
            .monitor_first
            .map_or_else(|| "-".to_string(), |t| t.to_string());
        out.push_str(&format!(
            "| {} | {} | {}/{} | {} | {}/{} | {} | {:.1} | {} | {} | {} | {} | {} | {} | \
             {}/{} | {:.1} | {} | {}/{} | {:.1} | {} | {} | {} | {} | {} |\n",
            c.cell.fix.name(),
            c.cell.loss,
            c.cell.drift.0,
            c.cell.drift.1,
            c.cell.partition,
            c.detected,
            c.runs,
            c.down_before_crash,
            c.detect_mean,
            c.detect_max,
            c.claimed_bound,
            c.corrected_bound,
            c.violations_claimed,
            c.violations_corrected,
            c.false_suspicions,
            c.reconverged,
            c.runs,
            c.reconv_detect_mean,
            c.reconv_detect_max,
            c.stabilised,
            c.runs,
            c.reconv_stable_mean,
            c.reconv_stable_max,
            c.stale_admitted,
            mon_clean,
            mon_r1,
            mon_first,
        ));
    }
    out
}

/// The seed behind the checked-in rejoin artifacts (verified to separate
/// naive from epoch-tagged rejoin on both backends).
const REJOIN_SEED: u64 = 1;

/// Emit the §7 rejoin demonstration artifacts for both backends.
fn emit_rejoin_artifacts(dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    for backend in [Backend::Sim, Backend::Live] {
        let demo = run_rejoin_demo(backend, REJOIN_SEED);
        let path = format!("{dir}/rejoin_{}.json", backend.name());
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{}", demo.to_json())?;
        eprintln!(
            "rejoin demo ({}): naive admitted {} stale beat(s), epoch filtered {}, \
             re-detected in {:?} / stabilised in {:?} ticks, replay identical: {} -> {path}",
            backend.name(),
            demo.naive.stale_beats_admitted,
            demo.epoch.stale_beats_filtered,
            demo.epoch.reconv_detect,
            demo.epoch.reconv_stable,
            demo.replay_identical,
        );
        if !demo.separates() {
            return Err(format!("rejoin demo failed to separate on {}", backend.name()).into());
        }
    }
    Ok(())
}

/// Emit the coordinator-failover campaign artifacts for both backends.
fn emit_failover_artifacts(dir: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::create_dir_all(dir)?;
    for backend in [Backend::Sim, Backend::Live] {
        let report = run_failover_campaign(backend);
        let path = format!("{dir}/failover_{}.json", backend.name());
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{}", report.to_json())?;
        for c in &report.cells {
            eprintln!(
                "failover ({}): loss {:.3} seed {} -> coordinator {} demoted={} agreed={} \
                 detect {:?} / stable {:?} ticks, healthy={}",
                backend.name(),
                c.loss,
                c.seed,
                c.coordinator,
                c.demoted,
                c.agreed,
                c.summary.reconv_detect,
                c.summary.reconv_stable,
                c.healthy(),
            );
        }
        eprintln!(
            "failover campaign ({}): {} cells -> {path}",
            backend.name(),
            report.cells.len()
        );
        if !report.passes() {
            return Err(format!("failover campaign failed on {}", backend.name()).into());
        }
    }
    Ok(())
}

/// Diff two campaign reports under the calibrated tolerances; hard
/// divergences are fatal.
fn diff_reports_main(left: &str, right: &str) -> Result<(), Box<dyn std::error::Error>> {
    let l = std::fs::read_to_string(left)?;
    let r = std::fs::read_to_string(right)?;
    let report = diff_reports(&l, &r, &Tolerances::default())
        .map_err(|e| format!("malformed campaign report: {e:?}"))?;
    print!("{}", report.render());
    let hard = report.hard().len();
    if hard > 0 {
        return Err(format!("{hard} hard divergence(s) between {left} and {right}").into());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = match arg_value(&args, "--threads") {
        Some(t) => t.parse()?,
        None => std::thread::available_parallelism().map_or(4, |p| p.get()),
    };
    let backend = match arg_value(&args, "--backend") {
        Some(name) => Backend::from_name(&name)
            .ok_or_else(|| format!("unknown backend {name:?} (sim|live)"))?,
        None => Backend::Sim,
    };
    if let Some(left) = arg_value(&args, "--diff") {
        let right = args
            .iter()
            .position(|a| a == "--diff")
            .and_then(|i| args.get(i + 2))
            .ok_or("--diff needs two report paths")?;
        return diff_reports_main(&left, right);
    }
    if let Some(dir) = arg_value(&args, "--rejoin") {
        return emit_rejoin_artifacts(&dir);
    }
    if let Some(dir) = arg_value(&args, "--failover") {
        return emit_failover_artifacts(&dir);
    }
    let mut spec = if args.iter().any(|a| a == "--smoke") {
        smoke_spec(threads)
    } else {
        full_spec(backend, threads)
    };
    spec.monitor = args.iter().any(|a| a == "--monitor");

    let report = run_campaign(&spec);
    let json = report.to_json();

    if spec.monitor {
        let bad = monitor_gate(&report);
        for b in &bad {
            eprintln!("monitor gate: {b}");
        }
        if !bad.is_empty() {
            return Err(format!("monitor gate failed on {} cell(s)", bad.len()).into());
        }
        let gated = report.cells.iter().filter(|c| c.monitor_runs > 0).count();
        eprintln!(
            "monitor gate: {gated} cells ok (corrected-bounds cells clean, \
             under-corrected cells reproduce the R1 breach; {} drifted \
             cells unmonitored)",
            report.cells.len() - gated
        );
    }

    if let Some(path) = arg_value(&args, "--out") {
        let mut file = std::fs::File::create(&path)?;
        writeln!(file, "{json}")?;
        eprintln!(
            "campaign {:?}: {} cells, {} runs -> {path}",
            spec.name,
            report.cells.len(),
            report.total_runs()
        );
    }
    if args.iter().any(|a| a == "--table") {
        print!("{}", markdown_table(&report));
    } else {
        println!("{json}");
    }
    Ok(())
}
