//! A realistic dynamic-membership scenario: a monitoring coordinator with
//! workers that join over time, one worker that leaves gracefully, and one
//! that crashes — over a mildly lossy network.
//!
//! This is the workload class the ICDCS '98 paper motivates: liveness
//! tracking for a set of cooperating processes where membership changes at
//! runtime, with minimal background traffic.
//!
//! ```text
//! cargo run --example cluster_monitor
//! ```

use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::sim::{run_scenario, Scenario};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 16)?;
    println!("== dynamic heartbeat cluster monitor, {params}, 3 workers ==\n");

    let scenario = Scenario {
        n: 3,
        duration: 1_500,
        loss_prob: 0.01,
        // workers join at different times...
        starts: vec![(1, 0), (2, 120), (3, 300)],
        // ...worker 1 leaves gracefully around t=600...
        leaves: vec![(1, 600)],
        // ...and worker 3 crashes at t=900.
        crashes: vec![(3, 900)],
        ..Scenario::steady_state(Variant::Dynamic, params, 0)
    }
    // run the repaired protocol: the original would risk the §5.5 races
    .with_fix(FixLevel::Full)
    .with_log();

    let report = run_scenario(&scenario, 2024);

    // Print a digest rather than the full log (hundreds of events).
    println!("timeline digest:");
    for event in report.log.events() {
        use accelerated_heartbeat::core::trace::Event;
        match event {
            Event::Crash { .. } | Event::NvInactivate { .. } | Event::Leave { .. } => {
                println!("  {event}")
            }
            _ => {}
        }
    }

    println!("\nrun summary:");
    println!("  duration            : {}", report.duration);
    println!("  messages sent       : {}", report.messages_sent);
    println!(
        "  background overhead : {:.4} msgs/unit",
        report.message_rate()
    );
    println!("  losses              : {}", report.messages_lost);
    println!("  graceful leaves     : {:?}", report.leaves);
    println!("  crash detections    : {:?}", report.nv_inactivations);
    match report.detection_delay {
        Some(d) => println!("  crash-to-shutdown   : {d} units"),
        None => println!("  network still partially up at the horizon"),
    }

    // The punchline of the dynamic protocol: a graceful leave disturbs
    // nobody, a crash brings the network down.
    assert_eq!(report.leaves.len(), 1, "worker 1 left gracefully");
    println!("\nworker 1 left without causing any inactivation; worker 3's crash");
    println!("was detected and propagated to the whole network.");
    Ok(())
}
