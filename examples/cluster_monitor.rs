//! A realistic dynamic-membership scenario: a monitoring coordinator with
//! workers that join over time, one worker that leaves gracefully, and one
//! that crashes.
//!
//! This is the workload class the ICDCS '98 paper motivates: liveness
//! tracking for a set of cooperating processes where membership changes at
//! runtime, with minimal background traffic.
//!
//! By default the cluster runs **live**: one OS thread and one UDP socket
//! per process on localhost, wall-clock ticks, faults injected over the
//! control channel (`hb-net`). The original discrete-event simulation of
//! the same scenario is kept behind `--sim`.
//!
//! ```text
//! cargo run --example cluster_monitor             # live UDP cluster
//! cargo run --example cluster_monitor -- --sim    # discrete-event sim
//! cargo run --example cluster_monitor -- --tick-ms 2
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use accelerated_heartbeat::core::coordinator::CoordSpec;
use accelerated_heartbeat::core::events::SharedTap;
use accelerated_heartbeat::core::responder::RespSpec;
use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::monitor::MonitorSet;
use accelerated_heartbeat::net::wire::{Command, Frame};
use accelerated_heartbeat::net::{
    EventSink, NodeReport, NodeRuntime, TimeSource, Transport, UdpTransport, WallClock,
};
use accelerated_heartbeat::sim::schema::{MonitorVerdicts, RunSummary};

const WORKERS: usize = 3;
const START_TICKS: [u64; WORKERS] = [0, 120, 300];
const LEAVE: (usize, u64) = (1, 600); // worker 1 leaves gracefully
const CRASH: (usize, u64) = (3, 900); // worker 3 crashes

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--sim") {
        return run_sim();
    }
    let tick_ms = match args.iter().position(|a| a == "--tick-ms") {
        Some(i) => args
            .get(i + 1)
            .ok_or("--tick-ms needs a value")?
            .parse::<u64>()?,
        None => 5,
    };
    run_live(Duration::from_millis(tick_ms.max(1)))
}

/// The live cluster: coordinator + workers as threads over localhost UDP.
fn run_live(tick: Duration) -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 16)?;
    println!(
        "== live heartbeat cluster over UDP, {params}, {WORKERS} workers, \
         1 tick = {tick:?} ==\n"
    );

    let clock = WallClock::new(tick);
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    // One shared streaming requirement monitor taps every node's event
    // sink: it judges the run against R1–R3 while it happens.
    let monitor = MonitorSet::shared(Variant::Dynamic, params, FixLevel::Full, WORKERS);
    let tap: SharedTap = monitor.clone();

    // Sockets first, so the fault injector knows every address up front.
    // Workers are told where the coordinator lives; the coordinator learns
    // worker addresses from their join beats.
    let coord_transport = UdpTransport::bind("127.0.0.1:0")?;
    let coord_addr = coord_transport.local_addr()?;
    let mut injector = UdpTransport::bind("127.0.0.1:0")?;
    let mut worker_transports = Vec::new();
    for pid in 1..=WORKERS {
        let mut t = UdpTransport::bind("127.0.0.1:0")?;
        t.add_peer(0, coord_addr);
        injector.add_peer(pid, t.local_addr()?);
        worker_transports.push(t);
    }

    let spec = CoordSpec::new(Variant::Dynamic, params, WORKERS, FixLevel::Full);
    let mut coord = NodeRuntime::coordinator(spec, coord_transport).with_sink(EventSink::memory());
    coord.attach_tap(tap.clone());
    let coord_thread = {
        let (clock, stop, done) = (clock, Arc::clone(&stop), Arc::clone(&done));
        thread::spawn(move || -> std::io::Result<NodeReport> {
            coord.run(&clock, &stop)?;
            done.store(true, Ordering::Relaxed);
            Ok(coord.finish())
        })
    };

    let worker_threads: Vec<_> = worker_transports
        .into_iter()
        .enumerate()
        .map(|(i, transport)| {
            let (clock, stop, tap) = (clock, Arc::clone(&stop), tap.clone());
            thread::spawn(move || -> std::io::Result<NodeReport> {
                // Late joiners sleep until their start tick, exactly like
                // the simulated scenario's `starts`.
                thread::sleep(clock.until(START_TICKS[i]));
                let spec = RespSpec::new(Variant::Dynamic, params, FixLevel::Full);
                let mut worker = NodeRuntime::participant(i + 1, spec, transport)
                    .started_at(clock.now())
                    .with_sink(EventSink::memory());
                worker.attach_tap(tap);
                worker.run(&clock, &stop)?;
                Ok(worker.finish())
            })
        })
        .collect();

    // Fault injection from the outside, over the control channel.
    let src = WORKERS + 1;
    thread::sleep(clock.until(LEAVE.1));
    injector.send(
        clock.now(),
        LEAVE.0,
        &Frame::control(src, Command::Leave),
        0,
    )?;
    println!(
        "[inject] t≈{:>4}  worker {} asked to leave",
        clock.now(),
        LEAVE.0
    );
    thread::sleep(clock.until(CRASH.1));
    injector.send(
        clock.now(),
        CRASH.0,
        &Frame::control(src, Command::Crash),
        0,
    )?;
    println!("[inject] t≈{:>4}  worker {} crashed", clock.now(), CRASH.0);

    // The coordinator detects the silence and inactivates itself; give it
    // the corrected §6.2 bound plus generous real-time slack.
    let bound = u64::from(
        params.p0_bound_corrected(Variant::Dynamic)
            + params.tmin()
            + params.responder_bound_corrected(Variant::Dynamic),
    );
    let deadline = CRASH.1 + 4 * bound;
    while !done.load(Ordering::Relaxed) && clock.now() < deadline {
        thread::sleep(tick);
    }

    // Let the surviving workers notice the coordinator's silence (their
    // corrected watchdogs) before tearing the cluster down.
    let tail = params.responder_bound_corrected(Variant::Dynamic) + params.tmin() + 10;
    thread::sleep(tick * tail);

    // Wind the cluster down: crashed processes consume forever on their
    // own, so tell everyone to stop.
    for pid in 1..=WORKERS {
        let _ = injector.send(clock.now(), pid, &Frame::control(src, Command::Shutdown), 0);
    }
    stop.store(true, Ordering::Relaxed);

    let mut reports = vec![coord_thread.join().expect("coordinator panicked")?];
    for t in worker_threads {
        reports.push(t.join().expect("worker panicked")?);
    }
    let verdicts = {
        let mut mon = monitor.lock().expect("monitor poisoned");
        mon.finish(reports.iter().map(|r| r.now).max().unwrap_or(0));
        mon.verdicts()
    };
    report_live(&reports, bound, verdicts);
    Ok(())
}

/// Digest and summary over the per-node reports, in the shared schema.
fn report_live(reports: &[NodeReport], bound: u64, verdicts: MonitorVerdicts) {
    // Each node is the authority on its own lifecycle events.
    let mut lifecycle: Vec<Event> = Vec::new();
    for r in reports {
        lifecycle.extend(r.log.events().iter().filter(|e| {
            matches!(
                e,
                Event::Crash { pid, .. } | Event::NvInactivate { pid, .. } | Event::Leave { pid, .. }
                    if *pid == r.pid
            )
        }));
    }
    lifecycle.sort_by_key(Event::at);

    println!("\ntimeline digest:");
    for event in &lifecycle {
        println!("  {event}");
    }

    let crashes: Vec<_> = lifecycle
        .iter()
        .filter_map(|e| match e {
            Event::Crash { at, pid } => Some((*pid, *at)),
            _ => None,
        })
        .collect();
    let nv: Vec<_> = lifecycle
        .iter()
        .filter_map(|e| match e {
            Event::NvInactivate { at, pid } => Some((*pid, *at)),
            _ => None,
        })
        .collect();
    let leaves: Vec<_> = lifecycle
        .iter()
        .filter_map(|e| match e {
            Event::Leave { at, pid } => Some((*pid, *at)),
            _ => None,
        })
        .collect();
    let sent: u64 = reports.iter().map(|r| r.counters.beats_sent).sum();
    let delivered: u64 = reports.iter().map(|r| r.counters.beats_received).sum();
    let first_crash = crashes.iter().map(|&(_, t)| t).min();
    let detection = match (first_crash, nv.iter().map(|&(_, t)| t).max()) {
        (Some(c), Some(d)) if d >= c => Some(d - c),
        _ => None,
    };

    let summary = RunSummary {
        source: "live",
        duration: reports.iter().map(|r| r.now).max().unwrap_or(0),
        messages_sent: sent,
        messages_delivered: delivered,
        messages_lost: sent.saturating_sub(delivered),
        crashes,
        nv_inactivations: nv,
        leaves,
        revives: Vec::new(),
        reconv_detect: None,
        reconv_stable: None,
        stale_beats_admitted: 0,
        stale_beats_filtered: 0,
        detection_delay: detection,
        false_inactivations: 0,
        monitor: Some(verdicts),
        final_status: reports.iter().map(|r| r.status).collect(),
    };

    println!("\nrun summary (shared sim/live schema):");
    println!("  {}", summary.to_json());

    if verdicts.clean() {
        println!("\nall R1–R3 requirement monitors stayed clean.");
    } else {
        // A wall-clock stall longer than the watchdog bound is a real
        // crash as far as the protocol (and the monitor) can tell.
        println!("\na requirement monitor fired: {}", verdicts.to_json());
        println!("with the full fix that means the host stalled a node thread past");
        println!("the watchdog bound — re-run, or raise --tick-ms.");
    }

    if summary.crashes.is_empty() {
        // The cluster fell over before the injected crash: the host stalled
        // these threads for longer than the watchdog bound. A live
        // deployment cannot tell such a freeze from a real crash — that is
        // precisely the failure model the protocol detects.
        println!("\nthe cluster inactivated before the injected crash: the host paused");
        println!("the processes for longer than the watchdog bound. Re-run, or give");
        println!("the protocol more real time per tick with --tick-ms.");
        return;
    }

    match summary.detection_delay {
        Some(d) => {
            println!("\ncrash-to-shutdown: {d} ticks (corrected §6.2 network bound: {bound})")
        }
        None => println!("\nnetwork still partially up at the horizon"),
    }

    // The punchline of the dynamic protocol: a graceful leave disturbs
    // nobody, a crash brings the network down.
    assert_eq!(summary.leaves.len(), 1, "worker 1 left gracefully");
    println!("worker 1 left without causing any inactivation; worker 3's crash");
    println!("was detected and propagated to the whole network.");
}

/// The original discrete-event simulation of the same scenario.
fn run_sim() -> Result<(), Box<dyn std::error::Error>> {
    use accelerated_heartbeat::sim::{run_scenario, Scenario};

    let params = Params::new(2, 16)?;
    println!("== dynamic heartbeat cluster monitor (simulated), {params}, 3 workers ==\n");

    let scenario = Scenario {
        n: WORKERS,
        duration: 1_500,
        loss_prob: 0.01,
        // workers join at different times...
        starts: vec![(1, 0), (2, 120), (3, 300)],
        // ...worker 1 leaves gracefully around t=600...
        leaves: vec![LEAVE],
        // ...and worker 3 crashes at t=900.
        crashes: vec![CRASH],
        ..Scenario::steady_state(Variant::Dynamic, params, 0)
    }
    // run the repaired protocol: the original would risk the §5.5 races
    .with_fix(FixLevel::Full)
    .with_log();

    let report = run_scenario(&scenario, 2024);

    // Print a digest rather than the full log (hundreds of events).
    println!("timeline digest:");
    for event in report.log.events() {
        match event {
            Event::Crash { .. } | Event::NvInactivate { .. } | Event::Leave { .. } => {
                println!("  {event}")
            }
            _ => {}
        }
    }

    println!("\nrun summary:");
    println!("  duration            : {}", report.duration);
    println!("  messages sent       : {}", report.messages_sent);
    println!(
        "  background overhead : {:.4} msgs/unit",
        report.message_rate()
    );
    println!("  losses              : {}", report.messages_lost);
    println!("  graceful leaves     : {:?}", report.leaves);
    println!("  crash detections    : {:?}", report.nv_inactivations);
    match report.detection_delay {
        Some(d) => println!("  crash-to-shutdown   : {d} units"),
        None => println!("  network still partially up at the horizon"),
    }

    // The recorded log replays through the streaming requirement monitor:
    // same verdicts as a live tap would have produced during the run.
    let verdicts = accelerated_heartbeat::monitor::replay(
        Variant::Dynamic,
        params,
        FixLevel::Full,
        WORKERS,
        report.log.events(),
        report.duration,
    );
    let mut summary = RunSummary::from_report(&report);
    summary.monitor = Some(verdicts);
    println!("\nrun summary (shared sim/live schema):");
    println!("  {}", summary.to_json());
    assert!(
        verdicts.clean(),
        "the fully-fixed simulated run must be monitor-clean: {}",
        verdicts.to_json()
    );
    println!("\nall R1–R3 requirement monitors stayed clean on replay.");

    // The punchline of the dynamic protocol: a graceful leave disturbs
    // nobody, a crash brings the network down.
    assert_eq!(report.leaves.len(), 1, "worker 1 left gracefully");
    println!("\nworker 1 left without causing any inactivation; worker 3's crash");
    println!("was detected and propagated to the whole network.");
    Ok(())
}
