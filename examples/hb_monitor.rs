//! Streaming requirement monitor as a standalone tool: tail a recorded
//! event log — or a live localhost-UDP cluster — and print R1–R3
//! verdicts as they are decided.
//!
//! Replay mode reads one [`event_json`] record per line (a file, or `-`
//! for stdin), feeds each event to a [`MonitorSet`], announces every
//! first violation the moment the stream decides it, and dumps the
//! final verdicts as JSON:
//!
//! ```text
//! cargo run --example hb_monitor -- --emit run.jsonl --fix original
//! cargo run --example hb_monitor -- --log run.jsonl \
//!     --variant binary --tmin 2 --tmax 8 --fix original --n 1
//! cargo run --example hb_monitor -- --log - < run.jsonl   # stdin
//! ```
//!
//! `--emit FILE` produces a demo log: a simulated participant crash under
//! the chosen fix level. Replaying an `original`-fix log through the
//! monitor reproduces the paper's bound error offline — R1 fires at the
//! claimed `2·tmax` deadline, from nothing but the recorded events.
//!
//! Live mode spins up a static-membership UDP cluster on localhost,
//! attaches one shared monitor to every node's event sink, crashes a
//! worker mid-run, and polls the verdicts in near-real time while the
//! protocol reacts:
//!
//! ```text
//! cargo run --example hb_monitor -- --live
//! cargo run --example hb_monitor -- --live --tick-ms 20
//! cargo run --example hb_monitor -- --live --member
//! ```
//!
//! The monitor judges the *corrected* §6.2 bound when the cluster runs
//! the full fix, so a healthy live run ends clean: the coordinator's own
//! watchdog always gives up before the monitor's deadline. A host that
//! stalls the node threads past the bound is indistinguishable from a
//! crash — in that case the monitor fires R1, faithfully.
//!
//! Both live flavours attach a watch tap that prints membership
//! `view-change` / `state-transfer` events the moment they stream by.
//! The plain UDP cluster never emits them; `--live --member` runs the
//! `hb-member` group layer on the live loopback runtime instead —
//! crashing and reviving the coordinator — so the watch shows the
//! failover views install, the demotion, and the state transfer, with
//! the same R1–R3 monitor attached (a failover view retires R1).
//!
//! [`event_json`]: accelerated_heartbeat::core::events::event_json

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use accelerated_heartbeat::core::coordinator::CoordSpec;
use accelerated_heartbeat::core::events::{parse_event_json, EventTap, SharedTap};
use accelerated_heartbeat::core::responder::RespSpec;
use accelerated_heartbeat::core::trace::Event;
use accelerated_heartbeat::core::{FixLevel, Params, Variant};
use accelerated_heartbeat::monitor::MonitorSet;
use accelerated_heartbeat::net::wire::{Command, Frame};
use accelerated_heartbeat::net::{
    EventSink, NodeReport, NodeRuntime, TimeSource, Transport, UdpTransport, WallClock,
};
use accelerated_heartbeat::sim::schema::{FirstViolation, MonitorVerdicts};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_variant(name: &str) -> Result<Variant, String> {
    [
        Variant::Binary,
        Variant::RevisedBinary,
        Variant::TwoPhase,
        Variant::Static,
        Variant::Expanding,
        Variant::Dynamic,
    ]
    .into_iter()
    .find(|v| v.name() == name)
    .ok_or_else(|| format!("unknown variant {name:?}"))
}

fn parse_fix(name: &str) -> Result<FixLevel, String> {
    [
        FixLevel::Original,
        FixLevel::ReceivePriority,
        FixLevel::CorrectedBounds,
        FixLevel::Full,
    ]
    .into_iter()
    .find(|f| f.name() == name)
    .ok_or_else(|| format!("unknown fix level {name:?}"))
}

/// Print any verdict that fired since the previous poll; returns the
/// verdicts seen, to carry into the next poll.
fn announce_new(seen: MonitorVerdicts, now: MonitorVerdicts) -> MonitorVerdicts {
    let fresh = |old: Option<FirstViolation>, new: Option<FirstViolation>, req: &str| {
        if let (None, Some(v)) = (old, new) {
            println!(
                "[violation] {req}: pid {} at t={} (bound {})",
                v.pid, v.at, v.bound
            );
        }
    };
    fresh(seen.r1, now.r1, "R1");
    fresh(seen.r2, now.r2, "R2");
    fresh(seen.r3, now.r3, "R3");
    now
}

/// A watch tap printing membership view-change and state-transfer
/// events the moment they stream by (attached in both live flavours).
struct ViewWatch;

impl EventTap for ViewWatch {
    fn on_event(&mut self, e: &Event) {
        match *e {
            Event::ViewChange {
                at,
                pid,
                view_no,
                coordinator,
            } => println!(
                "[view]      t≈{at:>4}  pid {pid} installed view {view_no} \
                 (coordinator {coordinator})"
            ),
            Event::StateTransfer {
                at,
                from,
                to,
                view_no,
            } => {
                println!("[xfer]      t≈{at:>4}  coordinator {from} shipped view {view_no} to {to}")
            }
            _ => {}
        }
    }
}

/// Emit mode: simulate a participant crash under the chosen protocol
/// configuration and write the event log as JSON lines.
fn run_emit(args: &[String], path: &str) -> Result<(), Box<dyn std::error::Error>> {
    use accelerated_heartbeat::core::events::event_json;
    use accelerated_heartbeat::sim::{run_scenario, Scenario};

    let variant = parse_variant(&arg_value(args, "--variant").unwrap_or_else(|| "binary".into()))?;
    let fix = parse_fix(&arg_value(args, "--fix").unwrap_or_else(|| "original".into()))?;
    let tmin: u32 = arg_value(args, "--tmin")
        .unwrap_or_else(|| "2".into())
        .parse()?;
    let tmax: u32 = arg_value(args, "--tmax")
        .unwrap_or_else(|| "8".into())
        .parse()?;
    let n: usize = arg_value(args, "--n")
        .unwrap_or_else(|| "1".into())
        .parse()?;
    let params = Params::new(tmin, tmax)?;

    let duration = 600;
    let scenario = Scenario {
        crashes: vec![(1, 300)],
        ..Scenario::steady_state(variant, params, duration)
    }
    .with_n(n)
    .with_fix(fix)
    .with_log();
    let report = run_scenario(&scenario, 1);

    let mut out = std::fs::File::create(path)?;
    for e in report.log.events() {
        writeln!(out, "{}", event_json(e))?;
    }
    eprintln!(
        "wrote {} events ({variant}/{fix} {params} n={n}, crash at t=300, horizon {duration}) \
         -> {path}",
        report.log.events().len()
    );
    eprintln!(
        "replay with: --log {path} --variant {variant} --fix {fix} --tmin {tmin} --tmax {tmax} \
         --n {n} --horizon {duration}"
    );
    Ok(())
}

/// Replay mode: parse a JSON-lines event log and monitor it offline.
fn run_replay(args: &[String], log: &str) -> Result<(), Box<dyn std::error::Error>> {
    let variant = parse_variant(&arg_value(args, "--variant").unwrap_or_else(|| "binary".into()))?;
    let fix = parse_fix(&arg_value(args, "--fix").unwrap_or_else(|| "full-fix".into()))?;
    let tmin: u32 = arg_value(args, "--tmin")
        .unwrap_or_else(|| "2".into())
        .parse()?;
    let tmax: u32 = arg_value(args, "--tmax")
        .unwrap_or_else(|| "8".into())
        .parse()?;
    let n: usize = arg_value(args, "--n")
        .unwrap_or_else(|| "1".into())
        .parse()?;
    let params = Params::new(tmin, tmax)?;

    let reader: Box<dyn BufRead> = if log == "-" {
        Box::new(BufReader::new(std::io::stdin()))
    } else {
        Box::new(BufReader::new(std::fs::File::open(log)?))
    };

    let mut monitor = MonitorSet::new(variant, params, fix, n);
    eprintln!(
        "monitoring {variant}/{fix} {params} n={n}: R1 bound {} ticks",
        monitor.bound()
    );

    let mut seen = MonitorVerdicts::default();
    let (mut events, mut skipped, mut last_t) = (0u64, 0u64, 0u64);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_event_json(&line) {
            Some(e) => {
                events += 1;
                last_t = last_t.max(e.at());
                monitor.observe(&e);
                seen = announce_new(seen, monitor.verdicts());
            }
            None => skipped += 1,
        }
    }
    let horizon = match arg_value(args, "--horizon") {
        Some(h) => h.parse()?,
        None => last_t,
    };
    monitor.finish(horizon);
    announce_new(seen, monitor.verdicts());

    eprintln!("{events} events replayed, {skipped} malformed line(s) skipped, horizon {horizon}");
    println!("{}", monitor.verdicts().to_json());
    Ok(())
}

/// Membership live mode: the `hb-member` group layer on the live
/// loopback runtime, coordinator crashed and revived, with the monitor
/// and the view watch tapping the stream as the engine runs.
fn run_live_member() -> Result<(), Box<dyn std::error::Error>> {
    use accelerated_heartbeat::member::{
        run_live, FaultKind, MemberConfig, MemberFault, MemberSpec, RoleKind,
    };

    const GROUP: usize = 4;
    const DURATION: u64 = 900;
    const CRASH_AT: u64 = 300;
    const REVIVE_AT: u64 = 600;

    let params = Params::new(2, 8)?;
    let (variant, fix) = (Variant::Dynamic, FixLevel::Full);
    println!(
        "== live membership group, {variant}/{fix}, {params}, {GROUP} processes, \
         coordinator crash at t={CRASH_AT}, revive at t={REVIVE_AT} ==\n"
    );

    let monitor = MonitorSet::shared(variant, params, fix, GROUP - 1);
    let watch: SharedTap = Arc::new(std::sync::Mutex::new(ViewWatch));
    let mut cfg = MemberConfig::clean(MemberSpec::new(variant, params, fix), GROUP, 1, DURATION);
    cfg.faults.push(MemberFault {
        at: CRASH_AT,
        kind: FaultKind::Crash,
        pid: 0,
    });
    cfg.faults.push(MemberFault {
        at: REVIVE_AT,
        kind: FaultKind::Revive,
        pid: 0,
    });
    let report = run_live(cfg, None, vec![monitor.clone() as SharedTap, watch]);

    println!(
        "\n[observe]   final roles {:?}, agreed on one view: {}",
        report.roles,
        report.agreed()
    );
    for s in &report.reconv {
        println!(
            "[reconv]    {:?} pid {} at t={}: detected {:?}, stable {:?}",
            s.kind, s.pid, s.at, s.detect, s.stable
        );
    }
    let mut mon = monitor.lock().expect("monitor poisoned");
    mon.finish(DURATION);
    let verdicts = mon.verdicts();
    println!("\nfinal verdicts (horizon {DURATION}):");
    println!("{}", verdicts.to_json());
    if verdicts.clean()
        && report.agreed()
        && report.roles[0] == RoleKind::Participant
        && report.views[0].coordinator != 0
    {
        println!(
            "\nfailover healthy: the successor's view excluded the dead coordinator, \
             the revived"
        );
        println!("ex-coordinator came back demoted (no split), and every monitor stayed clean.");
        Ok(())
    } else {
        Err("membership failover run unhealthy".into())
    }
}

/// Live mode: a static 2-worker UDP cluster with one injected crash,
/// monitored in near-real time.
fn run_live(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    const WORKERS: usize = 2;
    const CRASH: (usize, u64) = (2, 200);

    let tick_ms: u64 = arg_value(args, "--tick-ms")
        .unwrap_or_else(|| "10".into())
        .parse()?;
    let tick = Duration::from_millis(tick_ms.max(1));
    let params = Params::new(2, 16)?;
    let (variant, fix) = (Variant::Static, FixLevel::Full);

    let monitor = MonitorSet::shared(variant, params, fix, WORKERS);
    let tap: SharedTap = monitor.clone();
    let watch: SharedTap = Arc::new(std::sync::Mutex::new(ViewWatch));
    println!(
        "== live monitored cluster over UDP, {variant}/{fix}, {params}, {WORKERS} workers, \
         1 tick = {tick:?} ==\n"
    );

    let clock = WallClock::new(tick);
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    // Static membership: every address is known up front, including the
    // workers' to the coordinator (there is no join beat to learn from).
    let mut coord_transport = UdpTransport::bind("127.0.0.1:0")?;
    let coord_addr = coord_transport.local_addr()?;
    let mut injector = UdpTransport::bind("127.0.0.1:0")?;
    let mut worker_transports = Vec::new();
    for pid in 1..=WORKERS {
        let mut t = UdpTransport::bind("127.0.0.1:0")?;
        t.add_peer(0, coord_addr);
        coord_transport.add_peer(pid, t.local_addr()?);
        injector.add_peer(pid, t.local_addr()?);
        worker_transports.push(t);
    }

    let spec = CoordSpec::new(variant, params, WORKERS, fix);
    let mut coord = NodeRuntime::coordinator(spec, coord_transport).with_sink(EventSink::memory());
    coord.attach_tap(tap.clone());
    coord.attach_tap(watch.clone());
    let coord_thread = {
        let (clock, stop, done) = (clock, Arc::clone(&stop), Arc::clone(&done));
        thread::spawn(move || -> std::io::Result<NodeReport> {
            coord.run(&clock, &stop)?;
            done.store(true, Ordering::Relaxed);
            Ok(coord.finish())
        })
    };
    let worker_threads: Vec<_> = worker_transports
        .into_iter()
        .enumerate()
        .map(|(i, transport)| {
            let (clock, stop) = (clock, Arc::clone(&stop));
            let spec = RespSpec::new(variant, params, fix);
            let mut worker =
                NodeRuntime::participant(i + 1, spec, transport).with_sink(EventSink::memory());
            worker.attach_tap(tap.clone());
            worker.attach_tap(watch.clone());
            thread::spawn(move || -> std::io::Result<NodeReport> {
                worker.run(&clock, &stop)?;
                Ok(worker.finish())
            })
        })
        .collect();

    // Crash one worker from the outside, then watch the monitor while the
    // coordinator's watchdog discovers the silence.
    let src = WORKERS + 1;
    thread::sleep(clock.until(CRASH.1));
    injector.send(
        clock.now(),
        CRASH.0,
        &Frame::control(src, Command::Crash),
        0,
    )?;
    println!(
        "[inject]    t≈{:>4}  worker {} crashed",
        clock.now(),
        CRASH.0
    );

    let bound = u64::from(params.p0_bound_corrected(variant));
    let deadline = CRASH.1 + 6 * bound;
    let mut seen = MonitorVerdicts::default();
    while !done.load(Ordering::Relaxed) && clock.now() < deadline {
        thread::sleep(tick);
        let now = monitor.lock().expect("monitor poisoned").verdicts();
        seen = announce_new(seen, now);
    }
    println!(
        "[observe]   t≈{:>4}  coordinator {}",
        clock.now(),
        if done.load(Ordering::Relaxed) {
            "inactivated: network is down"
        } else {
            "still up at the watch horizon"
        }
    );

    for pid in 1..=WORKERS {
        let _ = injector.send(clock.now(), pid, &Frame::control(src, Command::Shutdown), 0);
    }
    stop.store(true, Ordering::Relaxed);
    let mut reports = vec![coord_thread.join().expect("coordinator panicked")?];
    for t in worker_threads {
        reports.push(t.join().expect("worker panicked")?);
    }
    let horizon = reports.iter().map(|r| r.now).max().unwrap_or(0);

    if args.iter().any(|a| a == "--debug") {
        for r in &reports {
            eprintln!("-- p[{}] log --", r.pid);
            for e in r.log.events().iter().take(40) {
                eprintln!("   {e}");
            }
        }
    }
    let mut mon = monitor.lock().expect("monitor poisoned");
    mon.finish(horizon);
    announce_new(seen, mon.verdicts());
    let verdicts = mon.verdicts();
    println!("\nfinal verdicts (horizon {horizon}):");
    println!("{}", verdicts.to_json());
    if verdicts.clean() {
        println!("\nall requirement monitors stayed clean: the crash was detected and");
        println!("propagated inside the corrected §6.2 bound ({bound} ticks).");
    } else {
        println!("\na monitor fired. With the full fix that means the host stalled the");
        println!("node threads past the watchdog bound — a freeze a live deployment");
        println!("cannot tell from a crash. Re-run, or raise --tick-ms.");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = arg_value(&args, "--emit") {
        return run_emit(&args, &path);
    }
    if let Some(log) = arg_value(&args, "--log") {
        return run_replay(&args, &log);
    }
    if args.iter().any(|a| a == "--live") {
        if args.iter().any(|a| a == "--member") {
            return run_live_member();
        }
        return run_live(&args);
    }
    eprintln!(
        "usage: hb_monitor --log FILE|-  [--variant V --tmin N --tmax N --fix F --n N --horizon T]"
    );
    eprintln!("       hb_monitor --emit FILE  [--variant V --tmin N --tmax N --fix F --n N]");
    eprintln!("       hb_monitor --live [--tick-ms N] [--debug] [--member]");
    Err("no mode selected".into())
}
