//! `hb_analyze` — the static-analyzer CLI.
//!
//! Lints the transition-system IR of every protocol machine and, on
//! request, runs the dataflow/symmetry report, the symmetry-certificate
//! cross-check, the POR soundness cross-check, or the n ≥ 2 scale
//! campaign:
//!
//! ```text
//! cargo run --release --example hb_analyze                      # human report, all machines
//! cargo run --release --example hb_analyze -- --json            # one JSON line per finding
//! cargo run --release --example hb_analyze -- --machines fixed --deny-findings
//! cargo run --release --example hb_analyze -- --dataflow        # ranges + symmetry verdicts
//! cargo run --release --example hb_analyze -- --sym-check       # quotient vs brute vs full
//! cargo run --release --example hb_analyze -- --por-check       # POR vs full, state table
//! cargo run --release --example hb_analyze -- --por-check --no-por
//! cargo run --release --example hb_analyze -- --scale --ns 2,4,8 --budget-secs 30
//! ```
//!
//! `--deny-findings` exits non-zero if any *error-severity* finding is
//! reported for the selected machines — the CI gate runs it over the
//! `--machines fixed` set (ReceivePriority/Full), which must be clean.
//! Advisory findings (`pid-concrete-guard` on the member machines) are
//! reported but never deny. `--sym-check` exits non-zero if the
//! certificate census deviates from 48 certified + 24 refused or any
//! smoke-grid cell's sort-key-quotient verdict disagrees with the
//! brute-force quotient or the unreduced checker. `--no-por` is the
//! escape hatch: the cross-check cells run full exploration only.

use hb_analyze::{dataflow, lint_all, lints, por_check, render_human};
use hb_core::describe::MachineIr;
use hb_core::{FixLevel, Params, Variant};
use hb_verify::requirements::{build_model, error_predicate, verify_with_n, Requirement};
use hb_verify::symmetry::{canonical, certified_canonical};
use hb_verify::tables::{render_scale, ScaleLimits};
use mck::symmetry::Symmetric;
use mck::{CheckOutcome, Checker};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if flag("--dataflow") {
        print!(
            "{}",
            dataflow::render_dataflow(&dataflow::dataflow_report())
        );
        return;
    }
    if flag("--sym-check") {
        sym_check_main();
        return;
    }
    if flag("--scale") {
        scale_main(&value);
        return;
    }
    if flag("--por-check") {
        por_check_main(flag("--no-por"));
        return;
    }

    let selection = value("--machines").unwrap_or_else(|| "all".to_string());
    let machines: Vec<MachineIr> = lints::all_machines()
        .into_iter()
        .filter(|m| match selection.as_str() {
            "fixed" => m.fix.receive_priority(),
            "naive" => !m.fix.receive_priority(),
            "all" => true,
            other => {
                eprintln!("unknown --machines selection '{other}' (all|fixed|naive)");
                std::process::exit(2);
            }
        })
        .collect();

    let findings = lint_all(&machines);
    if flag("--json") {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        print!("{}", render_human(&findings, machines.len()));
    }
    let denying = findings.iter().filter(|f| !f.lint.is_advisory()).count();
    if flag("--deny-findings") && denying > 0 {
        eprintln!(
            "hb_analyze: {denying} error-severity finding(s) on --machines {selection}; denying",
        );
        std::process::exit(1);
    }
}

/// The certificate census plus the three-way verdict cross-check on the
/// smoke grid: for each multi-party variant × fix extremes × R2/R3 at
/// n = 2, the sort-key quotient, the brute-force n! quotient, and the
/// unreduced checker must return the same verdict.
fn sym_check_main() {
    let reports = dataflow::dataflow_report();
    let (certified, refused) = dataflow::verdict_counts(&reports);
    println!("certificate census: {certified} certified, {refused} refused");
    let mut failed = certified != 48 || refused != 24;
    if failed {
        eprintln!("sym-check: expected 48 certified + 24 refused");
    }

    let p = Params::new(2, 6).expect("valid params");
    for variant in [Variant::Static, Variant::Expanding, Variant::Dynamic] {
        for fix in [FixLevel::Original, FixLevel::Full] {
            for req in [Requirement::R2, Requirement::R3] {
                let n = 2;
                let model = build_model(variant, p, fix, n, req).stagger_starts(true);
                let canon = match certified_canonical(&model) {
                    Ok(c) => c,
                    Err(refusal) => {
                        eprintln!(
                            "sym-check: {}/{}/{} unexpectedly refused: {refusal}",
                            variant.name(),
                            fix.name(),
                            req.name()
                        );
                        failed = true;
                        continue;
                    }
                };
                let pred = |s: &hb_verify::HbState| !error_predicate(&model, req)(s);
                let sorted = Symmetric::new(&model, canon);
                let sorted_holds = matches!(
                    Checker::new(&sorted).check_invariant(pred),
                    CheckOutcome::Holds(_)
                );
                let brute = Symmetric::new(&model, canonical);
                let brute_holds = matches!(
                    Checker::new(&brute).check_invariant(pred),
                    CheckOutcome::Holds(_)
                );
                let full_holds = verify_with_n(variant, p, fix, req, n).holds;
                let ok = sorted_holds == brute_holds && brute_holds == full_holds;
                println!(
                    "{}/{}/{} n={n}: sorted={} brute={} full={} {}",
                    variant.name(),
                    fix.name(),
                    req.name(),
                    sorted_holds,
                    brute_holds,
                    full_holds,
                    if ok { "ok" } else { "DIVERGED" }
                );
                failed |= !ok;
            }
        }
    }
    if failed {
        eprintln!("sym-check: FAILED");
        std::process::exit(1);
    }
    println!("sym-check: all quotient verdicts agree with the unreduced checker");
}

/// The n ≥ 2 scale campaign (EXPERIMENTS §K). `--variants` and
/// `--reqs` narrow the grid for piecemeal sweeps of the expensive
/// corners (`--variants static --reqs R2 --ns 8`).
fn scale_main(value: &dyn Fn(&str) -> Option<String>) {
    let ns: Vec<usize> = value("--ns")
        .unwrap_or_else(|| "2,4,8".into())
        .split(',')
        .map(|s| s.trim().parse().expect("--ns takes e.g. 2,4,8"))
        .collect();
    let variants: Vec<Variant> = value("--variants")
        .unwrap_or_else(|| "static,expanding,dynamic".into())
        .split(',')
        .map(|s| match s.trim() {
            "static" => Variant::Static,
            "expanding" => Variant::Expanding,
            "dynamic" => Variant::Dynamic,
            other => panic!("--variants takes static|expanding|dynamic, not '{other}'"),
        })
        .collect();
    let reqs: Vec<Requirement> = value("--reqs")
        .unwrap_or_else(|| "R2,R3".into())
        .split(',')
        .map(|s| match s.trim() {
            "R1" => Requirement::R1,
            "R2" => Requirement::R2,
            "R3" => Requirement::R3,
            other => panic!("--reqs takes R1|R2|R3, not '{other}'"),
        })
        .collect();
    let limits = ScaleLimits {
        max_states: value("--max-states")
            .map(|v| v.parse().expect("--max-states takes a count"))
            .unwrap_or(ScaleLimits::default().max_states),
        time_budget: std::time::Duration::from_secs(
            value("--budget-secs")
                .map(|v| v.parse().expect("--budget-secs takes seconds"))
                .unwrap_or(30),
        ),
    };
    let p = Params::new(2, 6).expect("valid params");
    let mut cells = Vec::new();
    for &variant in &variants {
        for &n in &ns {
            for &req in &reqs {
                for reduction in hb_verify::Reduction::ALL {
                    cells.push(hb_verify::scale_cell(
                        variant,
                        p,
                        FixLevel::Full,
                        req,
                        n,
                        reduction,
                        limits,
                    ));
                }
            }
        }
    }
    print!("{}", render_scale(&cells));
}

fn por_check_main(no_por: bool) {
    if no_por {
        // Escape hatch: full exploration only, no reduction in play.
        let variants = hb_core::Variant::TABLE1
            .into_iter()
            .chain(hb_core::Variant::TABLE2);
        for variant in variants {
            for params in hb_verify::tables::paper_params() {
                for req in Requirement::ALL {
                    let n = por_check::cell_n(variant, req);
                    let v = verify_with_n(variant, params, hb_core::FixLevel::Original, req, n);
                    println!(
                        "{}/{}-{}/{:?}: {} ({} states, full exploration)",
                        variant.name(),
                        params.tmin(),
                        params.tmax(),
                        req,
                        v.symbol(),
                        v.stats.states
                    );
                }
            }
        }
        return;
    }
    let cells = por_check::por_cross_check();
    print!("{}", por_check::render_state_table(&cells));
    let frac = por_check::fraction_reduced(&cells, 30.0);
    println!("fraction of cells at >=30% reduction: {:.2}", frac);
}
