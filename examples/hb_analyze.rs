//! `hb_analyze` — the static-analyzer CLI.
//!
//! Lints the transition-system IR of every protocol machine and, on
//! request, runs the POR soundness cross-check:
//!
//! ```text
//! cargo run --release --example hb_analyze                      # human report, all machines
//! cargo run --release --example hb_analyze -- --json            # one JSON line per finding
//! cargo run --release --example hb_analyze -- --machines fixed --deny-findings
//! cargo run --release --example hb_analyze -- --por-check       # POR vs full, state table
//! cargo run --release --example hb_analyze -- --por-check --no-por
//! ```
//!
//! `--deny-findings` exits non-zero if any finding is reported for the
//! selected machines — the CI gate runs it over the `--machines fixed`
//! set (ReceivePriority/Full), which must be clean. `--no-por` is the
//! escape hatch: the cross-check cells run full exploration only.

use hb_analyze::{lint_all, lints, por_check, render_human};
use hb_core::describe::MachineIr;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| args.iter().any(|a| a == name);
    let value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };

    if flag("--por-check") {
        por_check_main(flag("--no-por"));
        return;
    }

    let selection = value("--machines").unwrap_or_else(|| "all".to_string());
    let machines: Vec<MachineIr> = lints::all_machines()
        .into_iter()
        .filter(|m| match selection.as_str() {
            "fixed" => m.fix.receive_priority(),
            "naive" => !m.fix.receive_priority(),
            "all" => true,
            other => {
                eprintln!("unknown --machines selection '{other}' (all|fixed|naive)");
                std::process::exit(2);
            }
        })
        .collect();

    let findings = lint_all(&machines);
    if flag("--json") {
        for f in &findings {
            println!("{}", f.to_json());
        }
    } else {
        print!("{}", render_human(&findings, machines.len()));
    }
    if flag("--deny-findings") && !findings.is_empty() {
        eprintln!(
            "hb_analyze: {} finding(s) on --machines {selection}; denying",
            findings.len()
        );
        std::process::exit(1);
    }
}

fn por_check_main(no_por: bool) {
    if no_por {
        // Escape hatch: full exploration only, no reduction in play.
        use hb_verify::requirements::{verify_with_n, Requirement};
        let variants = hb_core::Variant::TABLE1
            .into_iter()
            .chain(hb_core::Variant::TABLE2);
        for variant in variants {
            for params in hb_verify::tables::paper_params() {
                for req in Requirement::ALL {
                    let n = por_check::cell_n(variant, req);
                    let v = verify_with_n(variant, params, hb_core::FixLevel::Original, req, n);
                    println!(
                        "{}/{}-{}/{:?}: {} ({} states, full exploration)",
                        variant.name(),
                        params.tmin(),
                        params.tmax(),
                        req,
                        v.symbol(),
                        v.stats.states
                    );
                }
            }
        }
        return;
    }
    let cells = por_check::por_cross_check();
    print!("{}", por_check::render_state_table(&cells));
    let frac = por_check::fraction_reduced(&cells, 30.0);
    println!("fraction of cells at >=30% reduction: {:.2}", frac);
}
