//! The future-work extension analysed: rejoinable dynamic membership.
//!
//! Both papers leave "processes that can rejoin after leaving" as future
//! work. This example model-checks the two obvious designs:
//!
//! * naive rejoin (just start another join phase) — broken: stale beats
//!   from dead incarnations race with the new one;
//! * epoch-tagged rejoin (incarnation numbers on every beat) — safe.
//!
//! ```text
//! cargo run --release --example rejoin_analysis
//! ```

use accelerated_heartbeat::core::Params;
use accelerated_heartbeat::verify::rejoin_model::{rejoin_results, RejoinModel};
use mck::{Checker, Model};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = Params::new(2, 4)?;
    println!("rejoinable dynamic heartbeat, {params}, up to 2 incarnations\n");

    let grid = rejoin_results(params);
    println!("verdicts (exhaustive, fault-free):");
    println!(
        "  naive rejoin : participants {}, coordinator {}",
        ok(grid.naive_participant_safe),
        ok(grid.naive_coordinator_safe)
    );
    println!(
        "  epoch-tagged : participants {}, coordinator {}",
        ok(grid.epoch_participant_safe),
        ok(grid.epoch_coordinator_safe)
    );

    let model = RejoinModel::new(params, 1, false, 2);
    if let Some(ce) = Checker::new(&model).find_state(RejoinModel::coordinator_nv) {
        println!("\nthe naive race, step by step ({} transitions):", ce.len());
        for a in ce.actions() {
            let label = model.format_action(&a);
            if label != "tick" {
                println!("  {label}");
            }
        }
    }

    println!(
        "\nmoral: the dynamic protocol's 'a process can never rejoin' rule is not\n\
         an arbitrary restriction — it is the latch that keeps stale beats from\n\
         resurrecting dead memberships. To lift it safely, number the\n\
         incarnations and let a leave of epoch e raise the acceptance bar to\n\
         e+1. The epoch-tagged variant passes every check."
    );
    Ok(())
}

fn ok(b: bool) -> &'static str {
    if b {
        "safe"
    } else {
        "VIOLATED"
    }
}
