//! Breadth-first invariant checking with shortest-counterexample
//! reconstruction.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use crate::model::Model;
use crate::trace::Path;

/// Exploration statistics reported by every check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Distinct states visited.
    pub states: usize,
    /// Transitions traversed (including ones leading to known states).
    pub transitions: usize,
    /// Largest BFS depth reached.
    pub depth: usize,
    /// Whether exploration stopped early due to a configured limit.
    pub truncated: bool,
}

/// The result of a check.
#[derive(Clone, Debug)]
pub enum CheckOutcome<M: Model> {
    /// The property holds on every reachable state (exhaustive).
    Holds(Stats),
    /// A reachable state violates the property; a shortest path witnessing
    /// the violation is attached.
    Violated {
        /// Shortest path from an initial state to the violating state.
        path: Path<M>,
        /// Exploration statistics at the time of the violation.
        stats: Stats,
    },
    /// Exploration hit a limit (state or depth bound) before completing.
    Incomplete(Stats),
}

impl<M: Model> CheckOutcome<M> {
    /// Whether the property was proven to hold exhaustively.
    pub fn holds(&self) -> bool {
        matches!(self, CheckOutcome::Holds(_))
    }

    /// The counterexample path, if the property was violated.
    pub fn counterexample(&self) -> Option<&Path<M>> {
        match self {
            CheckOutcome::Violated { path, .. } => Some(path),
            _ => None,
        }
    }

    /// Exploration statistics.
    pub fn stats(&self) -> Stats {
        match self {
            CheckOutcome::Holds(s) | CheckOutcome::Incomplete(s) => *s,
            CheckOutcome::Violated { stats, .. } => *stats,
        }
    }
}

/// A sequential breadth-first checker over a [`Model`].
///
/// BFS guarantees that the first violation found is at minimal depth, i.e.
/// counterexamples are shortest — this matters for regenerating the paper's
/// counter-example figures, which are minimal scenarios.
///
/// # Example
///
/// ```
/// use mck::{Model, bfs::Checker};
/// struct M;
/// impl Model for M {
///     type State = u32; type Action = ();
///     fn initial_states(&self) -> Vec<u32> { vec![0] }
///     fn actions(&self, s: &u32, out: &mut Vec<()>) { if *s < 5 { out.push(()); } }
///     fn next_state(&self, s: &u32, _: &()) -> Option<u32> { Some(s + 1) }
/// }
/// assert!(Checker::new(&M).check_invariant(|s| *s <= 5).holds());
/// assert!(!Checker::new(&M).check_invariant(|s| *s < 5).holds());
/// ```
pub struct Checker<'a, M: Model> {
    model: &'a M,
    max_states: usize,
    max_depth: usize,
    time_budget: Option<Duration>,
}

impl<'a, M: Model> Checker<'a, M> {
    /// Create a checker with no practical limits (usize::MAX states/depth).
    pub fn new(model: &'a M) -> Self {
        Self {
            model,
            max_states: usize::MAX,
            max_depth: usize::MAX,
            time_budget: None,
        }
    }

    /// Stop exploring (returning [`CheckOutcome::Incomplete`]) after this
    /// many distinct states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Stop exploring beyond this BFS depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Stop exploring after roughly this wall-clock budget.
    pub fn time_budget(mut self, d: Duration) -> Self {
        self.time_budget = Some(d);
        self
    }

    /// Check that `invariant` holds on every reachable state.
    pub fn check_invariant<F>(&self, invariant: F) -> CheckOutcome<M>
    where
        F: Fn(&M::State) -> bool,
    {
        self.check_reachability(|s| !invariant(s))
            .map_reachability_to_invariant()
    }

    /// Search for a reachable state satisfying `goal`.
    ///
    /// Returns [`CheckOutcome::Violated`] (with a shortest witness path) if a
    /// goal state is reachable, [`CheckOutcome::Holds`] if exhaustively not.
    /// The "violated"/"holds" naming is from the invariant point of view
    /// (`goal` = bad state); use
    /// [`find_state`](Checker::find_state) for goal-oriented naming.
    pub fn check_reachability<F>(&self, goal: F) -> Reachability<M>
    where
        F: Fn(&M::State) -> bool,
    {
        let start = Instant::now();
        let mut stats = Stats::default();

        // Interned states: id -> state, plus parent links for trace rebuild.
        let mut states: Vec<M::State> = Vec::new();
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut parent: Vec<Option<(usize, M::Action)>> = Vec::new();
        let mut depth_of: Vec<usize> = Vec::new();
        let mut queue: VecDeque<usize> = VecDeque::new();

        let intern = |s: M::State,
                      par: Option<(usize, M::Action)>,
                      d: usize,
                      states: &mut Vec<M::State>,
                      index: &mut HashMap<M::State, usize>,
                      parent: &mut Vec<Option<(usize, M::Action)>>,
                      depth_of: &mut Vec<usize>| {
            if let Some(&id) = index.get(&s) {
                return (id, false);
            }
            let id = states.len();
            index.insert(s.clone(), id);
            states.push(s);
            parent.push(par);
            depth_of.push(d);
            (id, true)
        };

        for init in self.model.initial_states() {
            let (id, fresh) = intern(
                init,
                None,
                0,
                &mut states,
                &mut index,
                &mut parent,
                &mut depth_of,
            );
            if fresh {
                stats.states += 1;
                if goal(&states[id]) {
                    let path = rebuild_path::<M>(&states, &parent, id);
                    return Reachability::Found { path, stats };
                }
                queue.push_back(id);
            }
        }

        let mut actions = Vec::new();
        while let Some(id) = queue.pop_front() {
            let d = depth_of[id];
            if d >= self.max_depth {
                stats.truncated = true;
                continue;
            }
            if stats.states >= self.max_states {
                stats.truncated = true;
                break;
            }
            if let Some(budget) = self.time_budget {
                if start.elapsed() > budget {
                    stats.truncated = true;
                    break;
                }
            }
            actions.clear();
            let cur = states[id].clone();
            self.model.actions(&cur, &mut actions);
            let acts = std::mem::take(&mut actions);
            for a in &acts {
                let Some(next) = self.model.next_state(&cur, a) else {
                    continue;
                };
                stats.transitions += 1;
                let (nid, fresh) = intern(
                    next,
                    Some((id, a.clone())),
                    d + 1,
                    &mut states,
                    &mut index,
                    &mut parent,
                    &mut depth_of,
                );
                if fresh {
                    stats.states += 1;
                    stats.depth = stats.depth.max(d + 1);
                    if goal(&states[nid]) {
                        let path = rebuild_path::<M>(&states, &parent, nid);
                        return Reachability::Found { path, stats };
                    }
                    queue.push_back(nid);
                }
            }
            actions = acts;
        }

        if stats.truncated {
            Reachability::Unknown(stats)
        } else {
            Reachability::Unreachable(stats)
        }
    }

    /// Goal-oriented alias for [`check_reachability`](Self::check_reachability):
    /// returns a shortest path to a state satisfying `goal`, if one is
    /// reachable within the configured limits.
    pub fn find_state<F>(&self, goal: F) -> Option<Path<M>>
    where
        F: Fn(&M::State) -> bool,
    {
        match self.check_reachability(goal) {
            Reachability::Found { path, .. } => Some(path),
            _ => None,
        }
    }
}

/// Result of a reachability query.
#[derive(Clone, Debug)]
pub enum Reachability<M: Model> {
    /// A goal state is reachable; shortest witness attached.
    Found {
        /// Shortest path from an initial state to the goal state.
        path: Path<M>,
        /// Exploration statistics at the time the goal was found.
        stats: Stats,
    },
    /// No goal state is reachable (exhaustive).
    Unreachable(Stats),
    /// Exploration was truncated by a limit before an answer was known.
    Unknown(Stats),
}

impl<M: Model> Reachability<M> {
    /// Exploration statistics.
    pub fn stats(&self) -> Stats {
        match self {
            Reachability::Found { stats, .. } => *stats,
            Reachability::Unreachable(s) | Reachability::Unknown(s) => *s,
        }
    }

    /// The witness path, if a goal state was found.
    pub fn path(&self) -> Option<&Path<M>> {
        match self {
            Reachability::Found { path, .. } => Some(path),
            _ => None,
        }
    }

    /// Whether the goal was proven unreachable.
    pub fn unreachable(&self) -> bool {
        matches!(self, Reachability::Unreachable(_))
    }

    fn map_reachability_to_invariant(self) -> CheckOutcome<M> {
        match self {
            Reachability::Found { path, stats } => CheckOutcome::Violated { path, stats },
            Reachability::Unreachable(stats) => CheckOutcome::Holds(stats),
            Reachability::Unknown(stats) => CheckOutcome::Incomplete(stats),
        }
    }
}

fn rebuild_path<M: Model>(
    states: &[M::State],
    parent: &[Option<(usize, M::Action)>],
    mut id: usize,
) -> Path<M> {
    let mut rev: Vec<(M::Action, M::State)> = Vec::new();
    while let Some((pid, a)) = &parent[id] {
        rev.push((a.clone(), states[id].clone()));
        id = *pid;
    }
    rev.reverse();
    Path::from_steps(states[id].clone(), rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two counters that can each step to 3; goal = both equal 3.
    struct Grid;
    impl Model for Grid {
        type State = (u8, u8);
        type Action = u8; // 0 = step x, 1 = step y
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<u8>) {
            if s.0 < 3 {
                out.push(0);
            }
            if s.1 < 3 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &u8) -> Option<(u8, u8)> {
            Some(match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            })
        }
    }

    #[test]
    fn exhaustive_state_count() {
        let out = Checker::new(&Grid).check_invariant(|_| true);
        assert!(out.holds());
        assert_eq!(out.stats().states, 16);
        // 2 actions from interior states; total transitions = 24.
        assert_eq!(out.stats().transitions, 24);
    }

    #[test]
    fn shortest_counterexample() {
        let out = Checker::new(&Grid).check_invariant(|s| *s != (2, 1));
        let path = out.counterexample().expect("reachable");
        assert_eq!(path.len(), 3);
        assert_eq!(path.last_state(), &(2, 1));
    }

    #[test]
    fn find_state_returns_witness() {
        let p = Checker::new(&Grid).find_state(|s| *s == (3, 3)).unwrap();
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn state_limit_reports_incomplete() {
        let out = Checker::new(&Grid)
            .max_states(3)
            .check_invariant(|s| *s != (3, 3));
        assert!(matches!(out, CheckOutcome::Incomplete(_)));
        assert!(out.stats().truncated);
    }

    #[test]
    fn depth_limit_cuts_search() {
        let out = Checker::new(&Grid)
            .max_depth(2)
            .check_invariant(|s| *s != (3, 3));
        assert!(matches!(out, CheckOutcome::Incomplete(_)));
    }

    #[test]
    fn depth_limit_still_finds_shallow_violations() {
        let out = Checker::new(&Grid)
            .max_depth(2)
            .check_invariant(|s| *s != (1, 0));
        assert_eq!(out.counterexample().unwrap().len(), 1);
    }

    #[test]
    fn violation_in_initial_state_gives_empty_path() {
        let out = Checker::new(&Grid).check_invariant(|s| *s != (0, 0));
        let path = out.counterexample().unwrap();
        assert!(path.is_empty());
        assert_eq!(path.last_state(), &(0, 0));
    }

    #[test]
    fn unreachable_goal_is_exhaustive() {
        let r = Checker::new(&Grid).check_reachability(|s| s.0 > 3);
        assert!(r.unreachable());
        assert_eq!(r.stats().states, 16);
    }
}
