//! Counterexample / witness paths through a model.

use crate::model::Model;

/// A finite path through a model: an initial state followed by
/// `(action, state)` steps.
pub struct Path<M: Model> {
    initial: M::State,
    steps: Vec<(M::Action, M::State)>,
}

// Manual impls: deriving would wrongly bound `M` itself instead of its
// associated state/action types (C-STRUCT-BOUNDS).
impl<M: Model> Clone for Path<M> {
    fn clone(&self) -> Self {
        Path {
            initial: self.initial.clone(),
            steps: self.steps.clone(),
        }
    }
}

impl<M: Model> std::fmt::Debug for Path<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Path")
            .field("initial", &self.initial)
            .field("steps", &self.steps.len())
            .finish()
    }
}

impl<M: Model> PartialEq for Path<M>
where
    M::Action: PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.initial == other.initial && self.steps == other.steps
    }
}

impl<M: Model> Eq for Path<M> where M::Action: Eq {}

impl<M: Model> Path<M> {
    /// A path consisting of just an initial state.
    pub fn new(initial: M::State) -> Self {
        Self {
            initial,
            steps: Vec::new(),
        }
    }

    /// Construct from an initial state and steps.
    pub fn from_steps(initial: M::State, steps: Vec<(M::Action, M::State)>) -> Self {
        Self { initial, steps }
    }

    /// The initial state.
    pub fn initial_state(&self) -> &M::State {
        &self.initial
    }

    /// The final state of the path (the initial state for an empty path).
    pub fn last_state(&self) -> &M::State {
        self.steps.last().map(|(_, s)| s).unwrap_or(&self.initial)
    }

    /// The `(action, state)` steps after the initial state.
    pub fn steps(&self) -> &[(M::Action, M::State)] {
        &self.steps
    }

    /// The sequence of actions along the path.
    pub fn actions(&self) -> Vec<M::Action> {
        self.steps.iter().map(|(a, _)| a.clone()).collect()
    }

    /// All states along the path, starting with the initial state.
    pub fn states(&self) -> Vec<M::State> {
        let mut v = Vec::with_capacity(self.steps.len() + 1);
        v.push(self.initial.clone());
        v.extend(self.steps.iter().map(|(_, s)| s.clone()));
        v
    }

    /// Number of transitions in the path.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no transitions.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Extend the path by one step.
    pub fn push(&mut self, action: M::Action, state: M::State) {
        self.steps.push((action, state));
    }

    /// Render the path with one action per line, using the model's
    /// formatting hooks. States are shown for the first and last step only;
    /// pass `verbose = true` to show every intermediate state.
    pub fn render(&self, model: &M, verbose: bool) -> String {
        let mut out = String::new();
        out.push_str(&format!("  state: {}\n", model.format_state(&self.initial)));
        for (i, (a, s)) in self.steps.iter().enumerate() {
            out.push_str(&format!("  --{}-->\n", model.format_action(a)));
            if verbose || i + 1 == self.steps.len() {
                out.push_str(&format!("  state: {}\n", model.format_state(s)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Inc;
    impl Model for Inc {
        type State = u32;
        type Action = u32;
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn actions(&self, _: &u32, out: &mut Vec<u32>) {
            out.push(1);
        }
        fn next_state(&self, s: &u32, a: &u32) -> Option<u32> {
            Some(s + a)
        }
    }

    #[test]
    fn path_accessors() {
        let mut p: Path<Inc> = Path::new(0);
        assert!(p.is_empty());
        assert_eq!(p.last_state(), &0);
        p.push(1, 1);
        p.push(2, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p.last_state(), &3);
        assert_eq!(p.actions(), vec![1, 2]);
        assert_eq!(p.states(), vec![0, 1, 3]);
        assert_eq!(p.initial_state(), &0);
    }

    #[test]
    fn render_contains_actions_and_final_state() {
        let mut p: Path<Inc> = Path::new(0);
        p.push(1, 1);
        p.push(1, 2);
        let text = p.render(&Inc, false);
        assert!(text.contains("--1-->"));
        assert!(text.contains("state: 2"));
        // non-verbose: intermediate state 1 not printed as a state line
        assert!(!text.contains("state: 1\n  --1-->\n  state: 2") || text.contains("state: 0"));
        let verbose = p.render(&Inc, true);
        assert!(verbose.contains("state: 1"));
    }
}
