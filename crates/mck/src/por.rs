//! Ample-set partial-order reduction as a model wrapper.
//!
//! Explicit-state exploration of asynchronous systems pays for every
//! interleaving of independent actions. Ample-set reduction (Peled)
//! explores, from each state, only a subset of the enabled actions — an
//! *ample set* — chosen so that every deferred interleaving is still
//! represented by some explored path. The checker itself is unchanged:
//! [`Reduced`] wraps any [`Model`] and filters its `actions()` through an
//! [`AmpleOracle`], exactly like [`crate::model::Restricted`] but with
//! the whole enabled set in view.
//!
//! The oracle owns the soundness argument. For invariant checking it
//! must guarantee the classic conditions:
//!
//! * **C0 (emptiness)** — return `None` (full expansion) rather than an
//!   empty set at non-deadlock states;
//! * **C1 (dependence)** — on no path of the *full* model from the
//!   state can an action dependent on the ample set fire before some
//!   member of the ample set does;
//! * **C2 (invisibility)** — if the ample set is a proper subset, its
//!   members must not change the truth of the checked predicate;
//! * **C3 (cycle proviso)** — every cycle of the reduced graph must
//!   contain at least one fully-expanded state.
//!
//! The generic wrapper enforces none of this — it cannot — but makes
//! the contract explicit, and `hb-analyze` backs the heartbeat oracle
//! with an exhaustive POR-vs-full agreement check over the paper's
//! table cells.

use crate::model::Model;

/// Chooses ample sets for a concrete model.
///
/// `enabled` is the full enabled-action list in the order the model
/// produced it. Return `Some(indices)` (non-empty, strictly fewer than
/// `enabled.len()`, indices into `enabled`) to reduce, or `None` to
/// expand the state fully. Implementations carry the C0–C3 soundness
/// burden described at the module level.
pub trait AmpleOracle<M: Model> {
    /// The ample subset of `enabled` at `state`, or `None` for full
    /// expansion.
    fn ample(&self, state: &M::State, enabled: &[M::Action]) -> Option<Vec<usize>>;
}

/// A model explored through an [`AmpleOracle`].
///
/// States, actions and successors are the inner model's; only the
/// enabled-action lists shrink. Wrap it in the usual
/// [`Checker`](crate::bfs::Checker) to explore the reduced graph.
pub struct Reduced<'a, M: Model, O> {
    inner: &'a M,
    oracle: O,
}

impl<'a, M: Model, O: AmpleOracle<M>> Reduced<'a, M, O> {
    /// Wrap `inner`, exploring only oracle-chosen ample sets.
    pub fn new(inner: &'a M, oracle: O) -> Self {
        Self { inner, oracle }
    }
}

impl<M: Model, O: AmpleOracle<M>> Model for Reduced<'_, M, O> {
    type State = M::State;
    type Action = M::Action;

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>) {
        let mut raw = Vec::new();
        self.inner.actions(state, &mut raw);
        match self.oracle.ample(state, &raw) {
            Some(idx) => {
                debug_assert!(!idx.is_empty(), "ample set must not be empty (C0)");
                debug_assert!(idx.len() < raw.len(), "ample set must be a proper subset");
                let mut keep = vec![false; raw.len()];
                for i in idx {
                    keep[i] = true;
                }
                out.extend(
                    raw.into_iter()
                        .zip(keep)
                        .filter_map(|(a, k)| k.then_some(a)),
                );
            }
            None => out.extend(raw),
        }
    }

    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        self.inner.next_state(state, action)
    }

    fn format_action(&self, action: &Self::Action) -> String {
        self.inner.format_action(action)
    }

    fn format_state(&self, state: &Self::State) -> String {
        self.inner.format_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Checker;

    /// Two independent counters, each stepping 0..=3; actions commute.
    struct TwoCounters;
    impl Model for TwoCounters {
        type State = (u8, u8);
        type Action = u8; // which counter to step
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<u8>) {
            if s.0 < 3 {
                out.push(0);
            }
            if s.1 < 3 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &u8) -> Option<(u8, u8)> {
            Some(match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            })
        }
    }

    /// Always pick the first enabled action when more than one is
    /// enabled. Sound here: the actions are globally independent and
    /// invisible to the predicates below, and the graph is acyclic.
    struct First;
    impl AmpleOracle<TwoCounters> for First {
        fn ample(&self, _s: &(u8, u8), enabled: &[u8]) -> Option<Vec<usize>> {
            (enabled.len() > 1).then(|| vec![0])
        }
    }

    #[test]
    fn reduction_preserves_the_reachable_corner() {
        let full = Checker::new(&TwoCounters).check_invariant(|s| *s != (3, 3));
        let m = TwoCounters;
        let red = Checker::new(&Reduced::new(&m, First)).check_invariant(|s| *s != (3, 3));
        assert_eq!(full.holds(), red.holds());
        assert!(!red.holds(), "corner still reached");
        // The diamond collapses to a line: 16 states down to 7.
        assert!(red.stats().states < full.stats().states);
        assert_eq!(red.stats().states, 7);
        assert_eq!(full.stats().states, 16);
    }

    #[test]
    fn none_means_full_expansion() {
        struct Never;
        impl AmpleOracle<TwoCounters> for Never {
            fn ample(&self, _s: &(u8, u8), _e: &[u8]) -> Option<Vec<usize>> {
                None
            }
        }
        let m = TwoCounters;
        let red = Checker::new(&Reduced::new(&m, Never)).check_invariant(|_| true);
        assert_eq!(red.stats().states, 16);
    }
}
