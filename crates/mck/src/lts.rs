//! Labelled transition systems: hiding, weak-trace determinization, and
//! strong-bisimulation minimization.
//!
//! The Atif & Mousavi report presents "reduced transition systems" of the
//! heartbeat processes (their Figures 1 and 2), obtained by hiding internal
//! actions and reducing modulo weak-trace equivalence. This module provides
//! exactly those operations so the figures can be regenerated from our
//! models.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

use crate::graph::StateGraph;
use crate::model::Model;

/// A labelled transition system over string labels.
///
/// The special label [`Lts::TAU`] denotes an internal (hidden) action.
#[derive(Clone, Debug, Default)]
pub struct Lts {
    /// Number of states; states are `0..num_states`.
    pub num_states: usize,
    /// The initial state.
    pub initial: usize,
    /// Edges `(source, label, target)`.
    pub transitions: Vec<(usize, String, usize)>,
}

impl Lts {
    /// The internal-action label.
    pub const TAU: &'static str = "tau";

    /// Build an LTS from an explored [`StateGraph`], labelling each edge via
    /// `label`. Multiple initial states are joined under a fresh root with
    /// tau edges (rare; models here have a single initial state).
    pub fn from_graph<M: Model>(
        graph: &StateGraph<M>,
        label: impl Fn(&M::Action) -> String,
    ) -> Self {
        let mut lts = Lts {
            num_states: graph.states.len(),
            initial: *graph.initial.first().expect("graph has an initial state"),
            transitions: graph
                .transitions
                .iter()
                .map(|(s, a, t)| (*s, label(a), *t))
                .collect(),
        };
        if graph.initial.len() > 1 {
            let root = lts.num_states;
            lts.num_states += 1;
            for &i in &graph.initial {
                lts.transitions.push((root, Self::TAU.to_string(), i));
            }
            lts.initial = root;
        }
        lts
    }

    /// Replace every label in `hidden` with tau.
    pub fn hide(&self, hidden: &[&str]) -> Lts {
        let set: HashSet<&str> = hidden.iter().copied().collect();
        Lts {
            num_states: self.num_states,
            initial: self.initial,
            transitions: self
                .transitions
                .iter()
                .map(|(s, l, t)| {
                    let l = if set.contains(l.as_str()) {
                        Self::TAU.to_string()
                    } else {
                        l.clone()
                    };
                    (*s, l, *t)
                })
                .collect(),
        }
    }

    /// The set of visible (non-tau) labels.
    pub fn alphabet(&self) -> BTreeSet<String> {
        self.transitions
            .iter()
            .filter(|(_, l, _)| l != Self::TAU)
            .map(|(_, l, _)| l.clone())
            .collect()
    }

    fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        // per-state list of (label-id, target); labels interned separately
        let mut adj = vec![Vec::new(); self.num_states];
        let mut labels: HashMap<&str, usize> = HashMap::new();
        for (s, l, t) in &self.transitions {
            let next_id = labels.len();
            let id = *labels.entry(l.as_str()).or_insert(next_id);
            adj[*s].push((id, *t));
        }
        adj
    }

    fn tau_closure(&self, seed: &BTreeSet<usize>) -> BTreeSet<usize> {
        let mut closure = seed.clone();
        let mut queue: VecDeque<usize> = seed.iter().copied().collect();
        let mut tau_adj: Vec<Vec<usize>> = vec![Vec::new(); self.num_states];
        for (s, l, t) in &self.transitions {
            if l == Self::TAU {
                tau_adj[*s].push(*t);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &tau_adj[u] {
                if closure.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        closure
    }

    /// Determinize modulo weak-trace equivalence: subset construction over
    /// tau-closures. The result is the minimal-by-construction DFA of the
    /// weak-trace language when followed by [`Lts::minimize_traces`]
    /// (Hopcroft-style refinement on the deterministic system).
    pub fn determinize_weak(&self) -> Lts {
        let init = self.tau_closure(&BTreeSet::from([self.initial]));
        let mut index: HashMap<BTreeSet<usize>, usize> = HashMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut out = Vec::new();
        index.insert(init.clone(), 0);
        subsets.push(init);
        let mut cursor = 0;
        while cursor < subsets.len() {
            let cur = subsets[cursor].clone();
            // group successors by visible label
            let mut by_label: HashMap<String, BTreeSet<usize>> = HashMap::new();
            for (s, l, t) in &self.transitions {
                if l != Self::TAU && cur.contains(s) {
                    by_label.entry(l.clone()).or_default().insert(*t);
                }
            }
            let mut labels: Vec<_> = by_label.into_iter().collect();
            labels.sort_by(|a, b| a.0.cmp(&b.0));
            for (l, targets) in labels {
                let closed = self.tau_closure(&targets);
                let next_id = subsets.len();
                let id = *index.entry(closed.clone()).or_insert_with(|| {
                    subsets.push(closed);
                    next_id
                });
                out.push((cursor, l, id));
            }
            cursor += 1;
        }
        Lts {
            num_states: subsets.len(),
            initial: 0,
            transitions: out,
        }
    }

    /// Minimize a *deterministic* LTS modulo trace (language) equivalence
    /// via partition refinement. For the output of
    /// [`determinize_weak`](Lts::determinize_weak) this yields the canonical
    /// minimal weak-trace automaton.
    pub fn minimize_traces(&self) -> Lts {
        self.partition_refine(false)
    }

    /// Minimize modulo strong bisimulation via partition refinement
    /// (works on nondeterministic systems; tau is treated as an ordinary
    /// label).
    pub fn minimize_bisim(&self) -> Lts {
        self.partition_refine(true)
    }

    fn partition_refine(&self, _strong: bool) -> Lts {
        // Classic partition refinement: split blocks by the multiset of
        // (label, target-block) signatures until stable. For deterministic
        // systems this is language minimization; in general it computes
        // strong bisimulation.
        let adj = self.adjacency();
        let mut block: Vec<usize> = vec![0; self.num_states];
        if self.num_states == 0 {
            return self.clone();
        }
        let mut num_blocks = 1usize;
        loop {
            let mut sig_index: HashMap<(usize, Vec<(usize, usize)>), usize> = HashMap::new();
            let mut new_block = vec![0usize; self.num_states];
            for s in 0..self.num_states {
                let mut sig: Vec<(usize, usize)> = adj[s]
                    .iter()
                    .map(|(l, t)| (*l, block[*t]))
                    .collect::<BTreeSet<_>>()
                    .into_iter()
                    .collect();
                sig.sort_unstable();
                let key = (block[s], sig);
                let next_id = sig_index.len();
                let id = *sig_index.entry(key).or_insert(next_id);
                new_block[s] = id;
            }
            let nb = sig_index.len();
            block = new_block;
            if nb == num_blocks {
                break;
            }
            num_blocks = nb;
        }
        // Rebuild quotient.
        let mut transitions: BTreeSet<(usize, String, usize)> = BTreeSet::new();
        for (s, l, t) in &self.transitions {
            transitions.insert((block[*s], l.clone(), block[*t]));
        }
        Lts {
            num_states: num_blocks,
            initial: block[self.initial],
            transitions: transitions.into_iter().collect(),
        }
    }

    /// Render in Graphviz DOT.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph lts {\n  rankdir=LR;\n");
        for i in 0..self.num_states {
            let shape = if i == self.initial {
                "doublecircle"
            } else {
                "circle"
            };
            out.push_str(&format!("  n{i} [shape={shape}, label=\"{i}\"];\n"));
        }
        for (s, l, t) in &self.transitions {
            out.push_str(&format!("  n{s} -> n{t} [label=\"{l}\"];\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Whether a visible trace (sequence of labels) is accepted, i.e. can be
    /// performed from the initial state interleaved with tau steps.
    pub fn accepts_weak_trace(&self, trace: &[&str]) -> bool {
        let mut cur = self.tau_closure(&BTreeSet::from([self.initial]));
        for step in trace {
            let mut next = BTreeSet::new();
            for (s, l, t) in &self.transitions {
                if l == step && cur.contains(s) {
                    next.insert(*t);
                }
            }
            if next.is_empty() {
                return false;
            }
            cur = self.tau_closure(&next);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lts(n: usize, init: usize, edges: &[(usize, &str, usize)]) -> Lts {
        Lts {
            num_states: n,
            initial: init,
            transitions: edges
                .iter()
                .map(|(s, l, t)| (*s, l.to_string(), *t))
                .collect(),
        }
    }

    #[test]
    fn hide_replaces_labels() {
        let l = lts(2, 0, &[(0, "a", 1), (1, "b", 0)]);
        let h = l.hide(&["a"]);
        assert!(h.transitions.iter().any(|(_, l, _)| l == Lts::TAU));
        assert_eq!(h.alphabet().len(), 1);
    }

    #[test]
    fn weak_trace_accepts_through_tau() {
        // 0 -tau-> 1 -a-> 2
        let l = lts(3, 0, &[(0, "tau", 1), (1, "a", 2)]);
        assert!(l.accepts_weak_trace(&["a"]));
        assert!(!l.accepts_weak_trace(&["b"]));
        assert!(l.accepts_weak_trace(&[]));
    }

    #[test]
    fn determinize_collapses_tau() {
        // 0 -tau-> 1, 0 -tau-> 2, 1 -a-> 3, 2 -a-> 3
        let l = lts(
            4,
            0,
            &[(0, "tau", 1), (0, "tau", 2), (1, "a", 3), (2, "a", 3)],
        );
        let d = l.determinize_weak();
        // {0,1,2} -a-> {3}
        assert_eq!(d.num_states, 2);
        assert_eq!(d.transitions.len(), 1);
    }

    #[test]
    fn minimize_traces_merges_equivalent() {
        // Deterministic: two branches with identical continuation languages.
        // 0 -a-> 1 -c-> 3 ; 0 -b-> 2 -c-> 4
        let l = lts(5, 0, &[(0, "a", 1), (0, "b", 2), (1, "c", 3), (2, "c", 4)]);
        let m = l.minimize_traces();
        // 1 and 2 merge, 3 and 4 merge: 3 states.
        assert_eq!(m.num_states, 3);
    }

    #[test]
    fn bisim_distinguishes_branching() {
        // classic: a.(b+c) vs a.b + a.c are trace equivalent but not bisimilar
        let spec = lts(4, 0, &[(0, "a", 1), (1, "b", 2), (1, "c", 3)]);
        let impl_ = lts(6, 0, &[(0, "a", 1), (0, "a", 2), (1, "b", 3), (2, "c", 4)]);
        let ms = spec.minimize_bisim();
        let mi = impl_.minimize_bisim();
        assert_ne!(ms.num_states, mi.num_states);
        // but weak-trace determinization makes them equal-sized
        let ds = spec.determinize_weak().minimize_traces();
        let di = impl_.determinize_weak().minimize_traces();
        assert_eq!(ds.num_states, di.num_states);
    }

    #[test]
    fn self_loop_ring_minimizes_to_one_state() {
        let l = lts(4, 0, &[(0, "a", 1), (1, "a", 2), (2, "a", 3), (3, "a", 0)]);
        let m = l.minimize_bisim();
        assert_eq!(m.num_states, 1);
        assert_eq!(m.transitions.len(), 1);
    }

    #[test]
    fn dot_output_well_formed() {
        let l = lts(2, 0, &[(0, "a", 1)]);
        let dot = l.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("label=\"a\""));
    }

    #[test]
    fn from_graph_roundtrip() {
        struct Two;
        impl Model for Two {
            type State = bool;
            type Action = &'static str;
            fn initial_states(&self) -> Vec<bool> {
                vec![false]
            }
            fn actions(&self, _: &bool, out: &mut Vec<&'static str>) {
                out.push("flip");
            }
            fn next_state(&self, s: &bool, _: &&'static str) -> Option<bool> {
                Some(!s)
            }
        }
        let g = StateGraph::explore(&Two, usize::MAX);
        let l = Lts::from_graph(&g, |a| a.to_string());
        assert_eq!(l.num_states, 2);
        assert!(l.accepts_weak_trace(&["flip", "flip", "flip"]));
    }
}
