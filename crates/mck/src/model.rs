//! The [`Model`] trait: how a transition system is described to the checker.

use std::fmt::Debug;
use std::hash::Hash;

/// A finite(ly explorable) transition system.
///
/// A model produces one or more initial states, and for every state an
/// enumeration of enabled actions; each enabled action yields at most one
/// successor state (return `None` from [`next_state`](Model::next_state) for
/// an action that turns out to be disabled — this keeps action enumeration
/// allowed to over-approximate).
///
/// States must be cheap to clone and hashable; the checkers deduplicate
/// states by hash+equality.
///
/// # Example
///
/// ```
/// use mck::Model;
///
/// struct Toggle;
/// impl Model for Toggle {
///     type State = bool;
///     type Action = ();
///     fn initial_states(&self) -> Vec<bool> { vec![false] }
///     fn actions(&self, _s: &bool, out: &mut Vec<()>) { out.push(()); }
///     fn next_state(&self, s: &bool, _a: &()) -> Option<bool> { Some(!s) }
/// }
/// ```
pub trait Model {
    /// A global configuration of the system.
    type State: Clone + Eq + Hash + Debug;
    /// A transition label.
    type Action: Clone + Debug;

    /// The initial states of the system (usually exactly one).
    fn initial_states(&self) -> Vec<Self::State>;

    /// Append every action enabled (or possibly enabled) in `state` to `out`.
    ///
    /// `out` is passed in to let callers reuse the allocation across states.
    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>);

    /// The successor of `state` under `action`, or `None` if the action is
    /// in fact disabled in `state`.
    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State>;

    /// A short human-readable rendering of an action for trace printing.
    ///
    /// Defaults to the `Debug` rendering.
    fn format_action(&self, action: &Self::Action) -> String {
        format!("{action:?}")
    }

    /// A short human-readable rendering of a state for trace printing.
    ///
    /// Defaults to the `Debug` rendering.
    fn format_state(&self, state: &Self::State) -> String {
        format!("{state:?}")
    }
}

/// Convenience extensions implemented for every [`Model`].
pub trait ModelExt: Model {
    /// All `(action, successor)` pairs of `state`.
    fn successors(&self, state: &Self::State) -> Vec<(Self::Action, Self::State)> {
        let mut acts = Vec::new();
        self.actions(state, &mut acts);
        acts.into_iter()
            .filter_map(|a| self.next_state(state, &a).map(|s| (a, s)))
            .collect()
    }

    /// Whether `state` has no outgoing transitions.
    fn is_deadlock(&self, state: &Self::State) -> bool {
        self.successors(state).is_empty()
    }
}

impl<M: Model + ?Sized> ModelExt for M {}

/// A model wrapper that prunes actions rejected by a predicate.
///
/// Used by the heartbeat requirement sweeps to exclude fault actions ruled
/// out by a requirement's premise (e.g. "no message is lost") without
/// duplicating the underlying model.
pub struct Restricted<'a, M: Model, F> {
    inner: &'a M,
    allow: F,
}

impl<'a, M: Model, F> Restricted<'a, M, F>
where
    F: Fn(&M::State, &M::Action) -> bool,
{
    /// Wrap `inner`, keeping only actions for which `allow` returns true.
    pub fn new(inner: &'a M, allow: F) -> Self {
        Self { inner, allow }
    }
}

impl<M: Model, F> Model for Restricted<'_, M, F>
where
    F: Fn(&M::State, &M::Action) -> bool,
{
    type State = M::State;
    type Action = M::Action;

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>) {
        let mut raw = Vec::new();
        self.inner.actions(state, &mut raw);
        out.extend(raw.into_iter().filter(|a| (self.allow)(state, a)));
    }

    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        self.inner.next_state(state, action)
    }

    fn format_action(&self, action: &Self::Action) -> String {
        self.inner.format_action(action)
    }

    fn format_state(&self, state: &Self::State) -> String {
        self.inner.format_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct UpTo(u8);
    impl Model for UpTo {
        type State = u8;
        type Action = u8;
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, s: &u8, out: &mut Vec<u8>) {
            if *s < self.0 {
                out.push(1);
                out.push(3);
            }
        }
        fn next_state(&self, s: &u8, a: &u8) -> Option<u8> {
            s.checked_add(*a).filter(|n| *n <= self.0)
        }
    }

    #[test]
    fn successors_filters_disabled_actions() {
        let m = UpTo(3);
        // From 2: +1 -> 3 enabled, +3 -> 5 disabled (over the cap).
        let succ = m.successors(&2);
        assert_eq!(succ, vec![(1, 3)]);
    }

    #[test]
    fn deadlock_detection() {
        let m = UpTo(3);
        assert!(!m.is_deadlock(&0));
        assert!(m.is_deadlock(&3));
    }

    #[test]
    fn restricted_prunes_actions() {
        let m = UpTo(10);
        let r = Restricted::new(&m, |_s, a| *a == 1);
        let succ = r.successors(&0);
        assert_eq!(succ, vec![(1, 1)]);
    }

    #[test]
    fn default_formatting_uses_debug() {
        let m = UpTo(3);
        assert_eq!(m.format_state(&2), "2");
        assert_eq!(m.format_action(&1), "1");
    }
}
