//! Checking several named invariants in a single exploration.
//!
//! The table campaigns check three requirements per protocol
//! configuration; exploring the state space once per requirement is
//! wasteful when the requirements share a model. [`check_all`] explores
//! once and reports, per property, whether it held and (if not) a
//! shortest violating path — BFS order guarantees each recorded witness
//! is minimal for its property.
//!
//! # Example
//!
//! ```
//! use mck::{Model, props::{check_all, Property}};
//!
//! struct Count;
//! impl Model for Count {
//!     type State = u8; type Action = ();
//!     fn initial_states(&self) -> Vec<u8> { vec![0] }
//!     fn actions(&self, s: &u8, out: &mut Vec<()>) { if *s < 9 { out.push(()); } }
//!     fn next_state(&self, s: &u8, _: &()) -> Option<u8> { Some(s + 1) }
//! }
//!
//! let report = check_all(
//!     &Count,
//!     vec![
//!         Property::invariant("below-7", |s: &u8| *s < 7),
//!         Property::invariant("below-100", |s: &u8| *s < 100),
//!     ],
//!     usize::MAX,
//! );
//! assert!(!report.holds("below-7").unwrap());
//! assert!(report.holds("below-100").unwrap());
//! assert_eq!(report.violation("below-7").unwrap().len(), 7);
//! ```

use std::collections::{HashMap, VecDeque};

use crate::bfs::Stats;
use crate::model::Model;
use crate::trace::Path;

/// A named invariant.
pub struct Property<S> {
    name: String,
    invariant: Box<dyn Fn(&S) -> bool>,
}

impl<S> Property<S> {
    /// An invariant property: `predicate` must hold on every reachable
    /// state.
    pub fn invariant(name: impl Into<String>, predicate: impl Fn(&S) -> bool + 'static) -> Self {
        Property {
            name: name.into(),
            invariant: Box::new(predicate),
        }
    }

    /// The property's name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Outcome of a multi-property check.
pub struct PropsReport<M: Model> {
    results: Vec<(String, Option<Path<M>>)>,
    /// Exploration statistics (one exploration for all properties).
    pub stats: Stats,
}

impl<M: Model> PropsReport<M> {
    /// Whether the named property held (`None` for an unknown name).
    pub fn holds(&self, name: &str) -> Option<bool> {
        self.results
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.is_none())
    }

    /// The shortest violation of the named property, if it was violated.
    pub fn violation(&self, name: &str) -> Option<&Path<M>> {
        self.results
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_ref())
    }

    /// Whether every property held.
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|(_, v)| v.is_none())
    }

    /// Iterate `(name, holds)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, bool)> {
        self.results.iter().map(|(n, v)| (n.as_str(), v.is_none()))
    }
}

/// Explore `model` once (BFS, up to `max_states` states) and check every
/// property. Witnesses are recorded the first time each property is
/// violated, so each is a shortest counterexample for its property.
///
/// The exploration is exhaustive unless the state cap is hit, in which
/// case properties with no recorded violation are reported as holding
/// *of the explored prefix* (check `stats.truncated`).
pub fn check_all<M: Model>(
    model: &M,
    properties: Vec<Property<M::State>>,
    max_states: usize,
) -> PropsReport<M> {
    let mut stats = Stats::default();
    let mut states: Vec<M::State> = Vec::new();
    let mut index: HashMap<M::State, usize> = HashMap::new();
    let mut parent: Vec<Option<(usize, M::Action)>> = Vec::new();
    let mut depth_of: Vec<usize> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut violations: Vec<Option<Path<M>>> = properties.iter().map(|_| None).collect();
    let mut open = properties.len();

    let rebuild =
        |states: &Vec<M::State>, parent: &Vec<Option<(usize, M::Action)>>, mut id: usize| {
            let mut rev = Vec::new();
            while let Some((pid, a)) = &parent[id] {
                rev.push((a.clone(), states[id].clone()));
                id = *pid;
            }
            rev.reverse();
            Path::from_steps(states[id].clone(), rev)
        };

    let visit = |id: usize,
                 states: &Vec<M::State>,
                 parent: &Vec<Option<(usize, M::Action)>>,
                 violations: &mut Vec<Option<Path<M>>>,
                 open: &mut usize| {
        for (pi, prop) in properties.iter().enumerate() {
            if violations[pi].is_none() && !(prop.invariant)(&states[id]) {
                violations[pi] = Some(rebuild(states, parent, id));
                *open -= 1;
            }
        }
    };

    for init in model.initial_states() {
        if index.contains_key(&init) {
            continue;
        }
        let id = states.len();
        index.insert(init.clone(), id);
        states.push(init);
        parent.push(None);
        depth_of.push(0);
        stats.states += 1;
        visit(id, &states, &parent, &mut violations, &mut open);
        queue.push_back(id);
    }

    let mut actions = Vec::new();
    'outer: while let Some(id) = queue.pop_front() {
        if open == 0 {
            break; // every property already violated: nothing left to learn
        }
        if stats.states >= max_states {
            stats.truncated = true;
            break 'outer;
        }
        let cur = states[id].clone();
        let d = depth_of[id];
        actions.clear();
        model.actions(&cur, &mut actions);
        let acts = std::mem::take(&mut actions);
        for a in &acts {
            let Some(next) = model.next_state(&cur, a) else {
                continue;
            };
            stats.transitions += 1;
            if index.contains_key(&next) {
                continue;
            }
            let nid = states.len();
            index.insert(next.clone(), nid);
            states.push(next);
            parent.push(Some((id, a.clone())));
            depth_of.push(d + 1);
            stats.states += 1;
            stats.depth = stats.depth.max(d + 1);
            visit(nid, &states, &parent, &mut violations, &mut open);
            queue.push_back(nid);
        }
        actions = acts;
    }

    PropsReport {
        results: properties
            .into_iter()
            .zip(violations)
            .map(|(p, v)| (p.name, v))
            .collect(),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Checker;

    struct Grid;
    impl Model for Grid {
        type State = (u8, u8);
        type Action = u8;
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<u8>) {
            if s.0 < 4 {
                out.push(0);
            }
            if s.1 < 4 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &u8) -> Option<(u8, u8)> {
            Some(if *a == 0 {
                (s.0 + 1, s.1)
            } else {
                (s.0, s.1 + 1)
            })
        }
    }

    #[test]
    fn mixed_verdicts_single_pass() {
        let report = check_all(
            &Grid,
            vec![
                Property::invariant("sum-small", |s: &(u8, u8)| s.0 + s.1 < 6),
                Property::invariant("never-33", |s: &(u8, u8)| *s != (3, 3)),
                Property::invariant("in-bounds", |s: &(u8, u8)| s.0 <= 4 && s.1 <= 4),
            ],
            usize::MAX,
        );
        assert_eq!(report.holds("sum-small"), Some(false));
        assert_eq!(report.holds("never-33"), Some(false));
        assert_eq!(report.holds("in-bounds"), Some(true));
        assert!(!report.all_hold());
        assert_eq!(report.holds("no-such"), None);
    }

    #[test]
    fn witnesses_match_dedicated_bfs() {
        let report = check_all(
            &Grid,
            vec![Property::invariant("never-21", |s: &(u8, u8)| *s != (2, 1))],
            usize::MAX,
        );
        let multi = report.violation("never-21").unwrap();
        let single = Checker::new(&Grid)
            .check_invariant(|s| *s != (2, 1))
            .counterexample()
            .cloned()
            .unwrap();
        assert_eq!(multi.len(), single.len(), "both must be shortest");
        assert_eq!(multi.last_state(), single.last_state());
    }

    #[test]
    fn early_exit_when_everything_violated() {
        // Both properties fail at the initial state: exploration should
        // stop immediately.
        let report = check_all(
            &Grid,
            vec![
                Property::invariant("not-origin", |s: &(u8, u8)| *s != (0, 0)),
                Property::invariant("x-positive", |s: &(u8, u8)| s.0 > 0),
            ],
            usize::MAX,
        );
        assert!(!report.all_hold());
        assert_eq!(report.stats.states, 1);
    }

    #[test]
    fn truncation_is_flagged() {
        let report = check_all(
            &Grid,
            vec![Property::invariant("true", |_: &(u8, u8)| true)],
            3,
        );
        assert!(report.stats.truncated);
    }

    #[test]
    fn iter_lists_all_properties() {
        let report = check_all(
            &Grid,
            vec![
                Property::invariant("a", |_: &(u8, u8)| true),
                Property::invariant("b", |s: &(u8, u8)| s.0 < 9),
            ],
            usize::MAX,
        );
        let names: Vec<_> = report.iter().map(|(n, _)| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(report.all_hold());
        assert_eq!(report.stats.states, 25);
    }
}
