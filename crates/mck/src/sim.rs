//! Random-walk exploration.
//!
//! Random walks do not prove anything, but they are a fast smoke test for
//! invariants on state spaces too large to exhaust, and they drive the
//! property-based cross-validation between the verification models and the
//! discrete-event simulator.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::model::Model;
use crate::trace::Path;

/// Outcome of a batch of random walks.
#[derive(Clone, Debug)]
pub enum WalkOutcome<M: Model> {
    /// No walk hit a violating state.
    NoViolationFound {
        /// Number of walks performed.
        walks: usize,
        /// Total transitions taken across all walks.
        steps: usize,
    },
    /// Some walk reached a violating state.
    Violated {
        /// The violating walk (up to and including the bad state).
        path: Path<M>,
    },
}

impl<M: Model> WalkOutcome<M> {
    /// The violating path, if any.
    pub fn path(&self) -> Option<&Path<M>> {
        match self {
            WalkOutcome::Violated { path } => Some(path),
            _ => None,
        }
    }
}

/// Perform a single random walk of at most `max_steps` transitions,
/// starting from a uniformly chosen initial state.
///
/// The walk stops early at deadlock states.
pub fn random_walk<M: Model, R: Rng>(model: &M, rng: &mut R, max_steps: usize) -> Path<M> {
    let inits = model.initial_states();
    let init = inits
        .choose(rng)
        .cloned()
        .expect("model must have at least one initial state");
    let mut path = Path::new(init.clone());
    let mut cur = init;
    let mut acts = Vec::new();
    for _ in 0..max_steps {
        acts.clear();
        model.actions(&cur, &mut acts);
        // Retry over enabled actions (actions() may over-approximate).
        acts.shuffle(rng);
        let mut advanced = false;
        for a in &acts {
            if let Some(next) = model.next_state(&cur, a) {
                path.push(a.clone(), next.clone());
                cur = next;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break; // deadlock
        }
    }
    path
}

/// Run `walks` random walks of up to `max_steps` each, checking `invariant`
/// on every visited state.
pub fn check_invariant_by_walks<M: Model, R: Rng, F>(
    model: &M,
    rng: &mut R,
    walks: usize,
    max_steps: usize,
    invariant: F,
) -> WalkOutcome<M>
where
    F: Fn(&M::State) -> bool,
{
    let mut steps = 0;
    for _ in 0..walks {
        let inits = model.initial_states();
        let init = inits
            .choose(rng)
            .cloned()
            .expect("model must have at least one initial state");
        if !invariant(&init) {
            return WalkOutcome::Violated {
                path: Path::new(init),
            };
        }
        let mut path = Path::new(init.clone());
        let mut cur = init;
        let mut acts = Vec::new();
        for _ in 0..max_steps {
            acts.clear();
            model.actions(&cur, &mut acts);
            acts.shuffle(rng);
            let mut advanced = false;
            for a in &acts {
                if let Some(next) = model.next_state(&cur, a) {
                    steps += 1;
                    path.push(a.clone(), next.clone());
                    cur = next;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break;
            }
            if !invariant(&cur) {
                return WalkOutcome::Violated { path };
            }
        }
    }
    WalkOutcome::NoViolationFound { walks, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Grid;
    impl Model for Grid {
        type State = (u8, u8);
        type Action = u8;
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<u8>) {
            if s.0 < 5 {
                out.push(0);
            }
            if s.1 < 5 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &u8) -> Option<(u8, u8)> {
            Some(if *a == 0 {
                (s.0 + 1, s.1)
            } else {
                (s.0, s.1 + 1)
            })
        }
    }

    #[test]
    fn walk_terminates_at_deadlock() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = random_walk(&Grid, &mut rng, 1000);
        assert_eq!(p.len(), 10); // deadlock at (5,5) after exactly 10 steps
        assert_eq!(p.last_state(), &(5, 5));
    }

    #[test]
    fn walks_find_easy_violation() {
        let mut rng = StdRng::seed_from_u64(42);
        let out = check_invariant_by_walks(&Grid, &mut rng, 100, 20, |s| s.0 + s.1 < 8);
        assert!(out.path().is_some());
    }

    #[test]
    fn walks_pass_true_invariant() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = check_invariant_by_walks(&Grid, &mut rng, 50, 20, |s| s.0 <= 5 && s.1 <= 5);
        assert!(matches!(out, WalkOutcome::NoViolationFound { .. }));
    }

    #[test]
    fn walk_respects_step_cap() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = random_walk(&Grid, &mut rng, 3);
        assert!(p.len() <= 3);
    }

    #[test]
    fn violated_initial_state_detected() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = check_invariant_by_walks(&Grid, &mut rng, 1, 5, |s| *s != (0, 0));
        assert!(out.path().unwrap().is_empty());
    }
}
