//! `mck` — a small, fast explicit-state model checker.
//!
//! This crate is the verification substrate for the accelerated-heartbeat
//! reproduction. The original analysis (Atif & Mousavi, 2009) used mCRL2 +
//! CADP and UPPAAL; neither is available here, and all the properties they
//! check are plain safety/reachability over finite discrete-time transition
//! systems, so an explicit-state checker decides exactly the same questions.
//!
//! # Overview
//!
//! * [`Model`] — describe a transition system: initial states, enabled
//!   actions per state, successor per action.
//! * [`bfs::Checker`] — breadth-first reachability / invariant checking with
//!   shortest counterexample reconstruction.
//! * [`dfs`] — depth-first and iterative-deepening exploration for
//!   memory-constrained runs, plus deadlock detection.
//! * [`parallel`] — frontier-parallel BFS over all cores (scoped threads).
//! * [`sim`] — random-walk exploration (smoke tests, property-based tests).
//! * [`graph`] — exhaustive state-graph construction, statistics and DOT
//!   export.
//! * [`lts`] — labelled transition systems: tau-hiding, weak-trace
//!   determinization and strong-bisimulation minimization (used to
//!   regenerate the reduced LTS figures of the paper).
//! * [`timed`] — digital-clock helpers (saturating clocks, urgency), the
//!   discrete-time encoding used by all heartbeat models.
//!
//! # Example
//!
//! ```
//! use mck::{Model, bfs::Checker};
//!
//! /// A counter that may step +1 or +2 up to 10.
//! struct Count;
//! impl Model for Count {
//!     type State = u8;
//!     type Action = u8; // increment amount
//!     fn initial_states(&self) -> Vec<u8> { vec![0] }
//!     fn actions(&self, s: &u8, out: &mut Vec<u8>) {
//!         if *s < 10 { out.push(1); out.push(2); }
//!     }
//!     fn next_state(&self, s: &u8, a: &u8) -> Option<u8> { Some(s + a) }
//! }
//!
//! let outcome = Checker::new(&Count).check_invariant(|s| *s != 7);
//! let path = outcome.counterexample().expect("7 is reachable");
//! assert_eq!(path.last_state(), &7);
//! assert_eq!(path.actions().len(), 4); // BFS finds a shortest witness: 2+2+2+1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod dfs;
pub mod graph;
pub mod liveness;
pub mod lts;
pub mod model;
pub mod packed;
pub mod parallel;
pub mod por;
pub mod props;
pub mod sim;
pub mod symmetry;
pub mod timed;
pub mod trace;

pub use bfs::{CheckOutcome, Checker};
pub use model::{Model, ModelExt};
pub use por::{AmpleOracle, Reduced};
pub use trace::Path;
