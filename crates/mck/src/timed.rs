//! Digital-clock helpers for discrete-time models.
//!
//! All heartbeat models use the *digital clocks* encoding: integer-valued
//! clocks advanced together by a single `Tick` action. Two ingredients keep
//! this sound and finite:
//!
//! * **Urgency** — `Tick` must be disabled whenever a deadline action is
//!   pending (a timeout whose time has come, a committed location, a message
//!   whose delay budget is exhausted). The model composer is responsible for
//!   this; [`Clock`] exposes the predicates.
//! * **Saturation** — a clock compared only against constants `≤ c` carries
//!   no information beyond `c + 1`, so it saturates there, keeping the state
//!   space finite without changing any guard's truth value.

/// A saturating integer clock.
///
/// The clock counts `0..=cap` and sticks at `cap`. Choose `cap` strictly
/// larger than every constant the clock is compared against; then
/// saturation is invisible to all guards.
///
/// # Example
///
/// ```
/// use mck::timed::Clock;
/// let mut c = Clock::new(5);
/// for _ in 0..10 { c.tick(); }
/// assert_eq!(c.value(), 5);
/// assert!(c.at_least(5));
/// c.reset();
/// assert_eq!(c.value(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Clock {
    value: u16,
    cap: u16,
}

impl Clock {
    /// A clock at zero saturating at `cap`.
    pub fn new(cap: u16) -> Self {
        Self { value: 0, cap }
    }

    /// A clock starting at `value` (clamped to the cap).
    pub fn at(value: u16, cap: u16) -> Self {
        Self {
            value: value.min(cap),
            cap,
        }
    }

    /// Current value (saturated).
    pub fn value(&self) -> u16 {
        self.value
    }

    /// The saturation cap.
    pub fn cap(&self) -> u16 {
        self.cap
    }

    /// Advance one time unit (saturating).
    pub fn tick(&mut self) {
        self.value = (self.value + 1).min(self.cap);
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// `value >= t` (beware: meaningless for `t > cap`; debug-asserted).
    pub fn at_least(&self, t: u16) -> bool {
        debug_assert!(
            t <= self.cap,
            "comparing clock (cap {}) against constant {} beyond cap",
            self.cap,
            t
        );
        self.value >= t
    }

    /// `value == t` exactly (requires `t <= cap` to be meaningful).
    pub fn is(&self, t: u16) -> bool {
        debug_assert!(t <= self.cap);
        self.value == t
    }

    /// Whether the clock has saturated (no longer distinguishes later times).
    pub fn saturated(&self) -> bool {
        self.value == self.cap
    }
}

/// A countdown deadline: a budget of time units that may elapse before an
/// event *must* happen. Used for channel-delay budgets.
///
/// # Example
///
/// ```
/// use mck::timed::Budget;
/// let mut b = Budget::new(3);
/// assert!(b.may_wait());
/// b.spend(3);
/// assert!(!b.may_wait()); // the event is now urgent
/// assert_eq!(b.remaining(), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Budget {
    remaining: u16,
}

impl Budget {
    /// A fresh budget of `n` time units.
    pub fn new(n: u16) -> Self {
        Self { remaining: n }
    }

    /// Time units left before the event becomes urgent.
    pub fn remaining(&self) -> u16 {
        self.remaining
    }

    /// Whether at least one more time unit may pass.
    pub fn may_wait(&self) -> bool {
        self.remaining > 0
    }

    /// Spend `n` units (saturating at zero).
    pub fn spend(&mut self, n: u16) {
        self.remaining = self.remaining.saturating_sub(n);
    }

    /// Spend one unit; returns `false` if the budget was already exhausted
    /// (i.e. time was not allowed to pass).
    pub fn tick(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_saturates() {
        let mut c = Clock::new(3);
        for _ in 0..10 {
            c.tick();
        }
        assert_eq!(c.value(), 3);
        assert!(c.saturated());
        assert!(c.at_least(3));
        assert!(c.is(3));
    }

    #[test]
    fn clock_reset() {
        let mut c = Clock::at(2, 5);
        assert_eq!(c.value(), 2);
        c.reset();
        assert_eq!(c.value(), 0);
        assert!(!c.saturated());
    }

    #[test]
    fn clock_at_clamps() {
        let c = Clock::at(99, 5);
        assert_eq!(c.value(), 5);
        assert_eq!(c.cap(), 5);
    }

    #[test]
    fn budget_lifecycle() {
        let mut b = Budget::new(2);
        assert!(b.tick());
        assert!(b.tick());
        assert!(!b.tick());
        assert_eq!(b.remaining(), 0);
        assert!(!b.may_wait());
    }

    #[test]
    fn budget_spend_saturates() {
        let mut b = Budget::new(2);
        b.spend(10);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn clock_ordering() {
        assert!(Clock::at(1, 5) < Clock::at(2, 5));
    }
}
