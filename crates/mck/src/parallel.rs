//! Frontier-parallel BFS over all cores.
//!
//! Level-synchronous parallel breadth-first search: each BFS level is split
//! across scoped worker threads (`std::thread::scope`); the visited set is
//! sharded behind mutexes. Preserves the shortest-counterexample guarantee
//! *per level* (a violation is reported from the shallowest level
//! containing one).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::bfs::{CheckOutcome, Stats};
use crate::model::Model;
use crate::trace::Path;

const SHARDS: usize = 64;

fn shard_of<T: Hash>(value: &T) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// A parallel breadth-first invariant checker.
///
/// Requires `State: Send + Sync` and `Action: Send` in addition to the
/// usual [`Model`] bounds. For small models the sequential
/// [`crate::bfs::Checker`] is faster; this engine pays off on state spaces
/// above ~10^6 states.
pub struct ParallelChecker<'a, M: Model> {
    model: &'a M,
    threads: usize,
    max_states: usize,
}

impl<'a, M> ParallelChecker<'a, M>
where
    M: Model + Sync,
    M::State: Send + Sync,
    M::Action: Send + Sync,
{
    /// Create a parallel checker using all available parallelism.
    pub fn new(model: &'a M) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            model,
            threads,
            max_states: usize::MAX,
        }
    }

    /// Override the number of worker threads.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Bound the number of distinct states explored.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Check that `invariant` holds on every reachable state.
    pub fn check_invariant<F>(&self, invariant: F) -> CheckOutcome<M>
    where
        F: Fn(&M::State) -> bool + Sync,
    {
        // Sharded visited set; each shard also records the parent link so a
        // counterexample can be rebuilt after the fact.
        type Parent<M> = Option<(<M as Model>::State, <M as Model>::Action)>;
        let visited: Vec<Mutex<HashMap<M::State, Parent<M>>>> =
            (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();

        let states_count = AtomicUsize::new(0);
        let transitions_count = AtomicUsize::new(0);
        let truncated = AtomicBool::new(false);
        let violation: Mutex<Option<M::State>> = Mutex::new(None);
        let found = AtomicBool::new(false);

        let mut frontier: Vec<M::State> = Vec::new();
        for init in self.model.initial_states() {
            let shard = shard_of(&init);
            let mut guard = visited[shard].lock().unwrap();
            if !guard.contains_key(&init) {
                guard.insert(init.clone(), None);
                states_count.fetch_add(1, Ordering::Relaxed);
                if !invariant(&init) {
                    *violation.lock().unwrap() = Some(init.clone());
                    found.store(true, Ordering::SeqCst);
                }
                frontier.push(init);
            }
        }

        let mut depth = 0usize;
        while !frontier.is_empty() && !found.load(Ordering::SeqCst) {
            if states_count.load(Ordering::Relaxed) >= self.max_states {
                truncated.store(true, Ordering::SeqCst);
                break;
            }
            depth += 1;
            let chunk = frontier.len().div_ceil(self.threads);
            let next_frontier: Mutex<Vec<M::State>> = Mutex::new(Vec::new());

            let model = self.model;
            let next_frontier_ref = &next_frontier;
            let visited_ref = &visited;
            let violation_ref = &violation;
            let found_ref = &found;
            let states_count_ref = &states_count;
            let transitions_count_ref = &transitions_count;
            let invariant_ref = &invariant;
            std::thread::scope(|scope| {
                for work in frontier.chunks(chunk.max(1)) {
                    scope.spawn(move || {
                        let mut local_next = Vec::new();
                        let mut acts = Vec::new();
                        for cur in work {
                            if found_ref.load(Ordering::Relaxed) {
                                break;
                            }
                            acts.clear();
                            model.actions(cur, &mut acts);
                            for a in &acts {
                                let Some(next) = model.next_state(cur, a) else {
                                    continue;
                                };
                                transitions_count_ref.fetch_add(1, Ordering::Relaxed);
                                let shard = shard_of(&next);
                                let mut guard = visited_ref[shard].lock().unwrap();
                                if guard.contains_key(&next) {
                                    continue;
                                }
                                guard.insert(next.clone(), Some((cur.clone(), a.clone())));
                                drop(guard);
                                states_count_ref.fetch_add(1, Ordering::Relaxed);
                                if !invariant_ref(&next) {
                                    let mut v = violation_ref.lock().unwrap();
                                    if v.is_none() {
                                        *v = Some(next.clone());
                                    }
                                    found_ref.store(true, Ordering::SeqCst);
                                }
                                local_next.push(next);
                            }
                        }
                        next_frontier_ref.lock().unwrap().extend(local_next);
                    });
                }
            });

            frontier = next_frontier.into_inner().unwrap();
        }

        let stats = Stats {
            states: states_count.load(Ordering::Relaxed),
            transitions: transitions_count.load(Ordering::Relaxed),
            depth,
            truncated: truncated.load(Ordering::Relaxed),
        };

        let bad = violation.into_inner().unwrap();
        if let Some(bad) = bad {
            // Rebuild the path by walking parent links through the shards.
            let mut rev: Vec<(M::Action, M::State)> = Vec::new();
            let mut cur = bad;
            loop {
                let shard = shard_of(&cur);
                let guard = visited[shard].lock().unwrap();
                match guard.get(&cur).cloned().flatten() {
                    Some((parent, action)) => {
                        drop(guard);
                        rev.push((action, cur));
                        cur = parent;
                    }
                    None => break,
                }
            }
            rev.reverse();
            return CheckOutcome::Violated {
                path: Path::from_steps(cur, rev),
                stats,
            };
        }
        if stats.truncated {
            CheckOutcome::Incomplete(stats)
        } else {
            CheckOutcome::Holds(stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Checker;

    /// 3-dimensional grid: enough states to exercise the parallel path.
    struct Grid3(u8);
    impl Model for Grid3 {
        type State = (u8, u8, u8);
        type Action = u8;
        fn initial_states(&self) -> Vec<(u8, u8, u8)> {
            vec![(0, 0, 0)]
        }
        fn actions(&self, s: &(u8, u8, u8), out: &mut Vec<u8>) {
            if s.0 < self.0 {
                out.push(0);
            }
            if s.1 < self.0 {
                out.push(1);
            }
            if s.2 < self.0 {
                out.push(2);
            }
        }
        fn next_state(&self, s: &(u8, u8, u8), a: &u8) -> Option<(u8, u8, u8)> {
            Some(match a {
                0 => (s.0 + 1, s.1, s.2),
                1 => (s.0, s.1 + 1, s.2),
                _ => (s.0, s.1, s.2 + 1),
            })
        }
    }

    #[test]
    fn parallel_matches_sequential_state_count() {
        let m = Grid3(6);
        let seq = Checker::new(&m).check_invariant(|_| true);
        let par = ParallelChecker::new(&m)
            .threads(4)
            .check_invariant(|_| true);
        assert!(seq.holds() && par.holds());
        assert_eq!(seq.stats().states, par.stats().states);
    }

    #[test]
    fn parallel_finds_violation_with_valid_path() {
        let m = Grid3(6);
        let out = ParallelChecker::new(&m)
            .threads(4)
            .check_invariant(|s| *s != (3, 3, 3));
        let path = out.counterexample().expect("violation");
        assert_eq!(path.last_state(), &(3, 3, 3));
        // Replay the path to confirm validity.
        let mut cur = *path.initial_state();
        for (a, s) in path.steps() {
            cur = m.next_state(&cur, a).unwrap();
            assert_eq!(&cur, s);
        }
        // Level-synchronous BFS still gives a shortest path here.
        assert_eq!(path.len(), 9);
    }

    #[test]
    fn parallel_state_cap() {
        let m = Grid3(20);
        let out = ParallelChecker::new(&m)
            .threads(2)
            .max_states(100)
            .check_invariant(|_| true);
        assert!(matches!(out, CheckOutcome::Incomplete(_)));
    }

    #[test]
    fn violation_in_initial_state() {
        let m = Grid3(2);
        let out = ParallelChecker::new(&m).check_invariant(|s| *s != (0, 0, 0));
        assert_eq!(out.counterexample().unwrap().len(), 0);
    }
}
