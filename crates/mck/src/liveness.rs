//! Leads-to liveness checking: `AG (trigger → AF goal)`.
//!
//! "Once `trigger` has happened, every execution eventually reaches
//! `goal`." A counterexample is a *lasso*: a finite stem from an initial
//! state to a trigger state, followed by an infinite goal-avoiding
//! suffix — either a cycle of goal-free states or a goal-free deadlock.
//!
//! The checker requires `trigger` to be **absorbing** (once true it stays
//! true along every path — e.g. "some process has crashed" in a model
//! without recovery); this makes the property expressible over states
//! without adding history variables, and it is asserted per transition in
//! debug builds.
//!
//! # Example
//!
//! ```
//! use mck::{Model, liveness::check_leads_to};
//!
//! /// Counts up to 3 and stops; from 1 onward, 3 is inevitable.
//! struct M;
//! impl Model for M {
//!     type State = u8; type Action = ();
//!     fn initial_states(&self) -> Vec<u8> { vec![0] }
//!     fn actions(&self, s: &u8, out: &mut Vec<()>) { if *s < 3 { out.push(()); } }
//!     fn next_state(&self, s: &u8, _: &()) -> Option<u8> { Some(s + 1) }
//! }
//! let out = check_leads_to(&M, |s| *s >= 1, |s| *s == 3, 1 << 20);
//! assert!(out.holds());
//! ```

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::StateGraph;
use crate::model::Model;
use crate::trace::Path;

/// Result of a leads-to check.
#[derive(Clone, Debug)]
pub enum LeadsToOutcome<M: Model> {
    /// Every post-trigger execution reaches the goal (exhaustive).
    Holds {
        /// States explored.
        states: usize,
    },
    /// A goal-avoiding lasso exists.
    Violated {
        /// Stem from an initial state to a trigger state inside the
        /// avoid-region.
        stem: Path<M>,
        /// A goal-avoiding suffix from the stem's end, walked until a
        /// state repeats (a cycle) or a goal-free deadlock is hit.
        cycle: Vec<M::State>,
    },
    /// Exploration hit the state cap before an answer was known.
    Unknown {
        /// States explored when the cap was hit.
        states: usize,
    },
}

impl<M: Model> LeadsToOutcome<M> {
    /// Whether the property was proven.
    pub fn holds(&self) -> bool {
        matches!(self, LeadsToOutcome::Holds { .. })
    }

    /// The violating stem, if any.
    pub fn stem(&self) -> Option<&Path<M>> {
        match self {
            LeadsToOutcome::Violated { stem, .. } => Some(stem),
            _ => None,
        }
    }
}

/// Check `AG (trigger → AF goal)` on `model`, exploring at most
/// `max_states` states.
///
/// # Panics
///
/// Debug-panics if `trigger` turns out not to be absorbing on an explored
/// transition.
pub fn check_leads_to<M, FT, FG>(
    model: &M,
    trigger: FT,
    goal: FG,
    max_states: usize,
) -> LeadsToOutcome<M>
where
    M: Model,
    FT: Fn(&M::State) -> bool,
    FG: Fn(&M::State) -> bool,
{
    let graph = StateGraph::explore(model, max_states);
    if graph.truncated {
        return LeadsToOutcome::Unknown {
            states: graph.states.len(),
        };
    }
    let n = graph.states.len();

    #[cfg(debug_assertions)]
    for (s, _, t) in &graph.transitions {
        debug_assert!(
            !trigger(&graph.states[*s]) || trigger(&graph.states[*t]),
            "trigger predicate is not absorbing"
        );
    }

    // Greatest fixpoint of "goal-free and can continue goal-free":
    // start from all goal-free states and repeatedly remove states whose
    // every successor left the set — unless they are deadlocks (a
    // goal-free deadlock avoids the goal forever, too).
    let goal_flags: Vec<bool> = graph.states.iter().map(&goal).collect();
    let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pred: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut outdeg = vec![0usize; n];
    for (s, _, t) in &graph.transitions {
        succ[*s].push(*t);
        pred[*t].push(*s);
        outdeg[*s] += 1;
    }

    let mut in_avoid: Vec<bool> = goal_flags.iter().map(|g| !g).collect();
    // successors-in-avoid counters (deadlocks stay unconditionally)
    let mut avoid_succ = vec![0usize; n];
    for s in 0..n {
        if in_avoid[s] {
            avoid_succ[s] = succ[s].iter().filter(|&&t| in_avoid[t]).count();
        }
    }
    let mut queue: VecDeque<usize> = (0..n)
        .filter(|&s| in_avoid[s] && outdeg[s] > 0 && avoid_succ[s] == 0)
        .collect();
    while let Some(s) = queue.pop_front() {
        if !in_avoid[s] {
            continue;
        }
        in_avoid[s] = false;
        for &p in &pred[s] {
            if in_avoid[p] && outdeg[p] > 0 {
                avoid_succ[p] -= 1;
                if avoid_succ[p] == 0 {
                    queue.push_back(p);
                }
            }
        }
    }

    // A violation is a reachable state with trigger ∧ ¬goal that can avoid
    // the goal forever. (All graph states are reachable by construction.)
    let bad = (0..n).find(|&s| in_avoid[s] && trigger(&graph.states[s]));
    let Some(bad) = bad else {
        return LeadsToOutcome::Holds { states: n };
    };

    // Stem: BFS through the full graph from the initial states to `bad`.
    let stem = bfs_path(model, &graph, bad);
    // Cycle: walk inside the avoid set from `bad` until a repeat.
    let mut cycle = Vec::new();
    let mut seen: HashSet<usize> = HashSet::new();
    let mut cur = bad;
    loop {
        if !seen.insert(cur) {
            break;
        }
        let Some(&next) = succ[cur].iter().find(|&&t| in_avoid[t]) else {
            break; // goal-free deadlock: empty-cycle witness
        };
        cycle.push(graph.states[next].clone());
        cur = next;
    }

    LeadsToOutcome::Violated { stem, cycle }
}

fn bfs_path<M: Model>(model: &M, graph: &StateGraph<M>, target: usize) -> Path<M> {
    let n = graph.states.len();
    let mut adj: Vec<Vec<(usize, M::Action)>> = vec![Vec::new(); n];
    for (s, a, t) in &graph.transitions {
        adj[*s].push((*t, a.clone()));
    }
    let mut parent: HashMap<usize, (usize, M::Action)> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    let mut visited: HashSet<usize> = HashSet::new();
    for &i in &graph.initial {
        visited.insert(i);
        queue.push_back(i);
    }
    while let Some(u) = queue.pop_front() {
        if u == target {
            break;
        }
        for (v, a) in &adj[u] {
            if visited.insert(*v) {
                parent.insert(*v, (u, a.clone()));
                queue.push_back(*v);
            }
        }
    }
    let mut rev = Vec::new();
    let mut cur = target;
    while let Some((p, a)) = parent.get(&cur) {
        rev.push((a.clone(), graph.states[cur].clone()));
        cur = *p;
    }
    rev.reverse();
    let _ = model;
    Path::from_steps(graph.states[cur].clone(), rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 → 1 → 2 → 3 (absorbing); trigger at ≥1, goal at 3.
    #[derive(Debug)]
    struct Chain;
    impl Model for Chain {
        type State = u8;
        type Action = ();
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, s: &u8, out: &mut Vec<()>) {
            if *s < 3 {
                out.push(());
            }
        }
        fn next_state(&self, s: &u8, _: &()) -> Option<u8> {
            Some(s + 1)
        }
    }

    #[test]
    fn inevitable_goal_holds() {
        let out = check_leads_to(&Chain, |s| *s >= 1, |s| *s == 3, 1 << 10);
        assert!(out.holds());
    }

    /// 0 → 1, then 1 ⇄ 2 forever (no goal state reachable post-trigger).
    #[derive(Debug)]
    struct Swing;
    impl Model for Swing {
        type State = u8;
        type Action = ();
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, _: &u8, out: &mut Vec<()>) {
            out.push(());
        }
        fn next_state(&self, s: &u8, _: &()) -> Option<u8> {
            Some(match s {
                0 => 1,
                1 => 2,
                _ => 1,
            })
        }
    }

    #[test]
    fn cycle_violates() {
        let out = check_leads_to(&Swing, |s| *s >= 1, |s| *s == 9, 1 << 10);
        match out {
            LeadsToOutcome::Violated { stem, cycle } => {
                assert!(!cycle.is_empty());
                assert!(*stem.last_state() >= 1);
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    /// A branch where the goal is possible but evitable: 1 → 2(goal) or
    /// 1 → 1 (self-loop). AF fails: the self-loop avoids the goal.
    struct Evitable;
    impl Model for Evitable {
        type State = u8;
        type Action = u8;
        fn initial_states(&self) -> Vec<u8> {
            vec![1]
        }
        fn actions(&self, s: &u8, out: &mut Vec<u8>) {
            if *s == 1 {
                out.push(0);
                out.push(1);
            }
        }
        fn next_state(&self, s: &u8, a: &u8) -> Option<u8> {
            Some(if *a == 0 { *s } else { 2 })
        }
    }

    #[test]
    fn evitable_goal_is_a_violation() {
        let out = check_leads_to(&Evitable, |_| true, |s| *s == 2, 1 << 10);
        assert!(!out.holds(), "EF goal is not AF goal");
    }

    #[test]
    fn goal_free_deadlock_is_a_violation() {
        // Chain with goal never reached: the deadlock at 3 avoids it.
        let out = check_leads_to(&Chain, |s| *s >= 1, |s| *s == 99, 1 << 10);
        match out {
            LeadsToOutcome::Violated { cycle, .. } => {
                // the suffix walk ends at the deadlock state 3
                assert_eq!(cycle.last(), Some(&3));
            }
            other => panic!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn vacuous_trigger_holds() {
        let out = check_leads_to(&Swing, |_| false, |s| *s == 9, 1 << 10);
        assert!(out.holds(), "no trigger state: vacuously true");
    }

    #[test]
    fn truncation_reports_unknown() {
        let out = check_leads_to(&Chain, |_| true, |s| *s == 3, 2);
        assert!(matches!(out, LeadsToOutcome::Unknown { .. }));
    }
}
