//! Symmetry reduction: explore the quotient of a model under a
//! state-canonicalization function.
//!
//! Many models contain interchangeable components (e.g. the participants
//! of the static heartbeat protocol): states that differ only by a
//! permutation of those components are bisimilar, so it suffices to
//! explore one representative per orbit. The caller supplies a
//! `canonicalize` function mapping each state to its orbit
//! representative; the wrapper applies it to initial states and to every
//! successor.
//!
//! **Soundness**: canonicalization must be induced by an automorphism of
//! the transition system — for every state `s` and enabled action `a`,
//! `canon(next(s, a))` must equal `canon(next(canon(s), a'))` for some
//! action `a'` of the representative. For fully interchangeable
//! components, sorting their sub-states achieves this. Reachability of
//! any *symmetric* predicate (one invariant under the same permutations)
//! is then preserved. The property is the caller's obligation;
//! [`verify_symmetric`](Symmetric::verify_symmetric) provides a random
//! self-check.
//!
//! # Example
//!
//! ```
//! use mck::{Model, bfs::Checker, symmetry::Symmetric};
//!
//! /// Two identical counters; only the multiset of values matters.
//! struct Pair;
//! impl Model for Pair {
//!     type State = (u8, u8);
//!     type Action = usize;
//!     fn initial_states(&self) -> Vec<(u8, u8)> { vec![(0, 0)] }
//!     fn actions(&self, s: &(u8, u8), out: &mut Vec<usize>) {
//!         if s.0 < 4 { out.push(0); }
//!         if s.1 < 4 { out.push(1); }
//!     }
//!     fn next_state(&self, s: &(u8, u8), a: &usize) -> Option<(u8, u8)> {
//!         Some(if *a == 0 { (s.0 + 1, s.1) } else { (s.0, s.1 + 1) })
//!     }
//! }
//!
//! let sym = Symmetric::new(&Pair, |s: &(u8, u8)| {
//!     (s.0.min(s.1), s.0.max(s.1)) // sort the pair
//! });
//! let full = Checker::new(&Pair).check_invariant(|_| true).stats().states;
//! let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
//! assert_eq!(full, 25);
//! assert_eq!(reduced, 15); // multisets of two values in 0..=4
//! ```

use crate::model::Model;

/// A model explored modulo a canonicalization function.
pub struct Symmetric<'a, M: Model, C> {
    inner: &'a M,
    canonicalize: C,
}

impl<'a, M: Model, C> Symmetric<'a, M, C>
where
    C: Fn(&M::State) -> M::State,
{
    /// Wrap `inner`, exploring only canonical representatives.
    pub fn new(inner: &'a M, canonicalize: C) -> Self {
        Self {
            inner,
            canonicalize,
        }
    }

    /// The canonical representative of a state.
    pub fn canon(&self, s: &M::State) -> M::State {
        (self.canonicalize)(s)
    }

    /// Random self-check of the soundness obligation: from `walks` random
    /// walks of length `steps`, verify that canonicalization is
    /// idempotent and that every successor of a canonical state has a
    /// counterpart (equal canonical form) among the successors of the
    /// original state and vice versa. Returns `false` if a discrepancy
    /// was found.
    pub fn verify_symmetric<R: rand::Rng>(&self, rng: &mut R, walks: usize, steps: usize) -> bool
    where
        M::State: Ord,
    {
        use crate::model::ModelExt;
        for _ in 0..walks {
            let path = crate::sim::random_walk(self.inner, rng, steps);
            for s in path.states() {
                let c = self.canon(&s);
                if self.canon(&c) != c {
                    return false; // not idempotent
                }
                let mut succ_s: Vec<M::State> = self
                    .inner
                    .successors(&s)
                    .into_iter()
                    .map(|(_, t)| self.canon(&t))
                    .collect();
                let mut succ_c: Vec<M::State> = self
                    .inner
                    .successors(&c)
                    .into_iter()
                    .map(|(_, t)| self.canon(&t))
                    .collect();
                succ_s.sort();
                succ_s.dedup();
                succ_c.sort();
                succ_c.dedup();
                if succ_s != succ_c {
                    return false; // orbits diverge
                }
            }
        }
        true
    }
}

impl<M: Model, C> Model for Symmetric<'_, M, C>
where
    C: Fn(&M::State) -> M::State,
{
    type State = M::State;
    type Action = M::Action;

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner
            .initial_states()
            .into_iter()
            .map(|s| self.canon(&s))
            .collect()
    }

    fn actions(&self, state: &Self::State, out: &mut Vec<Self::Action>) {
        self.inner.actions(state, out);
    }

    fn next_state(&self, state: &Self::State, action: &Self::Action) -> Option<Self::State> {
        self.inner.next_state(state, action).map(|s| self.canon(&s))
    }

    fn format_action(&self, action: &Self::Action) -> String {
        self.inner.format_action(action)
    }

    fn format_state(&self, state: &Self::State) -> String {
        self.inner.format_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Checker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct Pair(u8);
    impl Model for Pair {
        type State = (u8, u8);
        type Action = usize;
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<usize>) {
            if s.0 < self.0 {
                out.push(0);
            }
            if s.1 < self.0 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &usize) -> Option<(u8, u8)> {
            Some(if *a == 0 {
                (s.0 + 1, s.1)
            } else {
                (s.0, s.1 + 1)
            })
        }
    }

    fn sort_pair(s: &(u8, u8)) -> (u8, u8) {
        (s.0.min(s.1), s.0.max(s.1))
    }

    #[test]
    fn quotient_is_smaller_and_sound() {
        let m = Pair(5);
        let full = Checker::new(&m).check_invariant(|_| true).stats().states;
        let sym = Symmetric::new(&m, sort_pair);
        let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
        assert_eq!(full, 36);
        assert_eq!(reduced, 21); // multisets {(i,j) : i <= j}
    }

    #[test]
    fn symmetric_predicates_agree() {
        let m = Pair(5);
        let sym = Symmetric::new(&m, sort_pair);
        // "some counter reaches 5 while the other is 0" is symmetric
        let goal = |s: &(u8, u8)| (s.0 == 5 && s.1 == 0) || (s.0 == 0 && s.1 == 5);
        let full = Checker::new(&m).find_state(goal);
        let red = Checker::new(&sym).find_state(goal);
        assert_eq!(full.is_some(), red.is_some());
        assert_eq!(full.unwrap().len(), red.unwrap().len());
    }

    #[test]
    fn self_check_passes_for_true_symmetry() {
        let m = Pair(4);
        let sym = Symmetric::new(&m, sort_pair);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sym.verify_symmetric(&mut rng, 10, 20));
    }

    #[test]
    fn self_check_catches_bogus_canonicalization() {
        let m = Pair(4);
        // Collapsing everything to (0,0) is *not* an automorphism quotient.
        let bogus = Symmetric::new(&m, |_s: &(u8, u8)| (0, 0));
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!bogus.verify_symmetric(&mut rng, 10, 20));
    }

    #[test]
    fn identity_canonicalization_changes_nothing() {
        let m = Pair(4);
        let id = Symmetric::new(&m, |s: &(u8, u8)| *s);
        let full = Checker::new(&m).check_invariant(|_| true).stats();
        let same = Checker::new(&id).check_invariant(|_| true).stats();
        assert_eq!(full.states, same.states);
        assert_eq!(full.transitions, same.transitions);
    }
}
