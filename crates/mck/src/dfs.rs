//! Depth-first exploration: memory-lean reachability, deadlock detection,
//! and iterative deepening.
//!
//! BFS ([`crate::bfs::Checker`]) is the default engine because it yields
//! shortest counterexamples; the DFS engine is useful when the frontier
//! would not fit in memory, when any counterexample (not necessarily
//! shortest) suffices, or to enumerate deadlocks.

use std::collections::HashSet;

use crate::bfs::Stats;
use crate::model::Model;
use crate::trace::Path;

/// Result of a DFS search.
#[derive(Clone, Debug)]
pub enum DfsOutcome<M: Model> {
    /// A goal state was found; the (not necessarily shortest) path is
    /// attached.
    Found {
        /// Path from an initial state to the found state.
        path: Path<M>,
        /// Exploration statistics.
        stats: Stats,
    },
    /// The goal is unreachable within the explored depth.
    Unreachable(Stats),
    /// The search was truncated by the state bound.
    Unknown(Stats),
}

impl<M: Model> DfsOutcome<M> {
    /// The witness path if found.
    pub fn path(&self) -> Option<&Path<M>> {
        match self {
            DfsOutcome::Found { path, .. } => Some(path),
            _ => None,
        }
    }

    /// Exploration statistics.
    pub fn stats(&self) -> Stats {
        match self {
            DfsOutcome::Found { stats, .. } => *stats,
            DfsOutcome::Unreachable(s) | DfsOutcome::Unknown(s) => *s,
        }
    }
}

/// Depth-first searcher.
pub struct Dfs<'a, M: Model> {
    model: &'a M,
    max_depth: usize,
    max_states: usize,
}

impl<'a, M: Model> Dfs<'a, M> {
    /// Create a DFS engine with no practical limits.
    pub fn new(model: &'a M) -> Self {
        Self {
            model,
            max_depth: usize::MAX,
            max_states: usize::MAX,
        }
    }

    /// Bound the search depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Bound the number of distinct visited states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Depth-first search for a state satisfying `goal`.
    ///
    /// Visited-state deduplication is global, so with an unbounded depth the
    /// search is exhaustive. With a depth bound, dedup is still global,
    /// which may miss goal states only reachable by a short path explored
    /// after a longer one — acceptable for its use as a bounded smoke check;
    /// use [`iterative_deepening`](Dfs::iterative_deepening) for
    /// depth-bounded completeness.
    pub fn find<F>(&self, goal: F) -> DfsOutcome<M>
    where
        F: Fn(&M::State) -> bool,
    {
        let mut stats = Stats::default();
        let mut visited: HashSet<M::State> = HashSet::new();
        // Explicit stack of (path-so-far) frames to avoid recursion depth
        // limits: each frame is (state, action-iterator index, actions).
        for init in self.model.initial_states() {
            if !visited.insert(init.clone()) {
                continue;
            }
            stats.states += 1;
            if goal(&init) {
                return DfsOutcome::Found {
                    path: Path::new(init),
                    stats,
                };
            }
            let mut frames: Vec<(M::State, Vec<M::Action>, usize)> = Vec::new();
            let mut trail: Vec<(M::Action, M::State)> = Vec::new();
            let mut acts = Vec::new();
            self.model.actions(&init, &mut acts);
            frames.push((init.clone(), acts, 0));
            while !frames.is_empty() {
                let depth_now = frames.len();
                let (state, actions, idx) = frames.last_mut().expect("non-empty");
                if *idx >= actions.len() || depth_now > self.max_depth {
                    frames.pop();
                    trail.pop();
                    continue;
                }
                let a = actions[*idx].clone();
                *idx += 1;
                let Some(next) = self.model.next_state(state, &a) else {
                    continue;
                };
                stats.transitions += 1;
                if !visited.insert(next.clone()) {
                    continue;
                }
                stats.states += 1;
                stats.depth = stats.depth.max(frames.len());
                trail.push((a, next.clone()));
                if goal(&next) {
                    return DfsOutcome::Found {
                        path: Path::from_steps(init, trail),
                        stats,
                    };
                }
                if stats.states >= self.max_states {
                    stats.truncated = true;
                    return DfsOutcome::Unknown(stats);
                }
                let mut nacts = Vec::new();
                self.model.actions(&next, &mut nacts);
                frames.push((next, nacts, 0));
            }
        }
        if self.max_depth != usize::MAX && stats.depth >= self.max_depth {
            stats.truncated = true;
            DfsOutcome::Unknown(stats)
        } else {
            DfsOutcome::Unreachable(stats)
        }
    }

    /// Iterative-deepening search: repeated depth-bounded DFS with depth
    /// 1, 2, 4, ... up to `limit`. Returns a shortest-or-near-shortest
    /// witness using far less memory than BFS (visited set is cleared per
    /// round).
    pub fn iterative_deepening<F>(&self, goal: F, limit: usize) -> DfsOutcome<M>
    where
        F: Fn(&M::State) -> bool + Copy,
    {
        let mut depth = 1usize;
        loop {
            let out = Dfs::new(self.model)
                .max_depth(depth)
                .max_states(self.max_states)
                .find(goal);
            match out {
                DfsOutcome::Found { .. } => return out,
                DfsOutcome::Unreachable(s) => return DfsOutcome::Unreachable(s),
                DfsOutcome::Unknown(s) => {
                    if depth >= limit {
                        return DfsOutcome::Unknown(s);
                    }
                }
            }
            depth = (depth * 2).min(limit);
        }
    }

    /// Enumerate all reachable deadlock states (no enabled transitions),
    /// up to the configured state bound.
    pub fn deadlocks(&self) -> Vec<M::State> {
        let mut visited: HashSet<M::State> = HashSet::new();
        let mut stack: Vec<M::State> = Vec::new();
        let mut found = Vec::new();
        for init in self.model.initial_states() {
            if visited.insert(init.clone()) {
                stack.push(init);
            }
        }
        let mut acts = Vec::new();
        while let Some(s) = stack.pop() {
            acts.clear();
            self.model.actions(&s, &mut acts);
            let mut any = false;
            for a in &acts {
                if let Some(n) = self.model.next_state(&s, a) {
                    any = true;
                    if visited.len() < self.max_states && visited.insert(n.clone()) {
                        stack.push(n);
                    }
                }
            }
            if !any {
                found.push(s);
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Chain(u32);
    impl Model for Chain {
        type State = u32;
        type Action = ();
        fn initial_states(&self) -> Vec<u32> {
            vec![0]
        }
        fn actions(&self, s: &u32, out: &mut Vec<()>) {
            if *s < self.0 {
                out.push(());
            }
        }
        fn next_state(&self, s: &u32, _: &()) -> Option<u32> {
            Some(s + 1)
        }
    }

    #[test]
    fn dfs_finds_goal() {
        let out = Dfs::new(&Chain(10)).find(|s| *s == 7);
        assert_eq!(out.path().unwrap().last_state(), &7);
        assert_eq!(out.path().unwrap().len(), 7);
    }

    #[test]
    fn dfs_exhaustive_unreachable() {
        let out = Dfs::new(&Chain(10)).find(|s| *s == 42);
        assert!(matches!(out, DfsOutcome::Unreachable(_)));
        assert_eq!(out.stats().states, 11);
    }

    #[test]
    fn depth_bound_truncates() {
        let out = Dfs::new(&Chain(10)).max_depth(3).find(|s| *s == 7);
        assert!(matches!(out, DfsOutcome::Unknown(_)));
    }

    #[test]
    fn iterative_deepening_finds_goal() {
        let out = Dfs::new(&Chain(100)).iterative_deepening(|s| *s == 9, 64);
        assert_eq!(out.path().unwrap().len(), 9);
    }

    #[test]
    fn iterative_deepening_respects_limit() {
        let out = Dfs::new(&Chain(100)).iterative_deepening(|s| *s == 90, 16);
        assert!(matches!(out, DfsOutcome::Unknown(_)));
    }

    #[test]
    fn deadlock_enumeration() {
        let dl = Dfs::new(&Chain(5)).deadlocks();
        assert_eq!(dl, vec![5]);
    }

    #[test]
    fn goal_in_initial_state() {
        let out = Dfs::new(&Chain(5)).find(|s| *s == 0);
        assert!(out.path().unwrap().is_empty());
    }
}
