//! Bit-packed explicit-state exploration: the frontier and the
//! visited-state set hold *encoded* states, at widths a static range
//! analysis has proven sufficient, instead of hash-map keys of the full
//! `State` value.
//!
//! The plain [`crate::bfs::Checker`] stores every distinct state twice
//! (once in the intern vector, once as a `HashMap` key) plus a parent
//! link with a cloned action — dozens of heap allocations per state for
//! a model like the heartbeat composition whose states own vectors.
//! [`PackedChecker`] replaces all of that with four flat buffers:
//!
//! * an **arena** of concatenated bit-packed records (one per state,
//!   variable length, written by a [`StateCodec`]),
//! * an **offset** vector locating each record,
//! * an open-addressing **hash index** over the records (no stored
//!   keys: a 16-bit fingerprint per slot, byte-compare on candidate
//!   hits),
//! * a **parent-link** vector of `(parent id, action index)` pairs for
//!   counterexample reconstruction — the action itself is re-derived by
//!   re-enumerating the parent's actions, so nothing per-transition is
//!   heap-allocated.
//!
//! The codec owns the soundness of the widths: encoding a value outside
//! its proven range panics (never silently truncates), and in debug
//! builds every encoded record is immediately decoded and compared to
//! the original state, so a wrong width or a forgotten field fails the
//! first test that reaches it. `hb-verify::packed` derives its codec
//! widths from the `hb-core::dataflow` interval analysis.
//!
//! Exploration order is breadth-first by default (shortest
//! counterexamples, like [`crate::bfs`]) with an optional depth-first
//! mode ([`PackedChecker::depth_first`]) for memory-shaped workloads
//! where the BFS frontier would dominate.

use std::time::{Duration, Instant};

use crate::bfs::{CheckOutcome, Stats};
use crate::model::Model;
use crate::trace::Path;

/// LSB-first bit writer over a reusable byte buffer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bits: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to empty, keeping the allocation.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.bits = 0;
    }

    /// Append the low `width` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits — a codec trying
    /// to encode outside its proven range must fail loudly, never
    /// truncate.
    pub fn push(&mut self, value: u32, width: u32) {
        assert!(width <= 32, "bit width {width} > 32");
        assert!(
            width == 32 || value >> width == 0,
            "value {value} exceeds its proven {width}-bit range"
        );
        for i in 0..width {
            let bit = (value >> i) & 1;
            let byte = self.bits / 8;
            if byte == self.bytes.len() {
                self.bytes.push(0);
            }
            self.bytes[byte] |= (bit as u8) << (self.bits % 8);
            self.bits += 1;
        }
    }

    /// The packed bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// LSB-first bit reader over a packed record.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Read `width` bits (the inverse of [`BitWriter::push`]).
    pub fn read(&mut self, width: u32) -> u32 {
        let mut v = 0u32;
        for i in 0..width {
            let byte = self.pos / 8;
            let bit = (self.bytes[byte] >> (self.pos % 8)) & 1;
            v |= (bit as u32) << i;
            self.pos += 1;
        }
        v
    }
}

/// A bijection between states and bit-packed records.
///
/// `decode(encode(s)) == s` must hold exactly; debug builds assert it
/// on every interned state. Widths are the codec's contract: encoding
/// panics on out-of-range values rather than truncating.
pub trait StateCodec<S> {
    /// Append the packed encoding of `state`.
    fn encode(&self, state: &S, w: &mut BitWriter);
    /// Decode one state (consuming exactly what `encode` wrote).
    fn decode(&self, r: &mut BitReader) -> S;
}

/// Memory footprint of a packed exploration, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackedMem {
    /// Concatenated packed state records.
    pub arena_bytes: usize,
    /// Open-addressing hash index.
    pub index_bytes: usize,
    /// Offsets and parent links.
    pub links_bytes: usize,
    /// Peak frontier (BFS queue / DFS stack) size.
    pub frontier_bytes: usize,
}

impl PackedMem {
    /// Total bytes across all four buffers at their peak.
    pub fn total(&self) -> usize {
        self.arena_bytes + self.index_bytes + self.links_bytes + self.frontier_bytes
    }
}

/// A check outcome plus the packed store's memory accounting.
#[derive(Clone, Debug)]
pub struct PackedRun<M: Model> {
    /// The verdict, in the same shape as the plain checker's.
    pub outcome: CheckOutcome<M>,
    /// Peak memory of the packed exploration.
    pub mem: PackedMem,
}

/// Packed-state store: arena + offsets + open-addressing index.
struct Store {
    arena: Vec<u8>,
    offsets: Vec<u32>,
    /// `0` = empty; otherwise `((id + 1) << 16) | fingerprint`.
    slots: Vec<u64>,
    mask: usize,
}

const FP_MASK: u64 = 0xFFFF;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Store {
    fn new() -> Self {
        let cap = 1 << 12;
        Self {
            arena: Vec::new(),
            offsets: Vec::new(),
            slots: vec![0; cap],
            mask: cap - 1,
        }
    }

    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn record(&self, id: usize) -> &[u8] {
        let start = self.offsets[id] as usize;
        let end = self
            .offsets
            .get(id + 1)
            .map(|&o| o as usize)
            .unwrap_or(self.arena.len());
        &self.arena[start..end]
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        self.mask = cap - 1;
        self.slots = vec![0; cap];
        for id in 0..self.len() {
            let h = fnv1a(self.record(id));
            let mut i = h as usize & self.mask;
            while self.slots[i] != 0 {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = ((id as u64 + 1) << 16) | (h & FP_MASK);
        }
    }

    /// Intern a packed record; returns `(id, freshly inserted)`.
    fn intern(&mut self, bytes: &[u8]) -> (usize, bool) {
        // Keep the load factor at or below 0.7.
        if self.len() * 10 >= self.slots.len() * 7 {
            self.grow();
        }
        let h = fnv1a(bytes);
        let mut i = h as usize & self.mask;
        loop {
            let slot = self.slots[i];
            if slot == 0 {
                let id = self.offsets.len();
                assert!(
                    self.arena.len() + bytes.len() <= u32::MAX as usize,
                    "packed arena exceeded 4 GiB"
                );
                self.offsets.push(self.arena.len() as u32);
                self.arena.extend_from_slice(bytes);
                self.slots[i] = ((id as u64 + 1) << 16) | (h & FP_MASK);
                return (id, true);
            }
            if slot & FP_MASK == h & FP_MASK {
                let id = ((slot >> 16) - 1) as usize;
                if self.record(id) == bytes {
                    return (id, false);
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    fn index_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<u64>()
    }
}

/// Explicit-state checker over bit-packed states.
///
/// Mirrors [`crate::bfs::Checker`]'s builder and outcome shapes; the
/// difference is purely representational (see the module docs).
pub struct PackedChecker<'a, M: Model, C: StateCodec<M::State>> {
    model: &'a M,
    codec: C,
    max_states: usize,
    max_depth: usize,
    time_budget: Option<Duration>,
    depth_first: bool,
}

impl<'a, M: Model, C: StateCodec<M::State>> PackedChecker<'a, M, C> {
    /// A checker with no practical limits, exploring breadth-first.
    pub fn new(model: &'a M, codec: C) -> Self {
        Self {
            model,
            codec,
            max_states: usize::MAX,
            max_depth: usize::MAX,
            time_budget: None,
            depth_first: false,
        }
    }

    /// Stop (reporting `Incomplete`) after this many distinct states.
    pub fn max_states(mut self, n: usize) -> Self {
        self.max_states = n;
        self
    }

    /// Stop exploring beyond this depth.
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d;
        self
    }

    /// Stop after roughly this wall-clock budget.
    pub fn time_budget(mut self, d: Duration) -> Self {
        self.time_budget = Some(d);
        self
    }

    /// Explore depth-first (counterexamples are no longer shortest; the
    /// frontier stays small when the state graph is deep and narrow).
    pub fn depth_first(mut self, yes: bool) -> Self {
        self.depth_first = yes;
        self
    }

    fn encode(&self, state: &M::State, w: &mut BitWriter) {
        w.clear();
        self.codec.encode(state, w);
        #[cfg(debug_assertions)]
        {
            let mut r = BitReader::new(w.bytes());
            let back = self.codec.decode(&mut r);
            debug_assert!(
                &back == state,
                "packed codec round-trip mismatch:\n  in:  {state:?}\n  out: {back:?}"
            );
        }
    }

    fn decode(&self, store: &Store, id: usize) -> M::State {
        let mut r = BitReader::new(store.record(id));
        self.codec.decode(&mut r)
    }

    /// Rebuild the path to `id` by decoding ancestors and re-deriving
    /// each step's action from its recorded index.
    fn rebuild(&self, store: &Store, links: &[u64], mut id: usize) -> Path<M> {
        let mut rev: Vec<(M::Action, M::State)> = Vec::new();
        while links[id] != 0 {
            let parent = ((links[id] >> 16) - 1) as usize;
            let action_idx = (links[id] & 0xFFFF) as usize;
            let parent_state = self.decode(store, parent);
            let mut acts = Vec::new();
            self.model.actions(&parent_state, &mut acts);
            let action = acts.swap_remove(action_idx);
            rev.push((action, self.decode(store, id)));
            id = parent;
        }
        rev.reverse();
        Path::from_steps(self.decode(store, id), rev)
    }

    /// Check that `invariant` holds on every reachable state.
    pub fn check_invariant<F>(&self, invariant: F) -> PackedRun<M>
    where
        F: Fn(&M::State) -> bool,
    {
        let start = Instant::now();
        let mut stats = Stats::default();
        let mut store = Store::new();
        // `0` = root, else `((parent + 1) << 16) | action index`.
        let mut links: Vec<u64> = Vec::new();
        // Frontier of `(id, depth)`; pushed/popped at the back in DFS
        // mode, popped at the front in BFS mode.
        let mut frontier: std::collections::VecDeque<(u32, u32)> =
            std::collections::VecDeque::new();
        let mut peak_frontier = 0usize;
        let mut scratch = BitWriter::new();

        let mut violation: Option<usize> = None;
        for init in self.model.initial_states() {
            self.encode(&init, &mut scratch);
            let (id, fresh) = store.intern(scratch.bytes());
            if fresh {
                links.push(0);
                stats.states += 1;
                if !invariant(&init) {
                    violation = Some(id);
                    break;
                }
                frontier.push_back((id as u32, 0));
            }
        }

        let mut actions = Vec::new();
        while violation.is_none() {
            let Some((id, d)) = (if self.depth_first {
                frontier.pop_back()
            } else {
                frontier.pop_front()
            }) else {
                break;
            };
            peak_frontier = peak_frontier.max(frontier.len() + 1);
            let d = d as usize;
            if d >= self.max_depth {
                stats.truncated = true;
                continue;
            }
            if stats.states >= self.max_states {
                stats.truncated = true;
                break;
            }
            if let Some(budget) = self.time_budget {
                if start.elapsed() > budget {
                    stats.truncated = true;
                    break;
                }
            }
            let cur = self.decode(&store, id as usize);
            actions.clear();
            self.model.actions(&cur, &mut actions);
            assert!(
                actions.len() <= 0xFFFF,
                "more than 65535 actions in one state"
            );
            for (k, a) in actions.iter().enumerate() {
                let Some(next) = self.model.next_state(&cur, a) else {
                    continue;
                };
                stats.transitions += 1;
                self.encode(&next, &mut scratch);
                let (nid, fresh) = store.intern(scratch.bytes());
                if fresh {
                    links.push(((id as u64 + 1) << 16) | k as u64);
                    stats.states += 1;
                    stats.depth = stats.depth.max(d + 1);
                    if !invariant(&next) {
                        violation = Some(nid);
                        break;
                    }
                    frontier.push_back((nid as u32, (d + 1) as u32));
                    peak_frontier = peak_frontier.max(frontier.len());
                }
            }
        }

        let mem = PackedMem {
            arena_bytes: store.arena.len(),
            index_bytes: store.index_bytes(),
            links_bytes: links.len() * 8 + store.offsets.len() * 4,
            frontier_bytes: peak_frontier * std::mem::size_of::<(u32, u32)>(),
        };
        let outcome = match violation {
            Some(id) => CheckOutcome::Violated {
                path: self.rebuild(&store, &links, id),
                stats,
            },
            None if stats.truncated => CheckOutcome::Incomplete(stats),
            None => CheckOutcome::Holds(stats),
        };
        PackedRun { outcome, mem }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Checker;

    /// The same two-counter grid the plain BFS tests use.
    struct Grid;
    impl Model for Grid {
        type State = (u8, u8);
        type Action = u8;
        fn initial_states(&self) -> Vec<(u8, u8)> {
            vec![(0, 0)]
        }
        fn actions(&self, s: &(u8, u8), out: &mut Vec<u8>) {
            if s.0 < 3 {
                out.push(0);
            }
            if s.1 < 3 {
                out.push(1);
            }
        }
        fn next_state(&self, s: &(u8, u8), a: &u8) -> Option<(u8, u8)> {
            Some(match a {
                0 => (s.0 + 1, s.1),
                _ => (s.0, s.1 + 1),
            })
        }
    }

    struct GridCodec;
    impl StateCodec<(u8, u8)> for GridCodec {
        fn encode(&self, s: &(u8, u8), w: &mut BitWriter) {
            w.push(s.0 as u32, 2);
            w.push(s.1 as u32, 2);
        }
        fn decode(&self, r: &mut BitReader) -> (u8, u8) {
            (r.read(2) as u8, r.read(2) as u8)
        }
    }

    #[test]
    fn bit_roundtrip_across_byte_boundaries() {
        let mut w = BitWriter::new();
        for (v, bits) in [(5u32, 3), (0, 0), (1023, 10), (1, 1), (77, 7)] {
            w.push(v, bits);
        }
        let mut r = BitReader::new(w.bytes());
        for (v, bits) in [(5u32, 3), (0, 0), (1023, 10), (1, 1), (77, 7)] {
            assert_eq!(r.read(bits), v);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds its proven")]
    fn encoding_outside_the_proven_range_panics() {
        BitWriter::new().push(4, 2);
    }

    #[test]
    fn packed_agrees_with_plain_bfs_exhaustively() {
        let plain = Checker::new(&Grid).check_invariant(|_| true);
        let packed = PackedChecker::new(&Grid, GridCodec).check_invariant(|_| true);
        assert!(packed.outcome.holds());
        assert_eq!(packed.outcome.stats().states, plain.stats().states);
        assert_eq!(
            packed.outcome.stats().transitions,
            plain.stats().transitions
        );
        // 16 states, 4 bits each, records byte-aligned: 16 arena bytes.
        assert_eq!(packed.mem.arena_bytes, 16);
    }

    #[test]
    fn packed_counterexamples_are_shortest_and_rebuildable() {
        let run = PackedChecker::new(&Grid, GridCodec).check_invariant(|s| *s != (2, 1));
        let path = run.outcome.counterexample().expect("reachable");
        assert_eq!(path.len(), 3);
        assert_eq!(path.last_state(), &(2, 1));
        // Replay the rebuilt actions through the model.
        let mut s = *path.initial_state();
        for (a, expect) in path.steps() {
            s = Grid.next_state(&s, a).unwrap();
            assert_eq!(&s, expect);
        }
    }

    #[test]
    fn state_limit_reports_incomplete() {
        let run = PackedChecker::new(&Grid, GridCodec)
            .max_states(3)
            .check_invariant(|s| *s != (3, 3));
        assert!(matches!(run.outcome, CheckOutcome::Incomplete(_)));
    }

    #[test]
    fn depth_first_mode_visits_the_same_states() {
        let run = PackedChecker::new(&Grid, GridCodec)
            .depth_first(true)
            .check_invariant(|_| true);
        assert!(run.outcome.holds());
        assert_eq!(run.outcome.stats().states, 16);
    }

    #[test]
    fn the_index_survives_growth() {
        // A model with enough states to force several index growths.
        struct Big;
        impl Model for Big {
            type State = u32;
            type Action = ();
            fn initial_states(&self) -> Vec<u32> {
                vec![0]
            }
            fn actions(&self, s: &u32, out: &mut Vec<()>) {
                if *s < 20_000 {
                    out.push(());
                }
            }
            fn next_state(&self, s: &u32, _: &()) -> Option<u32> {
                Some(s + 1)
            }
        }
        struct U32Codec;
        impl StateCodec<u32> for U32Codec {
            fn encode(&self, s: &u32, w: &mut BitWriter) {
                w.push(*s, 15);
            }
            fn decode(&self, r: &mut BitReader) -> u32 {
                r.read(15)
            }
        }
        let run = PackedChecker::new(&Big, U32Codec).check_invariant(|_| true);
        assert!(run.outcome.holds());
        assert_eq!(run.outcome.stats().states, 20_001);
    }
}
