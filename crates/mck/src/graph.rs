//! Exhaustive state-graph construction, statistics, and DOT export.
//!
//! Used by the figure-regeneration benches (reduced transition systems of
//! p\[0\] and p\[1\]) and handy for debugging models.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::model::Model;

/// A fully explored state graph of a model.
#[derive(Clone, Debug)]
pub struct StateGraph<M: Model> {
    /// All reachable states; index = state id.
    pub states: Vec<M::State>,
    /// Edges `(source id, action, target id)`.
    pub transitions: Vec<(usize, M::Action, usize)>,
    /// Ids of the initial states.
    pub initial: Vec<usize>,
    /// Whether the exploration hit the state cap.
    pub truncated: bool,
}

/// Summary statistics of a state graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of transitions.
    pub transitions: usize,
    /// Number of deadlock states (no outgoing transitions).
    pub deadlocks: usize,
    /// Eccentricity of the initial state set (max BFS distance).
    pub diameter: usize,
}

impl<M: Model> StateGraph<M> {
    /// Exhaustively explore `model`, up to `max_states` distinct states.
    pub fn explore(model: &M, max_states: usize) -> Self {
        let mut states: Vec<M::State> = Vec::new();
        let mut index: HashMap<M::State, usize> = HashMap::new();
        let mut transitions = Vec::new();
        let mut initial = Vec::new();
        let mut truncated = false;

        let mut frontier: Vec<usize> = Vec::new();
        for s in model.initial_states() {
            let id = *index.entry(s.clone()).or_insert_with(|| {
                states.push(s);
                states.len() - 1
            });
            if !initial.contains(&id) {
                initial.push(id);
                frontier.push(id);
            }
        }

        let mut acts = Vec::new();
        let mut cursor = 0;
        while cursor < frontier.len() {
            let id = frontier[cursor];
            cursor += 1;
            let cur = states[id].clone();
            acts.clear();
            model.actions(&cur, &mut acts);
            for a in acts.clone() {
                let Some(next) = model.next_state(&cur, &a) else {
                    continue;
                };
                let nid = match index.get(&next) {
                    Some(&nid) => nid,
                    None => {
                        if states.len() >= max_states {
                            truncated = true;
                            continue;
                        }
                        let nid = states.len();
                        index.insert(next.clone(), nid);
                        states.push(next);
                        frontier.push(nid);
                        nid
                    }
                };
                transitions.push((id, a, nid));
            }
        }

        StateGraph {
            states,
            transitions,
            initial,
            truncated,
        }
    }

    /// Compute summary statistics.
    pub fn stats(&self) -> GraphStats {
        let mut outdeg = vec![0usize; self.states.len()];
        for (s, _, _) in &self.transitions {
            outdeg[*s] += 1;
        }
        let deadlocks = outdeg.iter().filter(|d| **d == 0).count();

        // BFS from the initial set for the diameter.
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.states.len()];
        for (s, _, t) in &self.transitions {
            adj[*s].push(*t);
        }
        let mut dist = vec![usize::MAX; self.states.len()];
        let mut queue = std::collections::VecDeque::new();
        for &i in &self.initial {
            dist[i] = 0;
            queue.push_back(i);
        }
        let mut diameter = 0;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    diameter = diameter.max(dist[v]);
                    queue.push_back(v);
                }
            }
        }

        GraphStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            deadlocks,
            diameter,
        }
    }

    /// Render the graph in Graphviz DOT format using the model's
    /// formatting hooks.
    pub fn to_dot(&self, model: &M) -> String {
        let mut out = String::from("digraph model {\n  rankdir=LR;\n");
        for (i, s) in self.states.iter().enumerate() {
            let shape = if self.initial.contains(&i) {
                "doublecircle"
            } else {
                "circle"
            };
            let label = model.format_state(s).replace('"', "'");
            let _ = writeln!(out, "  n{i} [shape={shape}, label=\"{label}\"];");
        }
        for (s, a, t) in &self.transitions {
            let label = model.format_action(a).replace('"', "'");
            let _ = writeln!(out, "  n{s} -> n{t} [label=\"{label}\"];");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Ring(u8);
    impl Model for Ring {
        type State = u8;
        type Action = ();
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, _: &u8, out: &mut Vec<()>) {
            out.push(());
        }
        fn next_state(&self, s: &u8, _: &()) -> Option<u8> {
            Some((s + 1) % self.0)
        }
    }

    #[test]
    fn ring_graph_shape() {
        let g = StateGraph::explore(&Ring(5), usize::MAX);
        let st = g.stats();
        assert_eq!(st.states, 5);
        assert_eq!(st.transitions, 5);
        assert_eq!(st.deadlocks, 0);
        assert_eq!(st.diameter, 4);
        assert!(!g.truncated);
    }

    #[test]
    fn truncation_flag() {
        let g = StateGraph::explore(&Ring(100), 10);
        assert!(g.truncated);
        assert_eq!(g.states.len(), 10);
    }

    #[test]
    fn dot_export_mentions_every_state() {
        let g = StateGraph::explore(&Ring(3), usize::MAX);
        let dot = g.to_dot(&Ring(3));
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0"));
        assert!(dot.contains("n2"));
        assert!(dot.contains("doublecircle"));
    }

    struct Dead;
    impl Model for Dead {
        type State = u8;
        type Action = ();
        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn actions(&self, s: &u8, out: &mut Vec<()>) {
            if *s == 0 {
                out.push(());
            }
        }
        fn next_state(&self, _: &u8, _: &()) -> Option<u8> {
            Some(1)
        }
    }

    #[test]
    fn deadlock_counted() {
        let g = StateGraph::explore(&Dead, usize::MAX);
        assert_eq!(g.stats().deadlocks, 1);
    }
}
