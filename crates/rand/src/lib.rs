//! A std-only, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the real `rand` with this path crate. Only the API surface the
//! repo actually exercises is provided:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`] — here a
//!   xoshiro256++ generator seeded through splitmix64 (the same
//!   construction the real `rand` documents for seeding);
//! * the [`Rng`] extension trait with `gen_bool` and `gen_range`;
//! * [`seq::SliceRandom`] with `choose` and `shuffle` (Fisher–Yates).
//!
//! Streams differ from the real `rand` (seeded runs are reproducible
//! *within* this workspace, not against upstream), which is all the
//! simulator and tests rely on.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types `gen_range` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    /// Widen to `u64` for sampling arithmetic (values are offsets from the
    /// range start, so unsigned is enough).
    fn to_u64(self) -> u64;
    /// Narrow back after sampling; the value is guaranteed in range.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Ranges `gen_range` accepts (`a..b` and `a..=b`).
pub trait SampleRange<T> {
    /// The inclusive `(low, high)` bounds of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn bounds(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample empty range");
        (self.start, T::from_u64(self.end.to_u64() - 1))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds(self) -> (T, T) {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        (lo, hi)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let (lo, hi) = range.bounds();
        let span = hi.to_u64() - lo.to_u64();
        if span == u64::MAX {
            return T::from_u64(self.next_u64());
        }
        // Unbiased sampling by rejection from the widest multiple of
        // `span + 1` that fits in 64 bits.
        let n = span + 1;
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return T::from_u64(lo.to_u64() + v % n);
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::Rng;

    /// `choose` and `shuffle` on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 6];
        for _ in 0..60_000 {
            let v: usize = rng.gen_range(0..6);
            counts[v] += 1;
        }
        for c in counts {
            assert!((c as i64 - 10_000).abs() < 500, "counts {counts:?}");
        }
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 10);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
