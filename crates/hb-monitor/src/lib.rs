//! `hb-monitor` — streaming runtime verification of the R1–R3 heartbeat
//! requirements over live and simulated event streams.
//!
//! The model checker in `hb-verify` proves the requirements over *every*
//! behaviour of a small, bounded model; this crate checks them over *one*
//! behaviour of an arbitrarily large, arbitrarily long run — a simulated
//! `World`, a loopback `VirtualCluster`, or a live UDP cluster. The two
//! layers share a single source of truth: [`MonitorSet::new`] compiles the
//! declarative [`monitor_defs`](hb_verify::monitor::monitor_defs) (bound,
//! arming discipline, reset guard, fault premise) into incremental
//! checkers, so the runtime monitors cannot drift from what the model
//! checker verifies.
//!
//! # Compilation: automaton → streaming checker
//!
//! The model's R1 ghost monitor is a per-participant counter `since[i]`
//! that advances every tick — fine for a checker that owns time, hopeless
//! for a tap that only sees *events*. The streaming compilation replaces
//! the counter with **deadline arithmetic**: an admitted heartbeat at tick
//! `r` arms `deadline[i] = r + bound + 1` (the first tick at which the
//! model's counter would exceed the bound), and every observed timestamp
//! `t` first *fires* any armed deadline `≤ t` — inclusive, and before the
//! event at `t` is processed, matching the model's rule that a `Tick` may
//! precede same-instant deliveries (a rescue beat, or the coordinator's
//! own death, arriving exactly on the deadline tick does not suppress the
//! violation). [`MonitorSet::finish`] fires deadlines up to the run's
//! horizon after the last event.
//!
//! Whether a beat is *admitted* is decided by a coordinator **mirror**: a
//! plain [`CoordState`] replayed through [`CoordSpec::on_heartbeat`] on
//! every delivery to `p[0]`, giving the monitor the spec's own `left`
//! latches and per-slot epoch bars without re-implementing them. The
//! monitor ignores a beat iff the slot is latched *or* the epoch is
//! behind the bar — at every fix level (see `hb_verify::monitor` for why
//! this deliberately out-judges a naive coordinator on stale beats).
//!
//! R2/R3 are latches with a trace-global premise: the first candidate
//! inactivation is recorded online, and [`MonitorSet::verdicts`] discards
//! it if any fault (crash or loss) occurred *anywhere* in the run.
//!
//! Memory is O(participants): two `Vec`s of deadlines/flags, the mirror's
//! per-slot state, and per-participant status bits. No event is buffered.
//!
//! # Example
//!
//! ```
//! use hb_core::{FixLevel, Params, Variant};
//! use hb_core::trace::Event;
//! use hb_core::Heartbeat;
//! use hb_monitor::MonitorSet;
//!
//! let params = Params::new(2, 8).unwrap();
//! let mut mon = MonitorSet::new(Variant::Binary, params, FixLevel::Original, 1);
//! mon.observe(&Event::Deliver { at: 5, from: 1, to: 0, hb: Heartbeat::plain() });
//! mon.finish(200); // silence past the claimed bound: R1 fires
//! let v = mon.verdicts();
//! assert_eq!(v.r1.unwrap().at, 5 + 16 + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Arc, Mutex};

use hb_core::coordinator::{CoordSpec, CoordState};
use hb_core::events::{EventTap, OwnedTap};
use hb_core::serial::serial_lt;
use hb_core::trace::Event;
use hb_core::{FixLevel, Params, Variant};
use hb_sim::{FirstViolation, MonitorVerdicts};
use hb_verify::monitor::monitor_defs;
use hb_verify::Requirement;

/// A compiled set of streaming R1–R3 checkers for one protocol cell.
///
/// Feed it events via [`observe`](Self::observe) (or attach it to a sink
/// as an [`EventTap`]), close the run with [`finish`](Self::finish), and
/// read [`verdicts`](Self::verdicts). Events must arrive with
/// non-decreasing timestamps per source; slight cross-node skew in merged
/// live streams is tolerated (the deadline clock only moves forward).
#[derive(Clone, Debug)]
pub struct MonitorSet {
    spec: CoordSpec,
    mirror: CoordState,
    n: usize,
    bound: u32,
    armed: Vec<bool>,
    deadline: Vec<u64>,
    /// Lazy lower bound on the earliest armed deadline. Timestamps below
    /// it skip the O(n) deadline scan entirely; arming keeps it a lower
    /// bound, and a scan that fires nothing recomputes it exactly.
    next_min: u64,
    coord_active: bool,
    resp_active: Vec<bool>,
    any_fault: bool,
    r2_premise: bool,
    r3_premise: bool,
    r1: Option<FirstViolation>,
    r2: Option<FirstViolation>,
    r3: Option<FirstViolation>,
}

impl MonitorSet {
    /// Compile the requirement monitors for one `(variant, params, fix)`
    /// cell with `n` participants.
    pub fn new(variant: Variant, params: Params, fix: FixLevel, n: usize) -> Self {
        let defs = monitor_defs(variant, params, fix);
        let r1_def = defs
            .iter()
            .find(|d| d.requirement == Requirement::R1)
            .expect("R1 def");
        let premise = |r: Requirement| {
            defs.iter()
                .find(|d| d.requirement == r)
                .map(|d| d.fault_premise)
                .unwrap_or(true)
        };
        let bound = r1_def.bound.expect("R1 is timed");
        let armed = vec![r1_def.arm_at_start; n];
        let deadline = vec![u64::from(bound) + 1; n];
        MonitorSet {
            spec: CoordSpec::new(variant, params, n, fix),
            mirror: CoordSpec::new(variant, params, n, fix).init_state(),
            n,
            bound,
            armed,
            deadline,
            next_min: u64::from(bound) + 1,
            coord_active: true,
            resp_active: vec![true; n],
            any_fault: false,
            r2_premise: premise(Requirement::R2),
            r3_premise: premise(Requirement::R3),
            r1: None,
            r2: None,
            r3: None,
        }
    }

    /// The R1 inactivation bound this set enforces.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Fire any armed R1 deadline `<= t` (the coordinator must still be
    /// active — deadlines are checked *before* the event at `t` applies,
    /// so a death event on the deadline tick does not suppress it).
    fn check_deadlines(&mut self, t: u64) {
        if !self.coord_active || self.r1.is_some() || t < self.next_min {
            return;
        }
        let due = (0..self.n)
            .filter(|&i| self.armed[i] && self.deadline[i] <= t)
            .min_by_key(|&i| (self.deadline[i], i));
        if let Some(i) = due {
            self.r1 = Some(FirstViolation {
                pid: i + 1,
                at: self.deadline[i],
                bound: self.bound,
            });
        } else {
            // Nothing fired: tighten the lower bound to the exact
            // earliest armed deadline so the fast path resumes.
            self.next_min = (0..self.n)
                .filter(|&i| self.armed[i])
                .map(|i| self.deadline[i])
                .min()
                .unwrap_or(u64::MAX);
        }
    }

    /// Feed one event into the checkers.
    pub fn observe(&mut self, e: &Event) {
        self.check_deadlines(e.at());
        match *e {
            Event::Deliver {
                at,
                from,
                to: 0,
                hb,
            } if (1..=self.n).contains(&from) => {
                let i = from - 1;
                let ignored = self.mirror.left[i] || serial_lt(hb.epoch, self.mirror.min_epoch[i]);
                if !hb.flag {
                    self.armed[i] = false;
                } else if !ignored {
                    self.armed[i] = true;
                    self.deadline[i] = at + u64::from(self.bound) + 1;
                    self.next_min = self.next_min.min(self.deadline[i]);
                }
                self.spec.on_heartbeat(&mut self.mirror, from, hb);
            }
            Event::Crash { pid: 0, .. } => {
                self.coord_active = false;
                self.any_fault = true;
            }
            Event::Crash { pid, .. } => {
                self.any_fault = true;
                self.resp_active[pid - 1] = false;
            }
            Event::NvInactivate { pid: 0, at } => {
                if self.coord_active && self.r3.is_none() && self.resp_active.iter().all(|&a| a) {
                    self.r3 = Some(FirstViolation {
                        pid: 0,
                        at,
                        bound: 0,
                    });
                }
                self.coord_active = false;
            }
            Event::NvInactivate { pid, at } => {
                if self.r2.is_none() {
                    self.r2 = Some(FirstViolation { pid, at, bound: 0 });
                }
                self.resp_active[pid - 1] = false;
            }
            Event::Revive { pid, .. } if pid >= 1 => self.resp_active[pid - 1] = true,
            // A membership view coordinated by someone other than pid 0
            // retires R1: the monitored coordinator no longer owes anyone
            // acceleration, the group has failed over (hb-member layer).
            Event::ViewChange { coordinator, .. } if coordinator != 0 => {
                self.coord_active = false;
            }
            Event::Lose { .. } => self.any_fault = true,
            _ => {}
        }
    }

    /// Close the run: fire any deadline up to and including `horizon`
    /// (the run's last tick). Idempotent; further calls with a larger
    /// horizon extend the silence check.
    pub fn finish(&mut self, horizon: u64) {
        self.check_deadlines(horizon);
    }

    /// The verdicts so far. The R2/R3 fault-free premise is evaluated
    /// over everything observed up to this point — call after
    /// [`finish`](Self::finish) for the run's final verdict, or poll
    /// mid-run for provisional verdicts.
    pub fn verdicts(&self) -> MonitorVerdicts {
        let gate = |premise: bool, v: Option<FirstViolation>| {
            if premise && self.any_fault {
                None
            } else {
                v
            }
        };
        MonitorVerdicts {
            r1: self.r1,
            r2: gate(self.r2_premise, self.r2),
            r3: gate(self.r3_premise, self.r3),
        }
    }

    /// Recover a `MonitorSet` that was moved into an owned tap
    /// (`EventSink::attach_owned_tap`) once the run is over — the
    /// single-threaded counterpart of [`shared`](Self::shared), with no
    /// mutex on the event path. Returns `None` if the tap holds some
    /// other type.
    pub fn from_tap(tap: OwnedTap) -> Option<MonitorSet> {
        tap.into_any().downcast::<MonitorSet>().ok().map(|b| *b)
    }

    /// A shareable, thread-safe monitor ready to be attached to event
    /// sinks via `EventSink::attach_tap` (both runtimes accept the same
    /// `SharedTap` type).
    pub fn shared(
        variant: Variant,
        params: Params,
        fix: FixLevel,
        n: usize,
    ) -> Arc<Mutex<MonitorSet>> {
        Arc::new(Mutex::new(MonitorSet::new(variant, params, fix, n)))
    }
}

impl EventTap for MonitorSet {
    fn on_event(&mut self, e: &Event) {
        self.observe(e);
    }
}

/// Replay a recorded event log (sorted by timestamp) through a fresh
/// [`MonitorSet`] and return the final verdicts.
pub fn replay(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    n: usize,
    events: &[Event],
    horizon: u64,
) -> MonitorVerdicts {
    let mut set = MonitorSet::new(variant, params, fix, n);
    for e in events {
        set.observe(e);
    }
    set.finish(horizon);
    set.verdicts()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Heartbeat;
    use hb_verify::monitor::reference_verdicts;

    fn params() -> Params {
        Params::new(2, 8).unwrap()
    }

    fn beat(at: u64, from: usize) -> Event {
        Event::Deliver {
            at,
            from,
            to: 0,
            hb: Heartbeat::plain(),
        }
    }

    #[test]
    fn silence_fires_at_the_deadline_tick() {
        let mut mon = MonitorSet::new(Variant::Binary, params(), FixLevel::Original, 1);
        mon.observe(&beat(5, 1));
        mon.finish(200);
        let v = mon.verdicts();
        let r1 = v.r1.expect("silence past the bound");
        assert_eq!((r1.pid, r1.at, r1.bound), (1, 5 + 16 + 1, 16));
    }

    #[test]
    fn a_rescue_beat_on_the_deadline_tick_is_too_late() {
        // Tick-before-delivery: the deadline fires even though a beat
        // arrives at exactly deadline time.
        let v = replay(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5, 1), beat(22, 1)],
            200,
        );
        assert_eq!(v.r1.expect("deadline tick").at, 22);
        // One tick earlier the beat rescues (until the next deadline).
        let v = replay(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5, 1), beat(21, 1)],
            21,
        );
        assert!(v.clean());
    }

    #[test]
    fn a_failover_view_change_retires_r1() {
        // hb-member failover stream: the coordinator crashes, pid 1 takes
        // over and installs view 1, and the other participants go silent
        // toward pid 0 forever after. R1 must not fire — nobody owes the
        // dead coordinator beats once the group has failed over.
        let v = replay(
            Variant::Dynamic,
            params(),
            FixLevel::Full,
            3,
            &[
                beat(5, 1),
                beat(5, 2),
                beat(5, 3),
                Event::ViewChange {
                    at: 20,
                    pid: 1,
                    view_no: 1,
                    coordinator: 1,
                },
            ],
            2_000,
        );
        assert!(v.clean(), "{v:?}");
        // A view still coordinated by pid 0 keeps the obligation alive.
        let v = replay(
            Variant::Dynamic,
            params(),
            FixLevel::Full,
            3,
            &[
                beat(5, 1),
                beat(5, 2),
                beat(5, 3),
                Event::ViewChange {
                    at: 20,
                    pid: 0,
                    view_no: 1,
                    coordinator: 0,
                },
            ],
            2_000,
        );
        assert!(v.r1.is_some(), "pid-0 view keeps R1 armed: {v:?}");
    }

    #[test]
    fn coordinator_death_on_the_deadline_tick_does_not_suppress() {
        // The deadline check runs before the death event is processed —
        // the model reaches the error on the tick-first interleaving.
        let v = replay(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5, 1), Event::NvInactivate { at: 22, pid: 0 }],
            200,
        );
        assert_eq!(v.r1.expect("tick-first").at, 22);
        // Death strictly before the deadline stops the clock.
        let v = replay(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5, 1), Event::NvInactivate { at: 21, pid: 0 }],
            200,
        );
        assert!(v.r1.is_none());
    }

    #[test]
    fn corrected_bound_cells_get_the_wider_deadline() {
        let mon = MonitorSet::new(Variant::Binary, params(), FixLevel::Full, 1);
        assert_eq!(mon.bound(), params().p0_bound_corrected(Variant::Binary));
        let naive = MonitorSet::new(Variant::Binary, params(), FixLevel::Original, 1);
        assert_eq!(naive.bound(), params().p0_bound_claimed());
    }

    #[test]
    fn join_variants_arm_on_the_first_admitted_beat() {
        // No beats at all: an Expanding participant never arms, so no R1.
        let v = replay(Variant::Expanding, params(), FixLevel::Full, 2, &[], 500);
        assert!(v.clean());
        // After its first beat the watchdog is live.
        let v = replay(
            Variant::Expanding,
            params(),
            FixLevel::Full,
            2,
            &[beat(10, 2)],
            500,
        );
        assert_eq!(v.r1.expect("armed by the beat").pid, 2);
    }

    #[test]
    fn leave_beats_disarm_the_watchdog() {
        let leave = Event::Deliver {
            at: 10, // before the deadline the beat at 5 armed
            from: 1,
            to: 0,
            hb: Heartbeat::leave(),
        };
        let v = replay(
            Variant::Dynamic,
            params(),
            FixLevel::Original,
            1,
            &[beat(5, 1), leave],
            500,
        );
        assert!(v.r1.is_none(), "left participants are not watched");
    }

    #[test]
    fn r2_r3_premise_is_trace_global() {
        let nv = Event::NvInactivate { at: 50, pid: 1 };
        let v = replay(Variant::Binary, params(), FixLevel::Original, 1, &[nv], 50);
        assert_eq!(v.r2.expect("fault-free inactivation").pid, 1);
        // A loss *after* the inactivation still voids the premise.
        let lose = Event::Lose {
            at: 60,
            from: 0,
            to: 1,
        };
        let v = replay(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[nv, lose],
            60,
        );
        assert!(v.r2.is_none());
    }

    #[test]
    fn streaming_and_reference_agree_on_a_mixed_trace() {
        let events = [
            beat(3, 1),
            beat(4, 2),
            Event::Lose {
                at: 9,
                from: 1,
                to: 0,
            },
            beat(11, 1),
            Event::Crash { at: 15, pid: 2 },
            Event::NvInactivate { at: 40, pid: 2 },
            Event::NvInactivate { at: 55, pid: 0 },
        ];
        for fix in [FixLevel::Original, FixLevel::Full] {
            let s = replay(Variant::Static, params(), fix, 2, &events, 120);
            let r = reference_verdicts(Variant::Static, params(), fix, 2, &events, 120);
            assert_eq!(s.r1.map(|v| (v.pid, v.at)), r.r1.map(|v| (v.pid, v.at)));
            assert_eq!(s.r2.map(|v| (v.pid, v.at)), r.r2.map(|v| (v.pid, v.at)));
            assert_eq!(s.r3.map(|v| (v.pid, v.at)), r.r3.map(|v| (v.pid, v.at)));
        }
    }

    #[test]
    fn stale_beats_do_not_extend_the_deadline() {
        // Fresh epoch-1 beat arms the watchdog; an epoch-0 leftover must
        // not re-arm it, even though a naive coordinator admits it.
        let fresh = Event::Deliver {
            at: 5,
            from: 1,
            to: 0,
            hb: Heartbeat::plain().with_epoch(1),
        };
        let stale = Event::Deliver {
            at: 9,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        };
        for fix in [FixLevel::Original, FixLevel::Full] {
            let bound = u64::from(MonitorSet::new(Variant::Binary, params(), fix, 1).bound());
            let v = replay(Variant::Binary, params(), fix, 1, &[fresh, stale], 200);
            let at = v.r1.expect("stale beat is no rescue").at;
            assert_eq!(at, 5 + bound + 1, "{fix:?}");
        }
    }
}
