//! The tick-driven simulation world for the accelerated protocols.
//!
//! The world advances in unit ticks, mirroring the digital-clock semantics
//! of the verification models: within a tick, all due events (message
//! deliveries, the coordinator timeout, participant watchdogs and join
//! sends) are executed — in *random* order for the original protocols, and
//! deliveries-first under the §6.1 receive-priority fix — and then every
//! clock advances by one.

use hb_core::coordinator::{CoordReaction, CoordSpec, CoordState, TimeoutOutcome};
use hb_core::events::{EventSink, OwnedTap, SharedTap};
use hb_core::responder::{LeaveDecision, RespSpec, RespState};
use hb_core::trace::Event;
use hb_core::{FixLevel, Params, Pid, Status, Variant};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::channel::{Channel, FaultHook, InFlight, LossModel, Time};
use crate::metrics::Report;

/// Static configuration of a simulation world.
#[derive(Clone, Copy, Debug)]
pub struct WorldConfig {
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level (affects participant bounds and event ordering).
    pub fix: FixLevel,
    /// Number of participants.
    pub n: usize,
    /// Per-message loss probability.
    pub loss_prob: f64,
    /// Record a full [`EventLog`] (costs memory on long runs).
    pub log_events: bool,
}

/// A running simulation.
#[derive(Debug)]
pub struct World {
    cfg: WorldConfig,
    coord_spec: CoordSpec,
    resp_spec: RespSpec,
    coord: CoordState,
    /// `None` until the participant has started (join variants may start
    /// late).
    resps: Vec<Option<RespState>>,
    start_at: Vec<Time>,
    leave_after: Vec<Option<Time>>,
    scheduled_crashes: Vec<(Pid, Time)>,
    scheduled_revives: Vec<(Pid, Time)>,
    /// Revived participants still re-converging: `(pid, epoch,
    /// revived_at, detected_at)`. Detection = the coordinator registered
    /// the fresh epoch; the entry is retired once the revived
    /// participant is an active, joined member again (stability).
    pending_reconv: Vec<(Pid, u8, Time, Option<Time>)>,
    reconv_detects: Vec<(Pid, Time)>,
    reconv_stables: Vec<(Pid, Time)>,
    channel: Channel,
    fault_hook: Option<Box<dyn FaultHook>>,
    rng: StdRng,
    now: Time,
    crashes: Vec<(Pid, Time)>,
    nv_inactivations: Vec<(Pid, Time)>,
    leaves: Vec<(Pid, Time)>,
    revives: Vec<(Pid, Time)>,
    all_inactive_at: Option<Time>,
    sink: EventSink,
    /// Scratch storage for [`gather_due`](Self::gather_due), reused
    /// across ticks so the hot loop never allocates.
    due_scratch: Vec<Due>,
    /// Scratch for draining the channel into, reused the same way.
    flight_scratch: Vec<InFlight>,
}

/// A due event within the current tick.
#[derive(Clone, Copy, Debug)]
enum Due {
    Deliver(InFlight),
    CoordTimeout,
    Watchdog(Pid),
    JoinSend(Pid),
}

impl World {
    /// Create a world; `seed` makes the run reproducible.
    pub fn new(cfg: WorldConfig, seed: u64) -> Self {
        let coord_spec = CoordSpec::new(cfg.variant, cfg.params, cfg.n, cfg.fix);
        let resp_spec = RespSpec::new(cfg.variant, cfg.params, cfg.fix);
        World {
            coord: coord_spec.init_state(),
            resps: vec![None; cfg.n],
            start_at: vec![0; cfg.n],
            leave_after: vec![None; cfg.n],
            scheduled_crashes: Vec::new(),
            scheduled_revives: Vec::new(),
            pending_reconv: Vec::new(),
            reconv_detects: Vec::new(),
            reconv_stables: Vec::new(),
            channel: Channel::new(cfg.loss_prob),
            fault_hook: None,
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            crashes: Vec::new(),
            nv_inactivations: Vec::new(),
            leaves: Vec::new(),
            revives: Vec::new(),
            all_inactive_at: None,
            sink: if cfg.log_events {
                EventSink::memory()
            } else {
                EventSink::disabled()
            },
            due_scratch: Vec::new(),
            flight_scratch: Vec::new(),
            cfg,
            coord_spec,
            resp_spec,
        }
    }

    /// Schedule a crash of `pid` at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `pid > n`.
    pub fn schedule_crash(&mut self, pid: Pid, t: Time) {
        assert!(pid <= self.cfg.n, "pid {pid} out of range");
        self.scheduled_crashes.push((pid, t));
    }

    /// Delay participant `pid`'s start until time `t` (join variants).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is 0 or out of range, or the run has begun.
    pub fn schedule_start(&mut self, pid: Pid, t: Time) {
        assert!((1..=self.cfg.n).contains(&pid));
        assert_eq!(self.now, 0, "starts must be scheduled before running");
        self.start_at[pid - 1] = t;
    }

    /// Replace the channel's loss model (e.g. a Gilbert–Elliott burst
    /// chain). Resets nothing else; call before running.
    pub fn set_loss_model(&mut self, model: LossModel) {
        self.channel = Channel::with_model(model);
    }

    /// Drop every message sent in `[from, to)` — a total channel outage.
    pub fn set_outage(&mut self, from: Time, to: Time) {
        self.channel.set_outage(from, to);
    }

    /// Install an external fault engine that decides the fate of every
    /// message (drop / duplicate / extra delay). The hook **replaces**
    /// the channel's own loss model as the drop authority; call before
    /// running.
    pub fn set_fault_hook(&mut self, hook: Box<dyn FaultHook>) {
        self.fault_hook = Some(hook);
    }

    /// Make participant `pid` leave at the first beat it answers at or
    /// after time `t` (dynamic variant).
    pub fn schedule_leave(&mut self, pid: Pid, t: Time) {
        assert!((1..=self.cfg.n).contains(&pid));
        self.leave_after[pid - 1] = Some(t);
    }

    /// Revive participant `pid` at time `t`: if it is crashed when `t`
    /// arrives, it restarts with a fresh state, a bumped epoch, and
    /// (for join variants) re-enters the join phase. A revive landing on
    /// a non-crashed participant is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is 0 or out of range — the coordinator cannot be
    /// revived (the §7 protocol restarts participants only).
    pub fn schedule_revive(&mut self, pid: Pid, t: Time) {
        assert!(
            (1..=self.cfg.n).contains(&pid),
            "pid {pid} out of revivable range"
        );
        self.scheduled_revives.push((pid, t));
    }

    /// Whether a scheduled revive has not yet fired.
    fn revives_pending(&self) -> bool {
        self.scheduled_revives.iter().any(|&(_, t)| t >= self.now)
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The coordinator's current status.
    pub fn coord_status(&self) -> Status {
        self.coord.status
    }

    /// The status of participant `pid` (`None` if not yet started).
    pub fn resp_status(&self, pid: Pid) -> Option<Status> {
        self.resps[pid - 1].as_ref().map(|r| r.status)
    }

    /// Whether every relevant process is inactive: the coordinator plus
    /// every started participant that has not left.
    pub fn all_inactive(&self) -> bool {
        self.coord.status.is_inactive()
            && self
                .resps
                .iter()
                .flatten()
                .all(|r| r.status.is_inactive() || r.left)
    }

    /// Attach a live [`EventTap`](hb_core::events::EventTap) — e.g. a
    /// streaming requirement monitor — that sees every event the world
    /// emits, whether or not the in-memory log is enabled.
    pub fn attach_tap(&mut self, tap: SharedTap) {
        self.sink.attach_tap(tap);
    }

    /// Attach a tap the world's sink owns exclusively — lock-free
    /// dispatch on this single-threaded path. Recover it (e.g. to read
    /// monitor verdicts) with [`take_owned_taps`](Self::take_owned_taps)
    /// before [`into_report`](Self::into_report).
    pub fn attach_owned_tap(&mut self, tap: OwnedTap) {
        self.sink.attach_owned_tap(tap);
    }

    /// Detach and return every owned tap, in attachment order.
    pub fn take_owned_taps(&mut self) -> Vec<OwnedTap> {
        self.sink.take_owned_taps()
    }

    fn log_event(&mut self, e: Event) {
        self.sink.emit(&e);
    }

    fn send(&mut self, src: Pid, dst: Pid, hb: hb_core::Heartbeat, budget: u32) {
        let now = self.now;
        let ok = if let Some(hook) = &mut self.fault_hook {
            let fate = hook.fate(now, src, dst);
            self.channel
                .send_shaped(&mut self.rng, now, (src, dst), hb, budget, fate)
        } else {
            self.channel.send(&mut self.rng, now, src, dst, hb, budget)
        };
        self.log_event(Event::Send {
            at: now,
            from: src,
            to: dst,
            hb,
        });
        if !ok {
            self.log_event(Event::Lose {
                at: now,
                from: src,
                to: dst,
            });
        }
    }

    /// Collect everything due this tick into `due_scratch` (cleared
    /// first). The element order fed to the shuffle — deliveries in
    /// channel-extraction order, then the coordinator timeout, then
    /// watchdogs/join-sends in pid order — is exactly the order the old
    /// allocating collector produced, so seeded runs are byte-identical.
    fn gather_due(&mut self) {
        self.due_scratch.clear();
        self.flight_scratch.clear();
        self.channel.due_into(self.now, &mut self.flight_scratch);
        self.due_scratch
            .extend(self.flight_scratch.drain(..).map(Due::Deliver));
        if self.cfg.fix.receive_priority() && !self.due_scratch.is_empty() {
            // §6.1 receive priority: as long as any delivery is due, only
            // deliveries execute — timeouts wait for the next gather round
            // (which also picks up zero-delay replies produced here).
            self.due_scratch.shuffle(&mut self.rng);
            return;
        }
        if self.coord_spec.timeout_due(&self.coord) {
            self.due_scratch.push(Due::CoordTimeout);
        }
        for (i, r) in self.resps.iter().enumerate() {
            if let Some(r) = r {
                if self.resp_spec.watchdog_due(r) {
                    self.due_scratch.push(Due::Watchdog(i + 1));
                }
                if self.resp_spec.join_send_due(r) {
                    self.due_scratch.push(Due::JoinSend(i + 1));
                }
            }
        }
        self.due_scratch.shuffle(&mut self.rng);
    }

    /// Execute one gathered event, unless an earlier event of the same
    /// batch already invalidated it (e.g. a delivery reset the watchdog it
    /// raced against) — exactly the tie-resolution semantics of the
    /// verification models.
    fn execute(&mut self, d: Due) {
        match d {
            Due::Deliver(m) => {
                self.log_event(Event::Deliver {
                    at: self.now,
                    from: m.src,
                    to: m.dst,
                    hb: m.hb,
                });
                self.channel.delivered += 1;
                if m.dst == 0 {
                    match self.coord_spec.on_heartbeat(&mut self.coord, m.src, m.hb) {
                        CoordReaction::None => {}
                        CoordReaction::LeaveAck(pid, ack) => {
                            let budget = self.cfg.params.tmin();
                            self.send(0, pid, ack, budget);
                        }
                    }
                } else {
                    let idx = m.dst - 1;
                    let mut reply_to_send = None;
                    let mut newly_left = false;
                    if let Some(r) = &mut self.resps[idx] {
                        let wants_leave = self.leave_after[idx]
                            .map(|t| self.now >= t)
                            .unwrap_or(false);
                        let decision = if wants_leave {
                            LeaveDecision::Leave
                        } else {
                            LeaveDecision::Stay
                        };
                        let was_left = r.left;
                        reply_to_send = self.resp_spec.on_beat(r, m.hb, decision);
                        newly_left = r.left && !was_left;
                    }
                    // messages to not-yet-started participants vanish
                    if newly_left {
                        self.leaves.push((m.dst, self.now));
                        self.log_event(Event::Leave {
                            at: self.now,
                            pid: m.dst,
                        });
                    }
                    if let Some(reply) = reply_to_send {
                        self.send(m.dst, 0, reply, m.budget_left);
                    }
                }
            }
            Due::CoordTimeout => {
                if !self.coord_spec.timeout_due(&self.coord) {
                    return; // stale
                }
                self.log_event(Event::Timeout {
                    at: self.now,
                    pid: 0,
                });
                match self.coord_spec.on_timeout(&mut self.coord) {
                    TimeoutOutcome::Inactivated => {
                        self.nv_inactivations.push((0, self.now));
                        self.log_event(Event::NvInactivate {
                            at: self.now,
                            pid: 0,
                        });
                    }
                    TimeoutOutcome::Beat => {
                        let budget = self.cfg.params.tmin();
                        for i in 0..self.cfg.n {
                            if !self.coord.jnd[i] {
                                continue;
                            }
                            let hb = self.coord_spec.beat_for(&self.coord, i + 1);
                            self.send(0, i + 1, hb, budget);
                        }
                    }
                }
            }
            Due::Watchdog(pid) => {
                if let Some(r) = &mut self.resps[pid - 1] {
                    if !self.resp_spec.watchdog_due(r) {
                        return; // stale: a delivery won the race
                    }
                    self.resp_spec.on_watchdog(r);
                    self.nv_inactivations.push((pid, self.now));
                    self.log_event(Event::NvInactivate { at: self.now, pid });
                }
            }
            Due::JoinSend(pid) => {
                let hb = {
                    let r = self.resps[pid - 1].as_mut().expect("started");
                    if !self.resp_spec.join_send_due(r) {
                        return; // stale: the join was confirmed meanwhile
                    }
                    self.resp_spec.on_join_send(r)
                };
                let budget = self.cfg.params.tmin();
                self.send(pid, 0, hb, budget);
            }
        }
    }

    /// Advance the world by one tick.
    pub fn step(&mut self) {
        // Injected faults and starts land at the beginning of the tick.
        let mut crashes = std::mem::take(&mut self.scheduled_crashes);
        crashes.retain(|&(pid, t)| {
            if t != self.now {
                return true;
            }
            let crashed = if pid == 0 {
                let was = self.coord.status.is_active();
                self.coord_spec.crash(&mut self.coord);
                was
            } else if let Some(r) = &mut self.resps[pid - 1] {
                let was = r.status.is_active();
                self.resp_spec.crash(r);
                was
            } else {
                false
            };
            if crashed {
                self.crashes.push((pid, self.now));
                self.log_event(Event::Crash { at: self.now, pid });
            }
            false
        });
        self.scheduled_crashes = crashes;
        let mut revives = std::mem::take(&mut self.scheduled_revives);
        revives.retain(|&(pid, t)| {
            if t != self.now {
                return true;
            }
            if let Some(r) = &self.resps[pid - 1] {
                if r.status == Status::Crashed {
                    let fresh = self.resp_spec.revive_state(r.epoch);
                    let epoch = fresh.epoch;
                    self.resps[pid - 1] = Some(fresh);
                    self.revives.push((pid, self.now));
                    self.pending_reconv.push((pid, epoch, self.now, None));
                    self.all_inactive_at = None;
                    self.log_event(Event::Revive { at: self.now, pid });
                }
            }
            false
        });
        self.scheduled_revives = revives;
        for i in 0..self.cfg.n {
            if self.resps[i].is_none() && self.start_at[i] == self.now {
                self.resps[i] = Some(self.resp_spec.init_state());
            }
        }

        // Drain all events due within this tick (replies may become due in
        // the same tick).
        loop {
            self.gather_due();
            if self.due_scratch.is_empty() {
                break;
            }
            // Take the batch out so `execute` may borrow the world; the
            // swap hands the allocation straight back for the next round.
            let batch = std::mem::take(&mut self.due_scratch);
            for &d in &batch {
                self.execute(d);
            }
            self.due_scratch = batch;
        }

        // Two-sided re-convergence. Detection: the coordinator's epoch
        // bar has caught up with the fresh incarnation. Stability: on
        // top of that, the revived participant is an active, joined
        // member of the round again (for join variants that is the
        // completed §5 handshake; variants without a join phase are
        // joined from the start, so stability coincides with detection).
        let now = self.now;
        let mut i = 0;
        while i < self.pending_reconv.len() {
            let (pid, epoch, t0, detected) = self.pending_reconv[i];
            let mut detected = detected;
            if detected.is_none()
                && hb_core::serial::serial_ge(self.coord.min_epoch[pid - 1], epoch)
            {
                detected = Some(now);
                self.reconv_detects.push((pid, now - t0));
            }
            let stable = detected.is_some()
                && self.resps[pid - 1]
                    .as_ref()
                    .is_some_and(|r| r.status.is_active() && r.joined && r.epoch == epoch);
            if stable {
                self.reconv_stables.push((pid, now - t0));
                self.pending_reconv.remove(i);
            } else {
                self.pending_reconv[i].3 = detected;
                i += 1;
            }
        }

        if self.all_inactive_at.is_none() && self.all_inactive() {
            self.all_inactive_at = Some(self.now);
        }

        // Time passes.
        self.coord_spec.tick(&mut self.coord);
        for r in self.resps.iter_mut().flatten() {
            self.resp_spec.tick(r);
        }
        self.now += 1;
    }

    /// Run until time `t` or until every process is inactive (a pending
    /// revive keeps the run alive — the crashed node is coming back).
    pub fn run_until(&mut self, t: Time) {
        while self.now < t && (!self.all_inactive() || self.revives_pending()) {
            self.step();
        }
    }

    /// Finish the run and produce the metrics report.
    pub fn into_report(mut self) -> Report {
        let log = self.sink.take_log();
        let first_crash = self.crashes.iter().map(|&(_, t)| t).min();
        let detection_delay = match (first_crash, self.all_inactive_at) {
            (Some(c), Some(d)) => Some(d.saturating_sub(c)),
            _ => None,
        };
        let false_inactivations = if self.crashes.is_empty() {
            self.nv_inactivations.len() as u32
        } else {
            0
        };
        let mut final_status = vec![self.coord.status];
        final_status.extend(
            self.resps
                .iter()
                .map(|r| r.as_ref().map(|r| r.status).unwrap_or(Status::Active)),
        );
        Report {
            duration: self.now,
            messages_sent: self.channel.sent,
            messages_delivered: self.channel.delivered,
            messages_lost: self.channel.lost,
            crashes: self.crashes,
            nv_inactivations: self.nv_inactivations,
            leaves: self.leaves,
            revives: self.revives,
            reconv_detect: self.reconv_detects.iter().map(|&(_, d)| d).max(),
            reconv_stable: self.reconv_stables.iter().map(|&(_, d)| d).max(),
            stale_beats_admitted: self.coord.stale_admitted,
            stale_beats_filtered: self.coord.stale_filtered,
            detection_delay,
            false_inactivations,
            final_status,
            log,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(variant: Variant, tmin: u32, tmax: u32) -> WorldConfig {
        WorldConfig {
            variant,
            params: Params::new(tmin, tmax).unwrap(),
            fix: FixLevel::Original,
            n: 1,
            loss_prob: 0.0,
            log_events: false,
        }
    }

    #[test]
    fn lossless_steady_state_never_inactivates() {
        for seed in 0..5 {
            let mut w = World::new(cfg(Variant::Binary, 2, 8), seed);
            w.run_until(2_000);
            let r = w.into_report();
            assert_eq!(r.false_inactivations, 0, "seed {seed}");
            assert!(r.nv_inactivations.is_empty());
        }
    }

    #[test]
    fn steady_state_message_rate_is_two_per_tmax() {
        let mut w = World::new(cfg(Variant::Binary, 2, 10), 1);
        w.run_until(10_000);
        let r = w.into_report();
        // one beat + one reply per tmax round
        let expected = 2.0 / 10.0;
        assert!(
            (r.message_rate() - expected).abs() < 0.02,
            "rate {}",
            r.message_rate()
        );
    }

    #[test]
    fn revived_participant_re_registers_within_the_corrected_bound() {
        for seed in 0..10 {
            let mut w = World::new(
                WorldConfig {
                    fix: FixLevel::Full,
                    ..cfg(Variant::Binary, 2, 8)
                },
                seed,
            );
            w.schedule_crash(1, 100);
            w.schedule_revive(1, 104);
            w.run_until(400);
            assert_eq!(w.resp_status(1), Some(Status::Active), "seed {seed}");
            let r = w.into_report();
            assert_eq!(r.crashes, vec![(1, 100)], "seed {seed}");
            assert_eq!(r.revives, vec![(1, 104)], "seed {seed}");
            let bound = u64::from(
                Params::new(2, 8)
                    .unwrap()
                    .p0_bound_corrected(Variant::Binary),
            );
            let rc = r.reconv_detect.expect("must re-register");
            assert!(rc <= bound, "seed {seed}: detection {rc} > {bound}");
            // Binary has no join phase, so the revived participant is
            // joined the moment it is back: stability rides detection.
            let rs = r.reconv_stable.expect("must stabilise");
            assert!(rs >= rc, "seed {seed}: stable {rs} before detect {rc}");
            assert!(rs <= bound, "seed {seed}: stability {rs} > {bound}");
            // Nothing stale in a loss-free, in-order run.
            assert_eq!(r.stale_beats_admitted, 0, "seed {seed}");
            assert_eq!(r.stale_beats_filtered, 0, "seed {seed}");
        }
    }

    #[test]
    fn revive_of_a_live_participant_is_a_no_op() {
        let mut w = World::new(cfg(Variant::Binary, 2, 8), 7);
        w.schedule_revive(1, 100);
        w.run_until(1_000);
        let r = w.into_report();
        assert!(r.revives.is_empty(), "no crash, so nothing to revive");
        assert!(r.reconv_detect.is_none());
        assert!(r.reconv_stable.is_none());
        assert_eq!(r.false_inactivations, 0);
    }

    #[test]
    fn participant_crash_is_detected_within_bound() {
        for seed in 0..10 {
            let mut w = World::new(cfg(Variant::Binary, 2, 8), seed);
            w.schedule_crash(1, 100);
            w.run_until(100_000);
            let r = w.into_report();
            let delay = r.detection_delay.expect("must detect");
            // p0 detects within its corrected bound; p1 (crashed) counts as
            // inactive immediately; add tmax slack for the round phase.
            let bound = u64::from(
                Params::new(2, 8)
                    .unwrap()
                    .p0_bound_corrected(Variant::Binary),
            );
            assert!(delay <= bound, "seed {seed}: delay {delay} > {bound}");
        }
    }

    #[test]
    fn coordinator_crash_inactivates_participant() {
        for seed in 0..10 {
            let mut w = World::new(cfg(Variant::Binary, 2, 8), seed);
            w.schedule_crash(0, 50);
            w.run_until(100_000);
            let r = w.into_report();
            assert!(r.all_inactive(), "seed {seed}");
            let t = r.nv_time_of(1).expect("p1 inactivates");
            // within the original 3*tmax - tmin of the last beat received,
            // so within 50 + (3*8-2) + slack overall
            assert!(t <= 50 + 22 + 10, "seed {seed}: t={t}");
        }
    }

    #[test]
    fn heavy_loss_causes_false_inactivation() {
        let mut any = 0;
        for seed in 0..10 {
            let mut w = World::new(
                WorldConfig {
                    loss_prob: 0.9,
                    ..cfg(Variant::Binary, 2, 8)
                },
                seed,
            );
            w.run_until(5_000);
            let r = w.into_report();
            any += r.false_inactivations;
        }
        assert!(any > 0, "90% loss must eventually bottom out the halving");
    }

    #[test]
    fn expanding_participant_joins_late_and_exchanges_beats() {
        let mut w = World::new(cfg(Variant::Expanding, 2, 8), 3);
        w.schedule_start(1, 40);
        w.run_until(400);
        let r = w.into_report();
        assert!(r.nv_inactivations.is_empty());
        assert!(r.messages_sent > 40);
        assert_eq!(r.final_status[1], Status::Active);
    }

    #[test]
    fn dynamic_leave_is_graceful() {
        let mut w = World::new(cfg(Variant::Dynamic, 2, 8), 4);
        w.schedule_leave(1, 100);
        w.run_until(2_000);
        let r = w.into_report();
        assert_eq!(r.leaves.len(), 1);
        assert_eq!(r.leaves[0].0, 1);
        assert!(r.leaves[0].1 >= 100);
        // Leaving disturbs nobody: no inactivations anywhere.
        assert!(r.nv_inactivations.is_empty());
        assert_eq!(r.final_status[0], Status::Active);
    }

    #[test]
    fn event_log_records_when_enabled() {
        let mut w = World::new(
            WorldConfig {
                log_events: true,
                ..cfg(Variant::Binary, 2, 8)
            },
            5,
        );
        w.run_until(50);
        let r = w.into_report();
        assert!(!r.log.is_empty());
        assert!(r.log.to_string().contains("timeout at p[0]"));
    }

    #[test]
    fn seeds_are_reproducible() {
        let run = |seed| {
            let mut w = World::new(
                WorldConfig {
                    loss_prob: 0.2,
                    ..cfg(Variant::Binary, 2, 8)
                },
                seed,
            );
            w.run_until(1_000);
            let r = w.into_report();
            (r.messages_sent, r.messages_lost, r.nv_inactivations.len())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn fault_hook_owns_the_drop_decision() {
        // A one-way adversary: replies (1 -> 0) vanish, beats (0 -> 1)
        // pass. The coordinator starves and inactivates; the participant
        // follows once the beats stop. No crash was injected, so these
        // count as false inactivations.
        #[derive(Debug)]
        struct EatReplies;
        impl crate::channel::FaultHook for EatReplies {
            fn fate(&mut self, _now: Time, src: Pid, _dst: Pid) -> crate::channel::SendFate {
                if src == 0 {
                    crate::channel::SendFate::clean()
                } else {
                    crate::channel::SendFate::Drop
                }
            }
        }
        let mut w = World::new(cfg(Variant::Binary, 2, 8), 7);
        w.set_fault_hook(Box::new(EatReplies));
        w.run_until(10_000);
        let r = w.into_report();
        assert!(r.all_inactive(), "one-way starvation must bring it down");
        assert!(r.false_inactivations >= 2);
        assert!(r.messages_lost > 0);
    }

    #[test]
    fn static_world_with_three_participants() {
        let mut w = World::new(
            WorldConfig {
                n: 3,
                ..cfg(Variant::Static, 2, 8)
            },
            6,
        );
        w.schedule_crash(2, 100);
        w.run_until(100_000);
        let r = w.into_report();
        // any crash brings the whole network down (GM98's goal)
        assert!(r.all_inactive());
        assert!(r.detection_delay.is_some());
    }
}
