//! `hb-sim` — a discrete-event network simulator for heartbeat protocols.
//!
//! The simulator drives the *same* `hb-core` state machines as the
//! verification models, but with randomized channel delays, Bernoulli
//! message loss, scripted crash/join/leave injection and metrics
//! collection — the substrate for regenerating the performance claims of
//! the original ICDCS '98 paper:
//!
//! * **overhead** — steady-state message rate ≈ `2/tmax`, independent of
//!   the detection parameters ([`metrics::Report::message_rate`]);
//! * **detection delay** — every crash is detected within the (corrected)
//!   analytical bounds;
//! * **reliability** — a false inactivation needs
//!   `⌊log₂(tmax/tmin)⌋ + 1` *consecutive* losses, so its probability
//!   falls off geometrically in the loss rate, unlike the naive
//!   fixed-period heartbeat ([`baseline`]).
//!
//! Time is discrete (`u64` ticks, same unit as
//! [`Params`](hb_core::Params)); each message is assigned a random delay
//! honouring the protocol's round-trip bound `tmin`; simultaneous events
//! within a tick are processed in random order for the original protocols
//! and deliveries-first under the §6.1 receive-priority fix — mirroring
//! the verification semantics exactly.
//!
//! # Example
//!
//! ```
//! use hb_core::{Params, Variant};
//! use hb_sim::{Scenario, run_scenario};
//!
//! let params = Params::new(2, 8)?;
//! // A participant crashes at t=100; detection must meet the bound.
//! let sc = Scenario::crash_at(Variant::Binary, params, 1, 100);
//! let report = run_scenario(&sc, 7);
//! let delay = report.detection_delay.expect("crash must be detected");
//! assert!(delay <= u64::from(params.p0_bound_corrected(Variant::Binary)));
//! # Ok::<(), hb_core::params::ParamsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod channel;
pub mod metrics;
pub mod scenario;
pub mod schema;
pub mod world;

pub use baseline::{NaiveConfig, NaiveWorld};
pub use channel::{FaultHook, LossModel, SendFate};
pub use metrics::Report;
pub use scenario::{run_scenario, Scenario};
pub use schema::{FirstViolation, MonitorVerdicts, RunSummary};
pub use world::World;
