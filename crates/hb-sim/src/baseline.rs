//! The naive fixed-period heartbeat baseline.
//!
//! This is the comparator the accelerated protocols are measured against:
//! the coordinator sends a beat every `period` and declares a participant
//! dead after `tolerance` consecutive silent periods; participants declare
//! the coordinator dead after `(tolerance + 1) · period + delay_bound`
//! without a beat.
//!
//! The fundamental trade-off the accelerated protocols escape: for the
//! naive protocol, overhead (`2/period`), worst-case detection delay
//! (`≈ (tolerance + 1) · period`) and loss tolerance (`tolerance`
//! consecutive losses) are all coupled through the same two knobs — you
//! cannot have low overhead *and* fast detection *and* high loss
//! tolerance. The accelerated protocol sends at `2/tmax` in steady state,
//! detects within `3·tmax − tmin` and tolerates
//! `⌊log₂(tmax/tmin)⌋` losses, because it speeds up *only while
//! suspicious*.

use hb_core::{Heartbeat, Pid, Status};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::channel::{Channel, Time};
use crate::metrics::Report;

/// Configuration of the naive heartbeat protocol.
#[derive(Clone, Copy, Debug)]
pub struct NaiveConfig {
    /// Beat period (the only rate knob).
    pub period: u32,
    /// Consecutive silent periods before the coordinator declares a
    /// participant dead.
    pub tolerance: u32,
    /// One-way channel delay bound (counterpart of the accelerated
    /// protocols' `tmin` round-trip bound).
    pub delay_bound: u32,
    /// Number of participants.
    pub n: usize,
    /// Per-message loss probability.
    pub loss_prob: f64,
}

impl NaiveConfig {
    /// Worst-case detection delay of a participant crash at the
    /// coordinator.
    pub fn detection_bound(&self) -> u32 {
        (self.tolerance + 1) * self.period + 2 * self.delay_bound
    }

    /// Steady-state message rate (beat + reply per participant per
    /// period).
    pub fn message_rate(&self) -> f64 {
        2.0 * self.n as f64 / f64::from(self.period)
    }

    /// The participant-side watchdog.
    fn responder_bound(&self) -> u32 {
        (self.tolerance + 1) * self.period + 2 * self.delay_bound
    }
}

/// A running naive-heartbeat simulation (same channel and metric plumbing
/// as [`World`](crate::world::World)).
#[derive(Debug)]
pub struct NaiveWorld {
    cfg: NaiveConfig,
    coord_status: Status,
    /// Consecutive silent periods per participant.
    silent: Vec<u32>,
    /// Replies seen in the current period.
    replied: Vec<bool>,
    resp_status: Vec<Status>,
    /// Per-participant time since last coordinator beat.
    waiting: Vec<u32>,
    elapsed: u32,
    channel: Channel,
    rng: StdRng,
    now: Time,
    scheduled_crashes: Vec<(Pid, Time)>,
    crashes: Vec<(Pid, Time)>,
    nv_inactivations: Vec<(Pid, Time)>,
    all_inactive_at: Option<Time>,
}

impl NaiveWorld {
    /// Create a naive-protocol world.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `n == 0`.
    pub fn new(cfg: NaiveConfig, seed: u64) -> Self {
        assert!(cfg.period > 0, "period must be positive");
        assert!(cfg.n > 0, "need at least one participant");
        NaiveWorld {
            coord_status: Status::Active,
            silent: vec![0; cfg.n],
            replied: vec![true; cfg.n],
            resp_status: vec![Status::Active; cfg.n],
            waiting: vec![0; cfg.n],
            elapsed: 0,
            channel: Channel::new(cfg.loss_prob),
            rng: StdRng::seed_from_u64(seed),
            now: 0,
            scheduled_crashes: Vec::new(),
            crashes: Vec::new(),
            nv_inactivations: Vec::new(),
            all_inactive_at: None,
            cfg,
        }
    }

    /// Schedule a crash of `pid` at `t`.
    pub fn schedule_crash(&mut self, pid: Pid, t: Time) {
        assert!(pid <= self.cfg.n);
        self.scheduled_crashes.push((pid, t));
    }

    /// Whether everything is inactive.
    pub fn all_inactive(&self) -> bool {
        self.coord_status.is_inactive() && self.resp_status.iter().all(|s| s.is_inactive())
    }

    /// One tick.
    pub fn step(&mut self) {
        // injected crashes
        let now = self.now;
        let mut crashes = std::mem::take(&mut self.scheduled_crashes);
        crashes.retain(|&(pid, t)| {
            if t != now {
                return true;
            }
            let status = if pid == 0 {
                &mut self.coord_status
            } else {
                &mut self.resp_status[pid - 1]
            };
            if status.is_active() {
                *status = Status::Crashed;
                self.crashes.push((pid, now));
            }
            false
        });
        self.scheduled_crashes = crashes;

        // deliveries
        for m in self.channel.due(now) {
            self.channel.delivered += 1;
            if m.dst == 0 {
                if self.coord_status.is_active() {
                    self.replied[m.src - 1] = true;
                }
            } else if self.resp_status[m.dst - 1].is_active() {
                self.waiting[m.dst - 1] = 0;
                let bound = self.cfg.delay_bound;
                self.channel
                    .send(&mut self.rng, now, m.dst, 0, Heartbeat::plain(), bound);
            }
        }

        // coordinator period boundary
        if self.coord_status.is_active() && self.elapsed >= self.cfg.period {
            self.elapsed = 0;
            for i in 0..self.cfg.n {
                if self.replied[i] {
                    self.silent[i] = 0;
                } else {
                    self.silent[i] += 1;
                }
                self.replied[i] = false;
            }
            if self.silent.iter().any(|&s| s > self.cfg.tolerance) {
                self.coord_status = Status::NvInactive;
                self.nv_inactivations.push((0, now));
            } else {
                for i in 0..self.cfg.n {
                    let bound = self.cfg.delay_bound;
                    self.channel
                        .send(&mut self.rng, now, 0, i + 1, Heartbeat::plain(), bound);
                }
            }
        }

        // participant watchdogs
        for i in 0..self.cfg.n {
            if self.resp_status[i].is_active() && self.waiting[i] >= self.cfg.responder_bound() {
                self.resp_status[i] = Status::NvInactive;
                self.nv_inactivations.push((i + 1, now));
            }
        }

        if self.all_inactive_at.is_none() && self.all_inactive() {
            self.all_inactive_at = Some(now);
        }

        if self.coord_status.is_active() {
            self.elapsed += 1;
        }
        for i in 0..self.cfg.n {
            if self.resp_status[i].is_active() {
                self.waiting[i] += 1;
            }
        }
        self.now += 1;
    }

    /// Run until `t` or total inactivation.
    pub fn run_until(&mut self, t: Time) {
        while self.now < t && !self.all_inactive() {
            self.step();
        }
    }

    /// Produce the metrics report.
    pub fn into_report(self) -> Report {
        let first_crash = self.crashes.iter().map(|&(_, t)| t).min();
        let detection_delay = match (first_crash, self.all_inactive_at) {
            (Some(c), Some(d)) => Some(d.saturating_sub(c)),
            _ => None,
        };
        let false_inactivations = if self.crashes.is_empty() {
            self.nv_inactivations.len() as u32
        } else {
            0
        };
        let mut final_status = vec![self.coord_status];
        final_status.extend(&self.resp_status);
        Report {
            duration: self.now,
            messages_sent: self.channel.sent,
            messages_delivered: self.channel.delivered,
            messages_lost: self.channel.lost,
            crashes: self.crashes,
            nv_inactivations: self.nv_inactivations,
            leaves: Vec::new(),
            revives: Vec::new(),
            reconv_detect: None,
            reconv_stable: None,
            stale_beats_admitted: 0,
            stale_beats_filtered: 0,
            detection_delay,
            false_inactivations,
            final_status,
            log: hb_core::trace::EventLog::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(period: u32, tolerance: u32) -> NaiveConfig {
        NaiveConfig {
            period,
            tolerance,
            delay_bound: 2,
            n: 1,
            loss_prob: 0.0,
        }
    }

    #[test]
    fn lossless_naive_runs_forever() {
        let mut w = NaiveWorld::new(cfg(8, 1), 1);
        w.run_until(5_000);
        let r = w.into_report();
        assert_eq!(r.false_inactivations, 0);
        assert!((r.message_rate() - 2.0 / 8.0).abs() < 0.02);
    }

    #[test]
    fn participant_crash_detected_within_bound() {
        for seed in 0..10 {
            let mut w = NaiveWorld::new(cfg(8, 1), seed);
            w.schedule_crash(1, 100);
            w.run_until(10_000);
            let r = w.into_report();
            let d = r.detection_delay.expect("detected");
            assert!(
                d <= u64::from(cfg(8, 1).detection_bound()) + 8,
                "seed {seed}: {d}"
            );
        }
    }

    #[test]
    fn single_loss_kills_zero_tolerance_naive() {
        // With tolerance 0, one lost beat in either direction inactivates —
        // this is the reliability weakness the accelerated protocol fixes.
        let mut any = 0;
        for seed in 0..20 {
            let mut w = NaiveWorld::new(
                NaiveConfig {
                    loss_prob: 0.05,
                    ..cfg(8, 0)
                },
                seed,
            );
            w.run_until(10_000);
            any += w.into_report().false_inactivations;
        }
        assert!(any > 0, "5% loss must kill a tolerance-0 naive protocol");
    }

    #[test]
    fn tolerance_buys_reliability_at_detection_cost() {
        let frail = cfg(8, 0);
        let sturdy = cfg(8, 3);
        assert!(sturdy.detection_bound() > frail.detection_bound());
        assert_eq!(frail.message_rate(), sturdy.message_rate());
    }

    #[test]
    fn coordinator_crash_detected_by_participant() {
        let mut w = NaiveWorld::new(cfg(8, 1), 3);
        w.schedule_crash(0, 50);
        w.run_until(10_000);
        let r = w.into_report();
        assert!(r.all_inactive());
    }

    #[test]
    fn multi_participant_rate_scales() {
        let c = NaiveConfig { n: 4, ..cfg(10, 1) };
        assert!((c.message_rate() - 0.8).abs() < 1e-12);
        let mut w = NaiveWorld::new(c, 9);
        w.run_until(5_000);
        let r = w.into_report();
        assert!(
            (r.message_rate() - 0.8).abs() < 0.05,
            "{}",
            r.message_rate()
        );
    }
}
