//! Run metrics and reports.

use hb_core::trace::EventLog;
use hb_core::{Pid, Status};

use crate::channel::Time;

/// Everything measured over one simulation run.
#[derive(Clone, Debug)]
pub struct Report {
    /// Total simulated time.
    pub duration: Time,
    /// Messages handed to the channel (including lost ones).
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages lost by the channel.
    pub messages_lost: u64,
    /// `(pid, time)` of every voluntary crash (injected).
    pub crashes: Vec<(Pid, Time)>,
    /// `(pid, time)` of every non-voluntary (protocol-driven)
    /// inactivation.
    pub nv_inactivations: Vec<(Pid, Time)>,
    /// `(pid, time)` of every leave (dynamic protocol).
    pub leaves: Vec<(Pid, Time)>,
    /// `(pid, time)` of every post-crash revive (§7 rejoin).
    pub revives: Vec<(Pid, Time)>,
    /// Worst observed re-convergence *detection* delay: ticks from a
    /// revive until the coordinator registered the fresh epoch (`None`
    /// if no revive was ever detected).
    pub reconv_detect: Option<Time>,
    /// Worst observed re-convergence *stabilisation* delay: ticks from a
    /// revive until, additionally, the revived participant was an
    /// active, joined member of the round again (`None` if no revive
    /// ever stabilised).
    pub reconv_stable: Option<Time>,
    /// Beats from superseded incarnations the coordinator accepted as if
    /// fresh (naive rejoin only).
    pub stale_beats_admitted: u32,
    /// Beats from superseded incarnations the coordinator filtered
    /// behind the epoch bar (§7 rejoin only).
    pub stale_beats_filtered: u32,
    /// Time from the first injected crash until every process was
    /// inactive, if both happened.
    pub detection_delay: Option<Time>,
    /// Non-voluntary inactivations in a run with **no** injected crash —
    /// the protocol shut something down spuriously (loss-induced).
    pub false_inactivations: u32,
    /// Final status of every process (`index 0` = coordinator).
    pub final_status: Vec<Status>,
    /// Full event log (empty unless logging was enabled).
    pub log: EventLog,
}

impl Report {
    /// Steady-state message rate: messages per time unit.
    ///
    /// For a healthy accelerated protocol with one participant this is
    /// ≈ `2/tmax` (one beat and one reply per round).
    pub fn message_rate(&self) -> f64 {
        if self.duration == 0 {
            return 0.0;
        }
        self.messages_sent as f64 / self.duration as f64
    }

    /// Whether every process ended inactive.
    pub fn all_inactive(&self) -> bool {
        self.final_status.iter().all(|s| s.is_inactive())
    }

    /// Observed message-loss ratio.
    pub fn loss_ratio(&self) -> f64 {
        if self.messages_sent == 0 {
            return 0.0;
        }
        self.messages_lost as f64 / self.messages_sent as f64
    }

    /// First non-voluntary inactivation time of a given process.
    pub fn nv_time_of(&self, pid: Pid) -> Option<Time> {
        self.nv_inactivations
            .iter()
            .find(|(p, _)| *p == pid)
            .map(|(_, t)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report {
            duration: 100,
            messages_sent: 25,
            messages_delivered: 20,
            messages_lost: 5,
            crashes: vec![(1, 40)],
            nv_inactivations: vec![(0, 60)],
            leaves: vec![],
            revives: vec![],
            reconv_detect: None,
            reconv_stable: None,
            stale_beats_admitted: 0,
            stale_beats_filtered: 0,
            detection_delay: Some(20),
            false_inactivations: 0,
            final_status: vec![Status::NvInactive, Status::Crashed],
            log: EventLog::new(),
        }
    }

    #[test]
    fn rates() {
        let r = report();
        assert!((r.message_rate() - 0.25).abs() < 1e-12);
        assert!((r.loss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn all_inactive_detects_terminal_runs() {
        let r = report();
        assert!(r.all_inactive());
    }

    #[test]
    fn nv_lookup() {
        let r = report();
        assert_eq!(r.nv_time_of(0), Some(60));
        assert_eq!(r.nv_time_of(1), None);
    }

    #[test]
    fn zero_duration_is_safe() {
        let mut r = report();
        r.duration = 0;
        r.messages_sent = 0;
        assert_eq!(r.message_rate(), 0.0);
        assert_eq!(r.loss_ratio(), 0.0);
    }
}
