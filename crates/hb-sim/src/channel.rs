//! Lossy bounded-delay channels for the simulator.

use hb_core::{Heartbeat, Pid};
use rand::Rng;

/// Discrete simulation time.
pub type Time = u64;

/// A message in flight, scheduled for delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// Delivery time.
    pub deliver_at: Time,
    /// Sender.
    pub src: Pid,
    /// Destination.
    pub dst: Pid,
    /// Payload.
    pub hb: Heartbeat,
    /// Round-trip budget left *at delivery* — an instant reply may take at
    /// most this much additional delay.
    pub budget_left: u32,
}

/// What an external fault engine decided for one message: drop it, or
/// deliver some number of copies with extra delay beyond the uniform
/// in-budget draw. `Deliver { copies: 1, extra_delay: 0 }` is a plain
/// faultless send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFate {
    /// The message is lost.
    Drop,
    /// The message is delivered, possibly duplicated and/or late.
    Deliver {
        /// Number of copies injected into the channel (0 behaves as a
        /// drop that still reports the send as accepted).
        copies: u32,
        /// Additional delay ticks on top of the uniform `0..=budget`
        /// draw. May exceed the round-trip budget — that is the point of
        /// a delay-spike adversary.
        extra_delay: u32,
    },
}

impl SendFate {
    /// The fate of a message on a healthy channel.
    pub fn clean() -> Self {
        SendFate::Deliver {
            copies: 1,
            extra_delay: 0,
        }
    }
}

/// An external adversary consulted for every message the world sends.
///
/// Installing a hook (`World::set_fault_hook`) **replaces** the channel's
/// own [`LossModel`] as the drop authority: the hook owns all fault
/// randomness (so fault schedules are reproducible independently of the
/// world's delay stream) while the channel keeps drawing in-budget
/// delays.
pub trait FaultHook: Send + std::fmt::Debug {
    /// Decide the fate of a message from `src` to `dst` sent at `now`.
    fn fate(&mut self, now: Time, src: Pid, dst: Pid) -> SendFate;
}

/// How the channel decides to drop messages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LossModel {
    /// Independent per-message loss with this probability.
    Bernoulli(f64),
    /// A two-state Gilbert–Elliott burst-loss chain: the channel moves
    /// between a *good* and a *bad* state (one step per message) and
    /// drops with a state-dependent probability. Bursty loss is the
    /// adversary of the accelerated protocols' "k consecutive losses"
    /// defense.
    GilbertElliott {
        /// P(good → bad) per message.
        to_bad: f64,
        /// P(bad → good) per message.
        to_good: f64,
        /// Loss probability in the good state.
        good_loss: f64,
        /// Loss probability in the bad state.
        bad_loss: f64,
    },
}

impl LossModel {
    /// The long-run average loss probability of the model.
    pub fn average_loss(&self) -> f64 {
        match *self {
            LossModel::Bernoulli(p) => p,
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            } => {
                // stationary distribution of the two-state chain
                let pi_bad = to_bad / (to_bad + to_good);
                (1.0 - pi_bad) * good_loss + pi_bad * bad_loss
            }
        }
    }

    fn validate(&self) {
        let probs: Vec<f64> = match *self {
            LossModel::Bernoulli(p) => vec![p],
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            } => vec![to_bad, to_good, good_loss, bad_loss],
        };
        for p in probs {
            assert!(
                (0.0..=1.0).contains(&p),
                "loss probability must be in [0, 1], got {p}"
            );
        }
    }
}

/// A lossy channel that assigns each message a random delay within its
/// budget and drops it according to a [`LossModel`], optionally with a
/// total outage window (all messages in `[from, to)` are dropped —
/// modelling GM98's "communication medium is down").
#[derive(Clone, Debug)]
pub struct Channel {
    model: LossModel,
    ge_bad: bool,
    outage: Option<(Time, Time)>,
    in_flight: Vec<InFlight>,
    /// Total messages accepted for transmission.
    pub sent: u64,
    /// Messages dropped.
    pub lost: u64,
    /// Messages delivered.
    pub delivered: u64,
}

impl Channel {
    /// A channel dropping each message independently with `loss_prob`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= loss_prob <= 1.0`.
    pub fn new(loss_prob: f64) -> Self {
        Self::with_model(LossModel::Bernoulli(loss_prob))
    }

    /// A channel with an arbitrary loss model.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    pub fn with_model(model: LossModel) -> Self {
        model.validate();
        Self {
            model,
            ge_bad: false,
            outage: None,
            in_flight: Vec::new(),
            sent: 0,
            lost: 0,
            delivered: 0,
        }
    }

    /// Drop everything sent in the half-open window `[from, to)`.
    pub fn set_outage(&mut self, from: Time, to: Time) {
        assert!(from <= to, "outage window must be ordered");
        self.outage = Some((from, to));
    }

    fn drops_now<R: Rng>(&mut self, rng: &mut R, now: Time) -> bool {
        if let Some((from, to)) = self.outage {
            if (from..to).contains(&now) {
                return true;
            }
        }
        match self.model {
            LossModel::Bernoulli(p) => rng.gen_bool(p),
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            } => {
                // one chain step per message
                if self.ge_bad {
                    if rng.gen_bool(to_good) {
                        self.ge_bad = false;
                    }
                } else if rng.gen_bool(to_bad) {
                    self.ge_bad = true;
                }
                rng.gen_bool(if self.ge_bad { bad_loss } else { good_loss })
            }
        }
    }

    /// Send a message at time `now` with a delay drawn uniformly from
    /// `0..=budget`. Returns `true` if the message was accepted (not
    /// lost).
    pub fn send<R: Rng>(
        &mut self,
        rng: &mut R,
        now: Time,
        src: Pid,
        dst: Pid,
        hb: Heartbeat,
        budget: u32,
    ) -> bool {
        self.sent += 1;
        if self.drops_now(rng, now) {
            self.lost += 1;
            return false;
        }
        let delay = rng.gen_range(0..=budget);
        self.in_flight.push(InFlight {
            deliver_at: now + Time::from(delay),
            src,
            dst,
            hb,
            budget_left: budget - delay,
        });
        true
    }

    /// Send a message over the `(src, dst)` link whose drop/duplicate/delay
    /// fate was already decided by an external [`FaultHook`]. The channel's
    /// own loss model and outage window are bypassed; only the uniform
    /// in-budget delay draw remains local. Returns `true` if at least one
    /// copy was scheduled.
    pub fn send_shaped<R: Rng>(
        &mut self,
        rng: &mut R,
        now: Time,
        (src, dst): (Pid, Pid),
        hb: Heartbeat,
        budget: u32,
        fate: SendFate,
    ) -> bool {
        self.sent += 1;
        let SendFate::Deliver {
            copies,
            extra_delay,
        } = fate
        else {
            self.lost += 1;
            return false;
        };
        if copies == 0 {
            self.lost += 1;
            return false;
        }
        for _ in 0..copies {
            let delay = rng.gen_range(0..=budget) + extra_delay;
            self.in_flight.push(InFlight {
                deliver_at: now + Time::from(delay),
                src,
                dst,
                hb,
                budget_left: budget.saturating_sub(delay),
            });
        }
        true
    }

    /// Remove and return every message due at `now` (unordered).
    pub fn due(&mut self, now: Time) -> Vec<InFlight> {
        let mut due = Vec::new();
        self.due_into(now, &mut due);
        due
    }

    /// Remove every message due at `now`, appending it to `out` — the
    /// allocation-free form of [`due`](Self::due) for callers reusing a
    /// scratch buffer across ticks. Extraction order is identical to
    /// `due` (the swap-remove sweep), so the two are drop-in equivalent
    /// for seed-deterministic runs.
    pub fn due_into(&mut self, now: Time, out: &mut Vec<InFlight>) {
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].deliver_at <= now {
                out.push(self.in_flight.swap_remove(i));
            } else {
                i += 1;
            }
        }
    }

    /// Messages currently in flight.
    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// The earliest scheduled delivery time, if any.
    pub fn next_delivery(&self) -> Option<Time> {
        self.in_flight.iter().map(|m| m.deliver_at).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lossless_channel_delivers_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ch = Channel::new(0.0);
        for i in 0..100 {
            assert!(ch.send(&mut rng, i, 0, 1, Heartbeat::plain(), 5));
        }
        assert_eq!(ch.sent, 100);
        assert_eq!(ch.lost, 0);
        let mut got = 0;
        for t in 0..200 {
            got += ch.due(t).len();
        }
        assert_eq!(got, 100);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn delays_respect_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ch = Channel::new(0.0);
        for _ in 0..1000 {
            ch.send(&mut rng, 10, 0, 1, Heartbeat::plain(), 3);
        }
        for m in &ch.in_flight {
            assert!(m.deliver_at >= 10 && m.deliver_at <= 13);
            assert_eq!(u64::from(3 - m.budget_left), m.deliver_at - 10);
        }
    }

    #[test]
    fn total_loss_channel_drops_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ch = Channel::new(1.0);
        for _ in 0..50 {
            assert!(!ch.send(&mut rng, 0, 0, 1, Heartbeat::plain(), 5));
        }
        assert_eq!(ch.lost, 50);
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn loss_rate_is_roughly_bernoulli() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut ch = Channel::new(0.3);
        for _ in 0..10_000 {
            ch.send(&mut rng, 0, 0, 1, Heartbeat::plain(), 5);
        }
        let rate = ch.lost as f64 / ch.sent as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
    }

    #[test]
    fn due_returns_only_ripe_messages() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = Channel::new(0.0);
        ch.send(&mut rng, 0, 0, 1, Heartbeat::plain(), 0); // due at 0
        ch.send(&mut rng, 5, 0, 1, Heartbeat::plain(), 0); // due at 5
        assert_eq!(ch.due(0).len(), 1);
        assert_eq!(ch.due(4).len(), 0);
        assert_eq!(ch.due(5).len(), 1);
        assert_eq!(ch.next_delivery(), None);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        Channel::new(1.5);
    }

    #[test]
    fn gilbert_elliott_average_matches_stationary() {
        let model = LossModel::GilbertElliott {
            to_bad: 0.1,
            to_good: 0.4,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        // pi_bad = 0.1 / 0.5 = 0.2
        assert!((model.average_loss() - 0.2).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(9);
        let mut ch = Channel::with_model(model);
        for _ in 0..50_000 {
            ch.send(&mut rng, 0, 0, 1, Heartbeat::plain(), 2);
        }
        let rate = ch.lost as f64 / ch.sent as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Compare the longest run of consecutive losses under GE vs a
        // Bernoulli channel with the same average loss.
        let run_len = |mut ch: Channel| {
            let mut rng = StdRng::seed_from_u64(4);
            let mut longest = 0u32;
            let mut current = 0u32;
            for _ in 0..20_000 {
                let before = ch.lost;
                ch.send(&mut rng, 0, 0, 1, Heartbeat::plain(), 2);
                if ch.lost > before {
                    current += 1;
                    longest = longest.max(current);
                } else {
                    current = 0;
                }
            }
            longest
        };
        let ge = LossModel::GilbertElliott {
            to_bad: 0.02,
            to_good: 0.2,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let bursty = run_len(Channel::with_model(ge));
        let smooth = run_len(Channel::new(ge.average_loss()));
        assert!(
            bursty > 2 * smooth.max(1),
            "GE runs ({bursty}) should dwarf Bernoulli runs ({smooth})"
        );
    }

    #[test]
    fn shaped_sends_follow_the_dictated_fate() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ch = Channel::new(0.0);
        assert!(!ch.send_shaped(&mut rng, 0, (0, 1), Heartbeat::plain(), 2, SendFate::Drop));
        assert_eq!((ch.sent, ch.lost, ch.pending()), (1, 1, 0));
        // Zero copies behaves as a drop.
        let gone = SendFate::Deliver {
            copies: 0,
            extra_delay: 0,
        };
        assert!(!ch.send_shaped(&mut rng, 0, (0, 1), Heartbeat::plain(), 2, gone));
        assert_eq!((ch.sent, ch.lost), (2, 2));
        // Duplication schedules every copy; extra delay may exceed the
        // budget, which zeroes the remaining reply budget.
        let dup = SendFate::Deliver {
            copies: 3,
            extra_delay: 5,
        };
        assert!(ch.send_shaped(&mut rng, 10, (0, 1), Heartbeat::plain(), 2, dup));
        assert_eq!(ch.pending(), 3);
        for m in &ch.in_flight {
            assert!(m.deliver_at >= 15 && m.deliver_at <= 17);
            assert_eq!(m.budget_left, 0);
        }
    }

    #[test]
    fn outage_drops_everything_in_window() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ch = Channel::new(0.0);
        ch.set_outage(10, 20);
        assert!(ch.send(&mut rng, 9, 0, 1, Heartbeat::plain(), 2));
        assert!(!ch.send(&mut rng, 10, 0, 1, Heartbeat::plain(), 2));
        assert!(!ch.send(&mut rng, 19, 0, 1, Heartbeat::plain(), 2));
        assert!(ch.send(&mut rng, 20, 0, 1, Heartbeat::plain(), 2));
        assert_eq!(ch.lost, 2);
    }
}
