//! Reusable simulation scenarios (workload generators).

use hb_core::{Params, Pid, Variant};

use crate::channel::{LossModel, Time};
use crate::metrics::Report;
use crate::world::{World, WorldConfig};
use hb_core::FixLevel;

/// A declarative description of one simulation run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level.
    pub fix: FixLevel,
    /// Number of participants.
    pub n: usize,
    /// Run length (the run may end earlier if everything inactivates).
    pub duration: Time,
    /// Per-message loss probability.
    pub loss_prob: f64,
    /// Crash injections `(pid, time)`.
    pub crashes: Vec<(Pid, Time)>,
    /// Delayed participant starts `(pid, time)` (join variants).
    pub starts: Vec<(Pid, Time)>,
    /// Leave instructions `(pid, earliest time)` (dynamic).
    pub leaves: Vec<(Pid, Time)>,
    /// Record a full event log.
    pub log_events: bool,
    /// Override the Bernoulli loss with an arbitrary loss model.
    pub loss_model: Option<LossModel>,
    /// A total channel outage window `[from, to)`.
    pub outage: Option<(Time, Time)>,
}

impl Scenario {
    /// A fault-free steady-state run (overhead measurements).
    pub fn steady_state(variant: Variant, params: Params, duration: Time) -> Self {
        Scenario {
            variant,
            params,
            fix: FixLevel::Original,
            n: 1,
            duration,
            loss_prob: 0.0,
            crashes: Vec::new(),
            starts: Vec::new(),
            leaves: Vec::new(),
            log_events: false,
            loss_model: None,
            outage: None,
        }
    }

    /// Crash `pid` at `t`, then run long enough to observe detection.
    pub fn crash_at(variant: Variant, params: Params, pid: Pid, t: Time) -> Self {
        Scenario {
            crashes: vec![(pid, t)],
            duration: t + 100 * u64::from(params.tmax()),
            ..Scenario::steady_state(variant, params, 0)
        }
    }

    /// A lossy steady-state run (reliability measurements).
    pub fn lossy(variant: Variant, params: Params, loss_prob: f64, duration: Time) -> Self {
        Scenario {
            loss_prob,
            ..Scenario::steady_state(variant, params, duration)
        }
    }

    /// A churn run for the join variants: `n` participants starting at the
    /// given times (and, for the dynamic variant, leaving at the optional
    /// times).
    pub fn churn(
        variant: Variant,
        params: Params,
        starts: Vec<(Pid, Time)>,
        leaves: Vec<(Pid, Time)>,
        duration: Time,
    ) -> Self {
        assert!(
            variant.has_join_phase(),
            "churn scenarios need a join-capable variant"
        );
        let n = starts.iter().map(|&(p, _)| p).max().unwrap_or(0);
        Scenario {
            n,
            starts,
            leaves,
            duration,
            ..Scenario::steady_state(variant, params, 0)
        }
    }

    /// Use a different fix level.
    pub fn with_fix(mut self, fix: FixLevel) -> Self {
        self.fix = fix;
        self
    }

    /// Use a different participant count.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Enable full event logging.
    pub fn with_log(mut self) -> Self {
        self.log_events = true;
        self
    }

    /// Use an arbitrary channel loss model (e.g. Gilbert–Elliott).
    pub fn with_loss_model(mut self, model: LossModel) -> Self {
        self.loss_model = Some(model);
        self
    }

    /// Inject a total channel outage in `[from, to)`.
    pub fn with_outage(mut self, from: Time, to: Time) -> Self {
        self.outage = Some((from, to));
        self
    }
}

/// Build the world for a scenario and run it to completion.
pub fn run_scenario(sc: &Scenario, seed: u64) -> Report {
    let cfg = WorldConfig {
        variant: sc.variant,
        params: sc.params,
        fix: sc.fix,
        n: sc.n,
        loss_prob: sc.loss_prob,
        log_events: sc.log_events,
    };
    let mut world = World::new(cfg, seed);
    if let Some(model) = sc.loss_model {
        world.set_loss_model(model);
    }
    if let Some((from, to)) = sc.outage {
        world.set_outage(from, to);
    }
    // Join variants: participants not mentioned in `starts` start at 0.
    for &(pid, t) in &sc.starts {
        world.schedule_start(pid, t);
    }
    for &(pid, t) in &sc.crashes {
        world.schedule_crash(pid, t);
    }
    for &(pid, t) in &sc.leaves {
        world.schedule_leave(pid, t);
    }
    world.run_until(sc.duration);
    world.into_report()
}

/// Run a scenario across many seeds and return the reports.
pub fn run_seeds(sc: &Scenario, seeds: std::ops::Range<u64>) -> Vec<Report> {
    seeds.map(|s| run_scenario(sc, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::new(2, 8).unwrap()
    }

    #[test]
    fn steady_state_scenario_runs_clean() {
        let r = run_scenario(&Scenario::steady_state(Variant::Binary, params(), 500), 1);
        assert_eq!(r.false_inactivations, 0);
        assert_eq!(r.duration, 500);
    }

    #[test]
    fn crash_scenario_detects() {
        let r = run_scenario(&Scenario::crash_at(Variant::Binary, params(), 1, 64), 2);
        assert!(r.detection_delay.is_some());
        assert!(r.all_inactive());
    }

    #[test]
    fn lossy_scenario_records_losses() {
        let r = run_scenario(&Scenario::lossy(Variant::Binary, params(), 0.3, 2_000), 3);
        assert!(r.messages_lost > 0);
        assert!((r.loss_ratio() - 0.3).abs() < 0.15);
    }

    #[test]
    fn churn_scenario_with_joins_and_leaves() {
        let sc = Scenario::churn(
            Variant::Dynamic,
            params(),
            vec![(1, 10), (2, 50)],
            vec![(1, 300)],
            1_000,
        );
        let r = run_scenario(&sc, 4);
        assert_eq!(r.leaves.len(), 1);
        assert!(r.nv_inactivations.is_empty());
    }

    #[test]
    fn run_seeds_is_deterministic_per_seed() {
        let sc = Scenario::lossy(Variant::Binary, params(), 0.2, 500);
        let a = run_seeds(&sc, 0..5);
        let b = run_seeds(&sc, 0..5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.messages_sent, y.messages_sent);
        }
    }

    #[test]
    fn burst_loss_model_applies() {
        let model = LossModel::GilbertElliott {
            to_bad: 0.05,
            to_good: 0.3,
            good_loss: 0.0,
            bad_loss: 1.0,
        };
        let sc = Scenario::steady_state(Variant::Binary, params(), 3_000).with_loss_model(model);
        let r = run_scenario(&sc, 8);
        assert!(r.messages_lost > 0, "GE channel must drop something");
    }

    #[test]
    fn short_outage_is_survived_long_outage_is_fatal() {
        let p = Params::new(1, 8).unwrap(); // tolerates 3 consecutive losses
                                            // An outage shorter than one round: at most one beat lost.
        let short = Scenario::steady_state(Variant::Binary, p, 2_000).with_outage(100, 104);
        let r = run_scenario(&short, 3);
        assert_eq!(r.false_inactivations, 0, "short outage must be absorbed");
        // An outage longer than the whole halving chain: fatal.
        let long = Scenario::steady_state(Variant::Binary, p, 5_000).with_outage(100, 400);
        let r = run_scenario(&long, 3);
        assert!(r.false_inactivations > 0, "long outage must inactivate");
        assert!(r.all_inactive());
    }

    #[test]
    #[should_panic(expected = "join-capable")]
    fn churn_rejects_static_variant() {
        Scenario::churn(Variant::Static, params(), vec![(1, 0)], vec![], 100);
    }

    #[test]
    fn with_builders_apply() {
        let sc = Scenario::steady_state(Variant::Static, params(), 100)
            .with_n(3)
            .with_fix(FixLevel::Full)
            .with_log();
        assert_eq!(sc.n, 3);
        assert_eq!(sc.fix, FixLevel::Full);
        assert!(sc.log_events);
        let r = run_scenario(&sc, 5);
        assert!(!r.log.is_empty());
    }
}
