//! The JSON-lines telemetry schema shared by the simulator and the live
//! runtime (`hb-net`).
//!
//! Both substrates drive the same `hb-core` state machines, so they emit
//! the same record shapes: one flat JSON object per protocol [`Event`] and
//! one [`RunSummary`] object per run. Keeping the schema in one place lets
//! a live run and a simulated run of the same scenario be diffed
//! line-by-line. No JSON dependency is available in this environment; the
//! records are tiny and flat, so they are emitted by hand.

use hb_core::trace::Event;
use hb_core::{Pid, Status};

use crate::channel::Time;
use crate::metrics::Report;

/// Format a list of `(pid, time)` pairs as a JSON array of two-element
/// arrays, e.g. `[[1,40],[3,900]]`.
fn pairs_json(pairs: &[(Pid, Time)]) -> String {
    let items: Vec<String> = pairs.iter().map(|&(p, t)| format!("[{p},{t}]")).collect();
    format!("[{}]", items.join(","))
}

/// One protocol event as a single-line JSON object (no trailing newline).
///
/// Every record carries `t` (discrete time) and `ev` (the event kind);
/// the remaining fields depend on the kind:
///
/// ```text
/// {"t":10,"ev":"send","from":0,"to":1,"flag":true}
/// {"t":12,"ev":"deliver","from":0,"to":1,"flag":true}
/// {"t":12,"ev":"lose","from":0,"to":1}
/// {"t":10,"ev":"timeout","pid":0}
/// {"t":12,"ev":"crash","pid":1}
/// {"t":38,"ev":"nv_inactivate","pid":0}
/// {"t":600,"ev":"leave","pid":1}
/// {"t":700,"ev":"revive","pid":1}
/// ```
///
/// `send`/`deliver` records also carry `"epoch"` when the heartbeat is
/// from a restarted incarnation (epoch > 0), keeping pre-rejoin logs
/// byte-stable.
pub fn event_json(e: &Event) -> String {
    let epoch_field = |hb: hb_core::Heartbeat| {
        if hb.epoch > 0 {
            format!(",\"epoch\":{}", hb.epoch)
        } else {
            String::new()
        }
    };
    match *e {
        Event::Send { at, from, to, hb } => {
            format!(
                "{{\"t\":{at},\"ev\":\"send\",\"from\":{from},\"to\":{to},\"flag\":{}{}}}",
                hb.flag,
                epoch_field(hb)
            )
        }
        Event::Deliver { at, from, to, hb } => {
            format!(
                "{{\"t\":{at},\"ev\":\"deliver\",\"from\":{from},\"to\":{to},\"flag\":{}{}}}",
                hb.flag,
                epoch_field(hb)
            )
        }
        Event::Lose { at, from, to } => {
            format!("{{\"t\":{at},\"ev\":\"lose\",\"from\":{from},\"to\":{to}}}")
        }
        Event::Timeout { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"timeout\",\"pid\":{pid}}}")
        }
        Event::Crash { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"crash\",\"pid\":{pid}}}")
        }
        Event::NvInactivate { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"nv_inactivate\",\"pid\":{pid}}}")
        }
        Event::Leave { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"leave\",\"pid\":{pid}}}")
        }
        Event::Revive { at, pid } => {
            format!("{{\"t\":{at},\"ev\":\"revive\",\"pid\":{pid}}}")
        }
    }
}

/// The per-run summary record shared by the simulator's [`Report`] and the
/// live runtime's cluster report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Which substrate produced the run: `"sim"` or `"live"`.
    pub source: &'static str,
    /// Total (discrete) run time.
    pub duration: Time,
    /// Messages handed to the channel (including lost ones).
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages lost.
    pub messages_lost: u64,
    /// `(pid, time)` of every voluntary crash.
    pub crashes: Vec<(Pid, Time)>,
    /// `(pid, time)` of every non-voluntary inactivation.
    pub nv_inactivations: Vec<(Pid, Time)>,
    /// `(pid, time)` of every graceful leave.
    pub leaves: Vec<(Pid, Time)>,
    /// `(pid, time)` of every post-crash revive (§7 rejoin).
    pub revives: Vec<(Pid, Time)>,
    /// Worst observed revive-to-re-registration delay, if any revive
    /// re-converged.
    pub reconvergence_delay: Option<Time>,
    /// Stale (superseded-epoch) beats the coordinator admitted as fresh.
    pub stale_beats_admitted: u32,
    /// Stale beats the coordinator filtered behind the epoch bar.
    pub stale_beats_filtered: u32,
    /// Time from the first crash until every process was inactive.
    pub detection_delay: Option<Time>,
    /// Non-voluntary inactivations with no crash injected.
    pub false_inactivations: u32,
    /// Final status per process (index 0 = coordinator).
    pub final_status: Vec<Status>,
}

impl RunSummary {
    /// Summarize a simulator [`Report`].
    pub fn from_report(r: &Report) -> Self {
        RunSummary {
            source: "sim",
            duration: r.duration,
            messages_sent: r.messages_sent,
            messages_delivered: r.messages_delivered,
            messages_lost: r.messages_lost,
            crashes: r.crashes.clone(),
            nv_inactivations: r.nv_inactivations.clone(),
            leaves: r.leaves.clone(),
            revives: r.revives.clone(),
            reconvergence_delay: r.reconvergence_delay,
            stale_beats_admitted: r.stale_beats_admitted,
            stale_beats_filtered: r.stale_beats_filtered,
            detection_delay: r.detection_delay,
            false_inactivations: r.false_inactivations,
            final_status: r.final_status.clone(),
        }
    }

    /// The summary as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let statuses: Vec<String> = self
            .final_status
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect();
        let detection = match self.detection_delay {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        let reconv = match self.reconvergence_delay {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"record\":\"run_summary\",\"source\":\"{}\",\"duration\":{},\
             \"messages_sent\":{},\"messages_delivered\":{},\"messages_lost\":{},\
             \"crashes\":{},\"nv_inactivations\":{},\"leaves\":{},\"revives\":{},\
             \"reconvergence_delay\":{},\"stale_beats_admitted\":{},\
             \"stale_beats_filtered\":{},\
             \"detection_delay\":{},\"false_inactivations\":{},\"final_status\":[{}]}}",
            self.source,
            self.duration,
            self.messages_sent,
            self.messages_delivered,
            self.messages_lost,
            pairs_json(&self.crashes),
            pairs_json(&self.nv_inactivations),
            pairs_json(&self.leaves),
            pairs_json(&self.revives),
            reconv,
            self.stale_beats_admitted,
            self.stale_beats_filtered,
            detection,
            self.false_inactivations,
            statuses.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::trace::EventLog;
    use hb_core::Heartbeat;

    #[test]
    fn event_records_are_flat_json() {
        let e = Event::Send {
            at: 10,
            from: 0,
            to: 1,
            hb: Heartbeat::plain(),
        };
        assert_eq!(
            event_json(&e),
            "{\"t\":10,\"ev\":\"send\",\"from\":0,\"to\":1,\"flag\":true}"
        );
        let e = Event::NvInactivate { at: 38, pid: 0 };
        assert_eq!(
            event_json(&e),
            "{\"t\":38,\"ev\":\"nv_inactivate\",\"pid\":0}"
        );
    }

    #[test]
    fn summary_round_trips_report_fields() {
        let r = Report {
            duration: 100,
            messages_sent: 25,
            messages_delivered: 20,
            messages_lost: 5,
            crashes: vec![(1, 40)],
            nv_inactivations: vec![(0, 60)],
            leaves: vec![],
            revives: vec![(1, 55)],
            reconvergence_delay: Some(6),
            stale_beats_admitted: 2,
            stale_beats_filtered: 0,
            detection_delay: Some(20),
            false_inactivations: 0,
            final_status: vec![Status::NvInactive, Status::Crashed],
            log: EventLog::new(),
        };
        let s = RunSummary::from_report(&r);
        assert_eq!(s.source, "sim");
        assert_eq!(s.detection_delay, Some(20));
        let json = s.to_json();
        assert!(json.contains("\"crashes\":[[1,40]]"), "{json}");
        assert!(json.contains("\"detection_delay\":20"), "{json}");
        assert!(json.contains("\"revives\":[[1,55]]"), "{json}");
        assert!(json.contains("\"reconvergence_delay\":6"), "{json}");
        assert!(json.contains("\"stale_beats_admitted\":2"), "{json}");
        assert!(json.contains("\"final_status\":[\"nv-inactive\",\"crashed\"]"));
    }

    #[test]
    fn missing_detection_is_null() {
        let s = RunSummary {
            source: "live",
            duration: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            crashes: vec![],
            nv_inactivations: vec![],
            leaves: vec![],
            revives: vec![],
            reconvergence_delay: None,
            stale_beats_admitted: 0,
            stale_beats_filtered: 0,
            detection_delay: None,
            false_inactivations: 0,
            final_status: vec![],
        };
        assert!(s.to_json().contains("\"detection_delay\":null"));
        assert!(s.to_json().contains("\"reconvergence_delay\":null"));
    }

    #[test]
    fn epoch_tagged_events_carry_the_epoch_field() {
        let plain = Event::Send {
            at: 1,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        };
        assert!(!event_json(&plain).contains("epoch"));
        let tagged = Event::Deliver {
            at: 2,
            from: 1,
            to: 0,
            hb: Heartbeat::plain().with_epoch(3),
        };
        assert_eq!(
            event_json(&tagged),
            "{\"t\":2,\"ev\":\"deliver\",\"from\":1,\"to\":0,\"flag\":true,\"epoch\":3}"
        );
        assert_eq!(
            event_json(&Event::Revive { at: 7, pid: 1 }),
            "{\"t\":7,\"ev\":\"revive\",\"pid\":1}"
        );
    }
}
