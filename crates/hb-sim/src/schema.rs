//! The JSON-lines telemetry schema shared by the simulator and the live
//! runtime (`hb-net`).
//!
//! Both substrates drive the same `hb-core` state machines, so they emit
//! the same record shapes: one flat JSON object per protocol [`Event`]
//! (see [`event_json`], re-exported from [`hb_core::events`] — the single
//! home of the event schema) and one [`RunSummary`] object per run.
//! Keeping the schema in one place lets a live run and a simulated run of
//! the same scenario be diffed line-by-line. No JSON dependency is
//! available in this environment; the records are tiny and flat, so they
//! are emitted by hand.

use hb_core::{Pid, Status};

use crate::channel::Time;
use crate::metrics::Report;

pub use hb_core::events::{event_json, parse_event_json};

/// Format a list of `(pid, time)` pairs as a JSON array of two-element
/// arrays, e.g. `[[1,40],[3,900]]`.
fn pairs_json(pairs: &[(Pid, Time)]) -> String {
    let items: Vec<String> = pairs.iter().map(|&(p, t)| format!("[{p},{t}]")).collect();
    format!("[{}]", items.join(","))
}

/// The first violation of one requirement, as judged by a streaming
/// monitor: which process broke it, when, and against which bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FirstViolation {
    /// The process the violation is attributed to (the silent participant
    /// for R1, the inactivated process for R2/R3).
    pub pid: Pid,
    /// The tick at which the requirement first failed.
    pub at: Time,
    /// The offending bound (the R1 inactivation bound; 0 for the
    /// untimed requirements R2/R3).
    pub bound: u32,
}

impl FirstViolation {
    fn to_json(self) -> String {
        format!(
            "{{\"pid\":{},\"at\":{},\"bound\":{}}}",
            self.pid, self.at, self.bound
        )
    }
}

/// Monitor verdicts for one run: whether any requirement monitor fired,
/// and the first violation per requirement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorVerdicts {
    /// First R1 violation (a participant silent past the inactivation
    /// bound while the coordinator stayed active), if any.
    pub r1: Option<FirstViolation>,
    /// First R2 violation (a participant non-voluntarily inactivated in a
    /// fault-free run), if any.
    pub r2: Option<FirstViolation>,
    /// First R3 violation (the coordinator non-voluntarily inactivated in
    /// a fault-free run with every participant active), if any.
    pub r3: Option<FirstViolation>,
}

impl MonitorVerdicts {
    /// Whether no monitor fired.
    pub fn clean(&self) -> bool {
        self.r1.is_none() && self.r2.is_none() && self.r3.is_none()
    }

    /// The verdicts as a JSON object (the `"monitor"` field of a
    /// [`RunSummary`] record).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<FirstViolation>| match v {
            Some(v) => v.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"clean\":{},\"r1\":{},\"r2\":{},\"r3\":{}}}",
            self.clean(),
            opt(self.r1),
            opt(self.r2),
            opt(self.r3)
        )
    }
}

/// The per-run summary record shared by the simulator's [`Report`] and the
/// live runtime's cluster report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Which substrate produced the run: `"sim"` or `"live"`.
    pub source: &'static str,
    /// Total (discrete) run time.
    pub duration: Time,
    /// Messages handed to the channel (including lost ones).
    pub messages_sent: u64,
    /// Messages delivered.
    pub messages_delivered: u64,
    /// Messages lost.
    pub messages_lost: u64,
    /// `(pid, time)` of every voluntary crash.
    pub crashes: Vec<(Pid, Time)>,
    /// `(pid, time)` of every non-voluntary inactivation.
    pub nv_inactivations: Vec<(Pid, Time)>,
    /// `(pid, time)` of every graceful leave.
    pub leaves: Vec<(Pid, Time)>,
    /// `(pid, time)` of every post-crash revive (§7 rejoin).
    pub revives: Vec<(Pid, Time)>,
    /// Worst observed revive-to-detection delay (coordinator registered
    /// the fresh epoch), if any revive was detected.
    pub reconv_detect: Option<Time>,
    /// Worst observed revive-to-stability delay (the revived participant
    /// active and joined again on top of detection), if any revive
    /// stabilised.
    pub reconv_stable: Option<Time>,
    /// Stale (superseded-epoch) beats the coordinator admitted as fresh.
    pub stale_beats_admitted: u32,
    /// Stale beats the coordinator filtered behind the epoch bar.
    pub stale_beats_filtered: u32,
    /// Time from the first crash until every process was inactive.
    pub detection_delay: Option<Time>,
    /// Non-voluntary inactivations with no crash injected.
    pub false_inactivations: u32,
    /// Streaming R1–R3 monitor verdicts, when a [`MonitorSet`] was
    /// attached to the run (`None` = run was not monitored).
    ///
    /// [`MonitorSet`]: https://docs.rs/hb-monitor
    pub monitor: Option<MonitorVerdicts>,
    /// Final status per process (index 0 = coordinator).
    pub final_status: Vec<Status>,
}

impl RunSummary {
    /// Summarize a simulator [`Report`].
    pub fn from_report(r: &Report) -> Self {
        RunSummary {
            source: "sim",
            duration: r.duration,
            messages_sent: r.messages_sent,
            messages_delivered: r.messages_delivered,
            messages_lost: r.messages_lost,
            crashes: r.crashes.clone(),
            nv_inactivations: r.nv_inactivations.clone(),
            leaves: r.leaves.clone(),
            revives: r.revives.clone(),
            reconv_detect: r.reconv_detect,
            reconv_stable: r.reconv_stable,
            stale_beats_admitted: r.stale_beats_admitted,
            stale_beats_filtered: r.stale_beats_filtered,
            detection_delay: r.detection_delay,
            false_inactivations: r.false_inactivations,
            monitor: None,
            final_status: r.final_status.clone(),
        }
    }

    /// The summary as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let statuses: Vec<String> = self
            .final_status
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect();
        let detection = match self.detection_delay {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        let opt_time = |v: Option<Time>| match v {
            Some(d) => d.to_string(),
            None => "null".to_string(),
        };
        let reconv_detect = opt_time(self.reconv_detect);
        let reconv_stable = opt_time(self.reconv_stable);
        let monitor = match &self.monitor {
            Some(m) => m.to_json(),
            None => "null".to_string(),
        };
        format!(
            "{{\"record\":\"run_summary\",\"source\":\"{}\",\"duration\":{},\
             \"messages_sent\":{},\"messages_delivered\":{},\"messages_lost\":{},\
             \"crashes\":{},\"nv_inactivations\":{},\"leaves\":{},\"revives\":{},\
             \"reconv_detect\":{},\"reconv_stable\":{},\"stale_beats_admitted\":{},\
             \"stale_beats_filtered\":{},\
             \"detection_delay\":{},\"false_inactivations\":{},\"monitor\":{},\
             \"final_status\":[{}]}}",
            self.source,
            self.duration,
            self.messages_sent,
            self.messages_delivered,
            self.messages_lost,
            pairs_json(&self.crashes),
            pairs_json(&self.nv_inactivations),
            pairs_json(&self.leaves),
            pairs_json(&self.revives),
            reconv_detect,
            reconv_stable,
            self.stale_beats_admitted,
            self.stale_beats_filtered,
            detection,
            self.false_inactivations,
            monitor,
            statuses.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::trace::{Event, EventLog};
    use hb_core::Heartbeat;

    #[test]
    fn event_records_are_flat_json() {
        let e = Event::Send {
            at: 10,
            from: 0,
            to: 1,
            hb: Heartbeat::plain(),
        };
        assert_eq!(
            event_json(&e),
            "{\"t\":10,\"ev\":\"send\",\"from\":0,\"to\":1,\"flag\":true}"
        );
        let e = Event::NvInactivate { at: 38, pid: 0 };
        assert_eq!(
            event_json(&e),
            "{\"t\":38,\"ev\":\"nv_inactivate\",\"pid\":0}"
        );
    }

    #[test]
    fn summary_round_trips_report_fields() {
        let r = Report {
            duration: 100,
            messages_sent: 25,
            messages_delivered: 20,
            messages_lost: 5,
            crashes: vec![(1, 40)],
            nv_inactivations: vec![(0, 60)],
            leaves: vec![],
            revives: vec![(1, 55)],
            reconv_detect: Some(6),
            reconv_stable: Some(11),
            stale_beats_admitted: 2,
            stale_beats_filtered: 0,
            detection_delay: Some(20),
            false_inactivations: 0,
            final_status: vec![Status::NvInactive, Status::Crashed],
            log: EventLog::new(),
        };
        let s = RunSummary::from_report(&r);
        assert_eq!(s.source, "sim");
        assert_eq!(s.detection_delay, Some(20));
        assert_eq!(s.monitor, None);
        let json = s.to_json();
        assert!(json.contains("\"crashes\":[[1,40]]"), "{json}");
        assert!(json.contains("\"detection_delay\":20"), "{json}");
        assert!(json.contains("\"revives\":[[1,55]]"), "{json}");
        assert!(json.contains("\"reconv_detect\":6"), "{json}");
        assert!(json.contains("\"reconv_stable\":11"), "{json}");
        assert!(json.contains("\"stale_beats_admitted\":2"), "{json}");
        assert!(json.contains("\"monitor\":null"), "{json}");
        assert!(json.contains("\"final_status\":[\"nv-inactive\",\"crashed\"]"));
    }

    #[test]
    fn missing_detection_is_null() {
        let s = RunSummary {
            source: "live",
            duration: 0,
            messages_sent: 0,
            messages_delivered: 0,
            messages_lost: 0,
            crashes: vec![],
            nv_inactivations: vec![],
            leaves: vec![],
            revives: vec![],
            reconv_detect: None,
            reconv_stable: None,
            stale_beats_admitted: 0,
            stale_beats_filtered: 0,
            detection_delay: None,
            false_inactivations: 0,
            monitor: None,
            final_status: vec![],
        };
        assert!(s.to_json().contains("\"detection_delay\":null"));
        assert!(s.to_json().contains("\"reconv_detect\":null"));
        assert!(s.to_json().contains("\"reconv_stable\":null"));
    }

    #[test]
    fn monitor_verdicts_render_as_a_nested_object() {
        let clean = MonitorVerdicts::default();
        assert!(clean.clean());
        assert_eq!(
            clean.to_json(),
            "{\"clean\":true,\"r1\":null,\"r2\":null,\"r3\":null}"
        );
        let fired = MonitorVerdicts {
            r1: Some(FirstViolation {
                pid: 1,
                at: 1022,
                bound: 16,
            }),
            ..MonitorVerdicts::default()
        };
        assert!(!fired.clean());
        assert_eq!(
            fired.to_json(),
            "{\"clean\":false,\"r1\":{\"pid\":1,\"at\":1022,\"bound\":16},\
             \"r2\":null,\"r3\":null}"
        );
    }

    #[test]
    fn epoch_tagged_events_carry_the_epoch_field() {
        let plain = Event::Send {
            at: 1,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        };
        assert!(!event_json(&plain).contains("epoch"));
        let tagged = Event::Deliver {
            at: 2,
            from: 1,
            to: 0,
            hb: Heartbeat::plain().with_epoch(3),
        };
        assert_eq!(
            event_json(&tagged),
            "{\"t\":2,\"ev\":\"deliver\",\"from\":1,\"to\":0,\"flag\":true,\"epoch\":3}"
        );
        assert_eq!(
            event_json(&Event::Revive { at: 7, pid: 1 }),
            "{\"t\":7,\"ev\":\"revive\",\"pid\":1}"
        );
    }
}
