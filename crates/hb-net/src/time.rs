//! Time sources: mapping the protocols' discrete ticks onto real or
//! virtual time.
//!
//! The `hb-core` machines count in abstract unit ticks (the same unit as
//! [`Params`](hb_core::Params)). A [`TimeSource`] decides what a tick
//! means: [`WallClock`] pins tick 0 to a real instant and advances with
//! wall time (the digital-clock semantics of the verification models, run
//! live), while [`VirtualClock`] is advanced by hand, giving bit-for-bit
//! deterministic runs for tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Discrete protocol time, in ticks. Identical to the simulator's
/// [`hb_sim::channel::Time`].
pub type Time = u64;

/// Something that can tell the current tick and how long (in real time)
/// until a future tick.
pub trait TimeSource: Send + Sync {
    /// The current tick.
    fn now(&self) -> Time;

    /// Real-time duration from now until tick `t` begins (zero if `t` is
    /// already past, or for virtual time sources).
    fn until(&self, t: Time) -> Duration;
}

/// A wall-clock time source: tick `t` begins `t × tick` after creation.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    start: Instant,
    tick: Duration,
}

impl WallClock {
    /// Start counting ticks of length `tick` from now.
    ///
    /// # Panics
    ///
    /// Panics if `tick` is zero.
    pub fn new(tick: Duration) -> Self {
        assert!(!tick.is_zero(), "tick length must be positive");
        WallClock {
            start: Instant::now(),
            tick,
        }
    }

    /// The tick length.
    pub fn tick(&self) -> Duration {
        self.tick
    }
}

impl TimeSource for WallClock {
    fn now(&self) -> Time {
        (self.start.elapsed().as_nanos() / self.tick.as_nanos()) as Time
    }

    fn until(&self, t: Time) -> Duration {
        let deadline = self.start + self.tick.saturating_mul(t.min(u64::from(u32::MAX)) as u32);
        deadline.saturating_duration_since(Instant::now())
    }
}

/// A time source whose clock runs at a rational multiple of another's,
/// plus a fixed offset: local tick = `offset + inner·num/den`. This is
/// how per-node clock drift and skew are injected into the live runtime —
/// a node driven by a `SkewedClock` observes deadlines early (fast clock,
/// `num > den`) or late (slow clock), while the rest of the cluster keeps
/// true time.
#[derive(Clone, Debug)]
pub struct SkewedClock<C> {
    inner: C,
    offset: Time,
    num: u64,
    den: u64,
}

impl<C: TimeSource> SkewedClock<C> {
    /// Skew `inner` by `offset` ticks and a `num/den` rate.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero (a stopped clock hangs a node).
    pub fn new(inner: C, offset: Time, num: u64, den: u64) -> Self {
        assert!(num > 0 && den > 0, "skew rate must be positive");
        SkewedClock {
            inner,
            offset,
            num,
            den,
        }
    }

    /// Map a true tick onto this clock's local tick.
    pub fn map(&self, t: Time) -> Time {
        self.offset + t.saturating_mul(self.num) / self.den
    }

    /// The true tick at which this clock first reads `local` or more
    /// (saturating; used to translate local deadlines back to true time).
    fn unmap(&self, local: Time) -> Time {
        if local <= self.offset {
            return 0;
        }
        // Smallest t with offset + t*num/den >= local.
        let need = local - self.offset;
        need.saturating_mul(self.den).div_ceil(self.num)
    }
}

impl<C: TimeSource> TimeSource for SkewedClock<C> {
    fn now(&self) -> Time {
        self.map(self.inner.now())
    }

    fn until(&self, t: Time) -> Duration {
        self.inner.until(self.unmap(t))
    }
}

/// A manually advanced time source for deterministic runs. Cloning
/// shares the underlying counter, so every node of a virtual cluster
/// observes the same tick.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A virtual clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `ticks`.
    pub fn advance(&self, ticks: Time) {
        self.0.fetch_add(ticks, Ordering::SeqCst);
    }
}

impl TimeSource for VirtualClock {
    fn now(&self) -> Time {
        self.0.load(Ordering::SeqCst)
    }

    fn until(&self, _t: Time) -> Duration {
        Duration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_shared_and_manual() {
        let a = VirtualClock::new();
        let b = a.clone();
        assert_eq!(a.now(), 0);
        a.advance(5);
        assert_eq!(b.now(), 5);
        assert_eq!(b.until(100), Duration::ZERO);
    }

    #[test]
    fn wall_clock_advances_with_real_time() {
        let c = WallClock::new(Duration::from_millis(1));
        let t0 = c.now();
        std::thread::sleep(Duration::from_millis(10));
        assert!(c.now() >= t0 + 5, "clock must have advanced several ticks");
        // A far-future tick is a positive wait; a past tick is zero.
        assert!(c.until(1_000_000) > Duration::ZERO);
        assert_eq!(c.until(0), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_tick_is_rejected() {
        WallClock::new(Duration::ZERO);
    }

    #[test]
    fn skewed_clock_runs_fast_slow_and_offset() {
        let base = VirtualClock::new();
        let fast = SkewedClock::new(base.clone(), 0, 3, 2);
        let slow = SkewedClock::new(base.clone(), 0, 1, 2);
        let ahead = SkewedClock::new(base.clone(), 10, 1, 1);
        base.advance(100);
        assert_eq!(fast.now(), 150);
        assert_eq!(slow.now(), 50);
        assert_eq!(ahead.now(), 110);
        // Deadline translation: local 150 on the fast clock is true 100.
        assert_eq!(fast.unmap(150), 100);
        assert_eq!(slow.unmap(50), 100);
        assert_eq!(ahead.unmap(5), 0, "already past");
        assert_eq!(fast.until(10_000), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "skew rate")]
    fn zero_skew_rate_is_rejected() {
        SkewedClock::new(VirtualClock::new(), 0, 0, 1);
    }
}
