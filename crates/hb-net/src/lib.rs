//! `hb-net` — a live runtime for the accelerated heartbeat protocols.
//!
//! The sans-IO machines in `hb-core` describe *what* the coordinator and
//! responders do at each tick; `hb-sim` executes them against a simulated
//! clock and channel. This crate runs the **unmodified** machines in real
//! time:
//!
//! * [`wire`] — a tiny length-prefixed codec for [`hb_core::Heartbeat`]
//!   frames (version byte, fuzz-resistant decoding);
//! * [`transport`] — the [`Transport`](transport::Transport) abstraction,
//!   with two implementations: [`loopback`] (in-process, with injectable
//!   Bernoulli / burst loss and delays drawn exactly like the simulator's
//!   channel) and [`udp`] (one `std::net::UdpSocket` per node, no async
//!   runtime);
//! * [`time`] — the [`TimeSource`](time::TimeSource) abstraction: a
//!   wall-clock mapping protocol ticks onto a real tick duration, and a
//!   manually-advanced virtual clock for deterministic tests;
//! * [`node`] — [`NodeRuntime`](node::NodeRuntime), the deadline-driven
//!   event loop that polls a machine forward tick by tick, honouring
//!   `FixLevel::ReceivePriority` (drain deliverable messages before firing
//!   a simultaneous timeout, Atif & Mousavi §6.1);
//! * [`events`] — per-node counters and the shared sim/live JSON-lines
//!   event schema;
//! * [`cluster`] — [`VirtualCluster`](cluster::VirtualCluster), a
//!   deterministically steppable coordinator + N participants harness over
//!   loopback producing the same
//!   [`RunSummary`](hb_sim::schema::RunSummary) as the simulator, for
//!   direct live-vs-sim cross-validation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod events;
pub mod loopback;
pub mod node;
pub mod time;
pub mod transport;
pub mod udp;
pub mod wire;

pub use cluster::{ClusterConfig, LiveReport, VirtualCluster};
pub use events::{Counters, EventSink, EventTap, SharedTap};
pub use loopback::{Faults, LoopbackEndpoint, LoopbackNet, NetStats};
pub use node::{NodeReport, NodeRuntime};
pub use time::{SkewedClock, Time, TimeSource, VirtualClock, WallClock};
pub use transport::{Recv, Transport};
pub use udp::UdpTransport;
pub use wire::{Command, DecodeError, Frame, WIRE_VERSION};
