//! A deterministically steppable cluster: coordinator + N participants
//! over loopback, under virtual time.
//!
//! [`VirtualCluster`] wires [`NodeRuntime`]s together over a
//! [`LoopbackNet`] and advances them tick by tick, with scheduled crash /
//! leave injection delivered over the control channel — the live
//! counterpart of [`hb_sim::World`], producing the same
//! [`RunSummary`](hb_sim::schema::RunSummary) schema so runs from the two
//! substrates can be compared directly.

use hb_core::coordinator::CoordSpec;
use hb_core::responder::RespSpec;
use hb_core::{FixLevel, Params, Pid, Status, Variant};
use hb_sim::schema::RunSummary;

use crate::events::{EventSink, SharedTap};
use crate::loopback::{Faults, LoopbackEndpoint, LoopbackNet};
use crate::node::{NodeReport, NodeRuntime};
use crate::time::Time;
use crate::transport::Transport;
use crate::wire::{Command, Frame};

/// Static configuration of a virtual cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level.
    pub fix: FixLevel,
    /// Number of participants.
    pub n: usize,
    /// Loopback fault plan.
    pub faults: Faults,
    /// Seed for the network's loss/delay randomness.
    pub seed: u64,
    /// Record per-node event logs.
    pub record_events: bool,
}

/// What one live cluster run produced.
#[derive(Debug)]
pub struct LiveReport {
    /// The run summary in the shared sim/live schema.
    pub summary: RunSummary,
    /// Per-node reports (index 0 = coordinator; participants that never
    /// started are absent).
    pub nodes: Vec<NodeReport>,
}

/// A stepping live cluster under virtual time.
pub struct VirtualCluster {
    cfg: ClusterConfig,
    net: LoopbackNet,
    /// `nodes[0]` is the coordinator; `nodes[i]` participant `i` (absent
    /// until its start time).
    nodes: Vec<Option<NodeRuntime<LoopbackEndpoint>>>,
    injector: LoopbackEndpoint,
    start_at: Vec<Time>,
    injections: Vec<(Time, Pid, Command)>,
    now: Time,
    statuses: Vec<Option<(Status, bool)>>,
    crashes: Vec<(Pid, Time)>,
    nv_inactivations: Vec<(Pid, Time)>,
    leaves: Vec<(Pid, Time)>,
    revives: Vec<(Pid, Time)>,
    /// Revived participants still re-converging: `(pid, epoch,
    /// revived_at, detected_at)`. Detection = the coordinator registered
    /// the fresh epoch; stability = the revived node is an active,
    /// joined member again.
    pending_reconv: Vec<(Pid, u8, Time, Option<Time>)>,
    reconv_detects: Vec<(Pid, Time)>,
    reconv_stables: Vec<(Pid, Time)>,
    all_inactive_at: Option<Time>,
    /// A live event tap (e.g. a streaming monitor) attached to every
    /// node, including late joiners.
    tap: Option<SharedTap>,
}

impl VirtualCluster {
    /// Build a cluster; nothing runs until [`step`](Self::step).
    pub fn new(cfg: ClusterConfig) -> Self {
        // endpoints: 0..=n for the nodes, n+1 for the out-of-band injector
        let net = LoopbackNet::new(cfg.n + 2, cfg.faults, cfg.seed);
        let coord_spec = CoordSpec::new(cfg.variant, cfg.params, cfg.n, cfg.fix);
        let mut coord = NodeRuntime::coordinator(coord_spec, net.endpoint(0));
        if cfg.record_events {
            coord = coord.with_sink(EventSink::memory());
        }
        let mut nodes: Vec<Option<NodeRuntime<LoopbackEndpoint>>> = vec![Some(coord)];
        nodes.extend((0..cfg.n).map(|_| None));
        let injector = net.endpoint(cfg.n + 1);
        VirtualCluster {
            net,
            nodes,
            injector,
            start_at: vec![0; cfg.n],
            injections: Vec::new(),
            now: 0,
            statuses: vec![None; cfg.n + 1],
            crashes: Vec::new(),
            nv_inactivations: Vec::new(),
            leaves: Vec::new(),
            revives: Vec::new(),
            pending_reconv: Vec::new(),
            reconv_detects: Vec::new(),
            reconv_stables: Vec::new(),
            all_inactive_at: None,
            tap: None,
            cfg,
        }
    }

    /// Attach a live [`EventTap`](crate::events::EventTap) — e.g. a
    /// streaming requirement monitor — to every node in the cluster,
    /// including participants that start later. Each node feeds the tap
    /// its own events; taps see the merged stream in polling order.
    pub fn attach_tap(&mut self, tap: SharedTap) {
        for node in self.nodes.iter_mut().flatten() {
            node.attach_tap(tap.clone());
        }
        self.tap = Some(tap);
    }

    /// Crash `pid` at tick `t` (delivered as a control frame).
    pub fn schedule_crash(&mut self, pid: Pid, t: Time) {
        assert!(pid <= self.cfg.n, "pid {pid} out of range");
        self.injections.push((t, pid, Command::Crash));
    }

    /// Make participant `pid` leave at the first beat at or after `t`.
    pub fn schedule_leave(&mut self, pid: Pid, t: Time) {
        assert!((1..=self.cfg.n).contains(&pid), "pid {pid} out of range");
        self.injections.push((t, pid, Command::Leave));
    }

    /// Revive participant `pid` at tick `t` (§7 rejoin): a crashed node
    /// restarts with a fresh epoch; a live node ignores the command.
    pub fn schedule_revive(&mut self, pid: Pid, t: Time) {
        assert!((1..=self.cfg.n).contains(&pid), "pid {pid} out of range");
        self.injections.push((t, pid, Command::Revive));
    }

    fn revives_pending(&self) -> bool {
        self.injections
            .iter()
            .any(|&(t, _, cmd)| cmd == Command::Revive && t >= self.now)
    }

    /// Delay participant `pid`'s start until tick `t`.
    ///
    /// # Panics
    ///
    /// Panics if the run has begun or `pid` is out of range.
    pub fn schedule_start(&mut self, pid: Pid, t: Time) {
        assert!((1..=self.cfg.n).contains(&pid), "pid {pid} out of range");
        assert_eq!(self.now, 0, "starts must be scheduled before running");
        self.start_at[pid - 1] = t;
    }

    /// Current tick.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Whether the coordinator and every started, not-left participant
    /// are inactive — the cluster-wide detection condition.
    pub fn all_inactive(&self) -> bool {
        let coord_inactive = self.nodes[0]
            .as_ref()
            .is_some_and(|c| c.status().is_inactive());
        coord_inactive
            && self.nodes[1..]
                .iter()
                .flatten()
                .all(|p| p.status().is_inactive() || p.left())
    }

    /// Advance the cluster by one tick: start late joiners, deliver due
    /// injections, drain every node (and every zero-delay reply chain)
    /// at the current tick, then move time forward.
    pub fn step(&mut self) {
        let now = self.now;
        for i in 0..self.cfg.n {
            if self.nodes[i + 1].is_none() && self.start_at[i] == now {
                // Frames sent before a node exists vanish, as in the sim.
                self.net.purge(i + 1);
                let spec = RespSpec::new(self.cfg.variant, self.cfg.params, self.cfg.fix);
                let mut node =
                    NodeRuntime::participant(i + 1, spec, self.net.endpoint(i + 1)).started_at(now);
                if self.cfg.record_events {
                    node = node.with_sink(EventSink::memory());
                }
                if let Some(tap) = &self.tap {
                    node.attach_tap(tap.clone());
                }
                self.nodes[i + 1] = Some(node);
            }
        }
        let src = self.cfg.n + 1;
        let mut pending = std::mem::take(&mut self.injections);
        pending.retain(|&(t, pid, cmd)| {
            if t != now {
                return true;
            }
            self.injector
                .send(now, pid, &Frame::control(src, cmd), 0)
                .expect("loopback send cannot fail");
            false
        });
        self.injections = pending;

        loop {
            for node in self.nodes.iter_mut().flatten() {
                node.poll(now).expect("loopback polling cannot fail");
            }
            if !self.net.any_deliverable(now) {
                break;
            }
        }

        self.observe(now);
        if self.all_inactive_at.is_none() && self.all_inactive() {
            self.all_inactive_at = Some(now);
        }
        self.now += 1;
    }

    /// Record status transitions (crash / nv-inactivation / leave /
    /// revive times) and resolve pending re-convergences.
    fn observe(&mut self, now: Time) {
        for (pid, node) in self.nodes.iter().enumerate() {
            let Some(node) = node else { continue };
            let cur = (node.status(), node.left());
            let prev = self.statuses[pid];
            if prev.map(|(s, _)| s) != Some(cur.0) {
                match cur.0 {
                    Status::Crashed => self.crashes.push((pid, now)),
                    Status::NvInactive => self.nv_inactivations.push((pid, now)),
                    Status::Active => {
                        // Crashed -> Active is only reachable via revive.
                        if prev.map(|(s, _)| s) == Some(Status::Crashed) {
                            self.revives.push((pid, now));
                            self.pending_reconv.push((pid, node.epoch(), now, None));
                            self.all_inactive_at = None;
                        }
                    }
                }
            }
            if prev.map(|(_, l)| l) != Some(cur.1) && cur.1 {
                self.leaves.push((pid, now));
            }
            self.statuses[pid] = Some(cur);
        }
        let mut i = 0;
        while i < self.pending_reconv.len() {
            let (pid, epoch, t0, detected) = self.pending_reconv[i];
            let mut detected = detected;
            if detected.is_none()
                && self.nodes[0].as_ref().is_some_and(|coord| {
                    coord
                        .registered_epoch(pid)
                        .is_some_and(|bar| hb_core::serial::serial_ge(bar, epoch))
                })
            {
                detected = Some(now);
                self.reconv_detects.push((pid, now - t0));
            }
            let stable = detected.is_some()
                && self.nodes[pid].as_ref().is_some_and(|n| {
                    n.status() == Status::Active && n.joined() && n.epoch() == epoch
                });
            if stable {
                self.reconv_stables.push((pid, now - t0));
                self.pending_reconv.remove(i);
            } else {
                self.pending_reconv[i].3 = detected;
                i += 1;
            }
        }
    }

    /// Run until tick `t` or until everything is inactive (a pending
    /// revive keeps the run alive — a crashed node is coming back).
    pub fn run_until(&mut self, t: Time) {
        while self.now < t && (!self.all_inactive() || self.revives_pending()) {
            self.step();
        }
    }

    /// Finish the run and produce the report.
    pub fn into_report(self) -> LiveReport {
        let stats = self.net.stats();
        let first_crash = self.crashes.iter().map(|&(_, t)| t).min();
        let detection_delay = match (first_crash, self.all_inactive_at) {
            (Some(c), Some(d)) => Some(d.saturating_sub(c)),
            _ => None,
        };
        let false_inactivations = if self.crashes.is_empty() {
            self.nv_inactivations.len() as u32
        } else {
            0
        };
        let final_status: Vec<Status> = self
            .nodes
            .iter()
            .map(|n| n.as_ref().map_or(Status::Active, |n| n.status()))
            .collect();
        let (stale_admitted, stale_filtered) =
            self.nodes[0].as_ref().map_or((0, 0), |c| c.stale_beats());
        let summary = RunSummary {
            source: "live",
            duration: self.now,
            messages_sent: stats.sent,
            messages_delivered: stats.delivered,
            messages_lost: stats.lost,
            crashes: self.crashes,
            nv_inactivations: self.nv_inactivations,
            leaves: self.leaves,
            revives: self.revives,
            reconv_detect: self.reconv_detects.iter().map(|&(_, d)| d).max(),
            reconv_stable: self.reconv_stables.iter().map(|&(_, d)| d).max(),
            stale_beats_admitted: stale_admitted,
            stale_beats_filtered: stale_filtered,
            detection_delay,
            false_inactivations,
            monitor: None,
            final_status,
        };
        let nodes = self
            .nodes
            .into_iter()
            .flatten()
            .map(NodeRuntime::finish)
            .collect();
        LiveReport { summary, nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(variant: Variant, tmin: u32, tmax: u32, n: usize) -> ClusterConfig {
        ClusterConfig {
            variant,
            params: Params::new(tmin, tmax).unwrap(),
            fix: FixLevel::Full,
            n,
            faults: Faults::none(),
            seed: 1,
            record_events: false,
        }
    }

    #[test]
    fn lossless_steady_state_never_inactivates() {
        let mut cl = VirtualCluster::new(cfg(Variant::Binary, 2, 8, 1));
        cl.run_until(2_000);
        let r = cl.into_report();
        assert_eq!(r.summary.false_inactivations, 0);
        assert!(r.summary.nv_inactivations.is_empty());
        // steady-state overhead ≈ 2/tmax
        let rate = r.summary.messages_sent as f64 / r.summary.duration as f64;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn participant_crash_detected_within_bound_static_n3() {
        let mut cl = VirtualCluster::new(cfg(Variant::Static, 2, 8, 3));
        cl.schedule_crash(2, 100);
        cl.run_until(10_000);
        assert!(cl.all_inactive(), "a crash must bring the network down");
        let r = cl.into_report();
        let delay = r.summary.detection_delay.expect("detection");
        let bound = Time::from(
            cfg(Variant::Static, 2, 8, 3)
                .params
                .p0_bound_corrected(Variant::Static)
                + cfg(Variant::Static, 2, 8, 3)
                    .params
                    .responder_bound_corrected(Variant::Static)
                + 2,
        );
        assert!(delay <= bound, "delay {delay} > bound {bound}");
    }

    #[test]
    fn expanding_late_start_joins_cleanly() {
        let mut cl = VirtualCluster::new(cfg(Variant::Expanding, 2, 8, 1));
        cl.schedule_start(1, 40);
        cl.run_until(400);
        let r = cl.into_report();
        assert!(r.summary.nv_inactivations.is_empty());
        assert_eq!(r.summary.final_status, vec![Status::Active, Status::Active]);
        assert!(r.nodes[1].counters.join_sends >= 1);
    }

    #[test]
    fn dynamic_leave_disturbs_nobody() {
        let mut cl = VirtualCluster::new(cfg(Variant::Dynamic, 2, 8, 2));
        cl.schedule_leave(1, 100);
        cl.run_until(2_000);
        let r = cl.into_report();
        assert_eq!(r.summary.leaves.len(), 1);
        assert_eq!(r.summary.leaves[0].0, 1);
        assert!(r.summary.nv_inactivations.is_empty());
        assert_eq!(r.summary.final_status[0], Status::Active);
    }

    #[test]
    fn crash_then_revive_reconverges_under_the_full_fix() {
        let mut cl = VirtualCluster::new(cfg(Variant::Expanding, 2, 8, 1));
        cl.schedule_crash(1, 100);
        cl.schedule_revive(1, 104);
        cl.run_until(2_000);
        let r = cl.into_report();
        assert_eq!(r.summary.revives, vec![(1, 104)]);
        let detect = r.summary.reconv_detect.expect("must re-register");
        // Re-registration takes at most one join-send period plus delivery.
        assert!(detect <= 16, "detection took {detect}");
        // Expanding has a join phase: the handshake completes (stable)
        // only when the next beat echoes the fresh epoch back.
        let stable = r.summary.reconv_stable.expect("must re-join");
        assert!(stable >= detect, "stable {stable} before detect {detect}");
        assert!(stable <= detect + 16, "stabilisation took {stable}");
        assert_eq!(r.summary.final_status, vec![Status::Active, Status::Active]);
        assert!(r.summary.nv_inactivations.is_empty());
        assert_eq!(r.nodes[1].counters.revives, 1);
    }

    #[test]
    fn identical_seeds_are_bit_identical() {
        let run = |seed| {
            let mut c = cfg(Variant::Binary, 2, 8, 1);
            c.faults = Faults::bernoulli(0.2);
            c.seed = seed;
            let mut cl = VirtualCluster::new(c);
            cl.schedule_crash(1, 200);
            cl.run_until(5_000);
            cl.into_report().summary
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn event_logs_capture_the_story() {
        let mut c = cfg(Variant::Binary, 2, 8, 1);
        c.record_events = true;
        let mut cl = VirtualCluster::new(c);
        cl.schedule_crash(1, 50);
        cl.run_until(1_000);
        let r = cl.into_report();
        let coord_log = &r.nodes[0].log;
        assert!(!coord_log.is_empty());
        let text = coord_log.to_string();
        assert!(text.contains("timeout at p[0]"), "{text}");
        assert!(text.contains("NON-VOLUNTARILY"), "{text}");
    }
}
