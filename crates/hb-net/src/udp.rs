//! A UDP transport over `std::net::UdpSocket` (no async runtime).
//!
//! One socket per node, one frame per datagram. Peers are addressed by
//! pid through a routing table that can be pre-configured and is also
//! learned from incoming traffic (a frame carries its sender's pid, so
//! the first join beat teaches the coordinator where a participant
//! lives — no registration step needed for the expanding/dynamic
//! variants).
//!
//! Receiving is fuzz-resistant: datagrams that fail to decode are counted
//! and dropped, never propagated as errors — a hostile or confused sender
//! cannot crash a node.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs, UdpSocket};
use std::time::Duration;

use hb_core::Pid;

use crate::time::Time;
use crate::transport::{Recv, Transport};
use crate::wire::Frame;

/// Maximum datagram size accepted. Frames are 8 bytes; anything larger
/// than this is hostile by definition and dropped at the socket.
const MAX_DATAGRAM: usize = 512;

/// A [`Transport`] over one UDP socket.
pub struct UdpTransport {
    socket: UdpSocket,
    /// Dense pid-indexed routing table: `peers[pid]` is the address of
    /// `pid`, growing on demand. Pids are small and contiguous (slot
    /// numbers), so a flat table beats hashing on the per-beat path.
    peers: Vec<Option<SocketAddr>>,
    queued: VecDeque<Recv>,
    decode_errors: u64,
    soft_errors: u64,
    buf: [u8; MAX_DATAGRAM],
    /// Scratch the outgoing frame is encoded into — reused across sends.
    send_buf: Vec<u8>,
    /// The frame currently sitting encoded in `send_buf`. A coordinator
    /// broadcasting one beat to `n` peers hits this cache `n - 1` times
    /// and encodes once.
    encoded: Option<Frame>,
}

/// Whether an I/O error is a transient localhost condition the transport
/// absorbs rather than surfaces: a full send buffer behaves like a lossy
/// network, and `ECONNREFUSED`/`ECONNRESET` are ICMP echoes of an earlier
/// datagram that bounced off a dead peer — exactly the message loss the
/// protocols are built to tolerate.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::HostUnreachable
            | io::ErrorKind::NetworkUnreachable
    )
}

impl UdpTransport {
    /// Bind a socket (use port 0 for an ephemeral port).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let socket = UdpSocket::bind(addr)?;
        Ok(UdpTransport {
            socket,
            peers: Vec::new(),
            queued: VecDeque::new(),
            decode_errors: 0,
            soft_errors: 0,
            buf: [0; MAX_DATAGRAM],
            send_buf: Vec::new(),
            encoded: None,
        })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Route `pid` to `addr`.
    pub fn add_peer(&mut self, pid: Pid, addr: SocketAddr) {
        if pid >= self.peers.len() {
            self.peers.resize(pid + 1, None);
        }
        self.peers[pid] = Some(addr);
    }

    /// The known address of `pid`, if any.
    pub fn peer(&self, pid: Pid) -> Option<SocketAddr> {
        self.peers.get(pid).copied().flatten()
    }

    /// Datagrams that failed to decode so far.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    /// Transient socket errors absorbed so far (full buffers, ICMP
    /// connection-refused echoes, interrupted syscalls).
    pub fn soft_errors(&self) -> u64 {
        self.soft_errors
    }

    /// Decode one received datagram; on success queue it and learn the
    /// sender's address.
    fn accept(&mut self, len: usize, from: SocketAddr) {
        match Frame::decode_datagram(&self.buf[..len]) {
            Ok(frame) => {
                // Control frames come from out-of-band injectors; don't
                // let them overwrite protocol routes.
                if matches!(frame, Frame::Beat { .. }) && self.peer(frame.src()).is_none() {
                    self.add_peer(frame.src(), from);
                }
                self.queued.push_back(Recv {
                    frame,
                    reply_budget: 0,
                });
            }
            Err(_) => self.decode_errors += 1,
        }
    }
}

impl Transport for UdpTransport {
    fn send(&mut self, _now: Time, dst: Pid, frame: &Frame, _budget: u32) -> io::Result<()> {
        let Some(addr) = self.peer(dst) else {
            return Err(io::Error::new(
                io::ErrorKind::NotConnected,
                format!("no route to pid {dst}"),
            ));
        };
        if self.encoded != Some(*frame) {
            frame.encode_into(&mut self.send_buf);
            self.encoded = Some(*frame);
        }
        loop {
            match self.socket.send_to(&self.send_buf, addr) {
                Ok(_) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_transient(&e) => {
                    // The datagram is gone, as if the network ate it —
                    // which the heartbeat protocols tolerate by design.
                    self.soft_errors += 1;
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_recv(&mut self, _now: Time) -> io::Result<Option<Recv>> {
        if let Some(r) = self.queued.pop_front() {
            return Ok(Some(r));
        }
        self.socket.set_nonblocking(true)?;
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((len, from)) => self.accept(len, from),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if is_transient(&e) => {
                    // ICMP echo of an own datagram that bounced; the
                    // socket is still healthy — keep draining.
                    self.soft_errors += 1;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.queued.pop_front())
    }

    fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        if !self.queued.is_empty() {
            return Ok(());
        }
        self.socket.set_nonblocking(false)?;
        self.socket
            .set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        match self.socket.recv_from(&mut self.buf) {
            Ok((len, from)) => self.accept(len, from),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_transient(&e) => {
                // A transient error is a spurious wakeup; callers re-poll.
                self.soft_errors += 1;
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Heartbeat;

    fn pair() -> (UdpTransport, UdpTransport) {
        let mut a = UdpTransport::bind("127.0.0.1:0").unwrap();
        let mut b = UdpTransport::bind("127.0.0.1:0").unwrap();
        let (aa, ba) = (a.local_addr().unwrap(), b.local_addr().unwrap());
        a.add_peer(1, ba);
        b.add_peer(0, aa);
        (a, b)
    }

    fn recv_with_retry(t: &mut UdpTransport) -> Option<Recv> {
        for _ in 0..100 {
            t.wait(Duration::from_millis(20)).unwrap();
            if let Some(r) = t.try_recv(0).unwrap() {
                return Some(r);
            }
        }
        None
    }

    #[test]
    fn frames_cross_localhost() {
        let (mut a, mut b) = pair();
        let f = Frame::beat(0, Heartbeat::plain());
        a.send(0, 1, &f, 2).unwrap();
        let r = recv_with_retry(&mut b).expect("datagram must arrive");
        assert_eq!(r.frame, f);
        assert_eq!(r.reply_budget, 0);
    }

    #[test]
    fn sender_address_is_learned_from_beats() {
        let (mut a, mut b) = pair();
        // b only knows a; a learns nothing about pid 5 until it beats.
        assert_eq!(a.peer(5), None);
        b.send(0, 0, &Frame::beat(5, Heartbeat::plain()), 0)
            .unwrap();
        recv_with_retry(&mut a).unwrap();
        assert_eq!(a.peer(5), Some(b.local_addr().unwrap()));
    }

    #[test]
    fn garbage_datagrams_are_counted_not_fatal() {
        let (mut a, mut b) = pair();
        let raw = UdpSocket::bind("127.0.0.1:0").unwrap();
        raw.send_to(&[0xFF; 16], b.local_addr().unwrap()).unwrap();
        raw.send_to(&[], b.local_addr().unwrap()).unwrap();
        a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
            .unwrap();
        let r = recv_with_retry(&mut b).expect("the good frame still arrives");
        assert_eq!(r.frame, Frame::beat(0, Heartbeat::plain()));
        assert!(b.decode_errors() >= 1);
    }

    #[test]
    fn dead_peer_is_survived_as_loss() {
        // Send repeatedly to a port whose socket is gone: the kernel may
        // echo ICMP connection-refused on any later call, and none of it
        // may surface as a fatal transport error.
        let mut a = UdpTransport::bind("127.0.0.1:0").unwrap();
        let dead = {
            let victim = UdpSocket::bind("127.0.0.1:0").unwrap();
            victim.local_addr().unwrap()
        }; // victim dropped: port closed
        a.add_peer(1, dead);
        for _ in 0..20 {
            a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
                .expect("send to a dead peer must not be fatal");
            assert!(
                a.try_recv(0)
                    .expect("recv after bounce must not be fatal")
                    .is_none(),
                "nothing real can arrive"
            );
            a.wait(Duration::from_millis(1))
                .expect("wait after bounce must not be fatal");
        }
    }

    #[test]
    fn peer_socket_closed_mid_run_is_survived() {
        // Regression: a peer that exchanges traffic and *then* dies
        // (its socket closed mid-run, as a crash/revive plan does over
        // UDP) leaves ICMP connection-refused echoes queued on our
        // socket. `try_recv` must absorb them as transient loss and
        // keep draining — not surface an error mid-run.
        let (mut a, b) = pair();
        let b_addr = b.local_addr().unwrap();
        {
            let mut b = b;
            a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
                .unwrap();
            recv_with_retry(&mut b).expect("peer alive: frame arrives");
        } // b dropped here: the socket closes mid-run
        for _ in 0..20 {
            a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
                .expect("send after peer close must not be fatal");
            assert!(a
                .try_recv(0)
                .expect("try_recv after peer close must not be fatal")
                .is_none());
            a.wait(Duration::from_millis(1))
                .expect("wait after peer close must not be fatal");
        }
        // The route is still in place for a revived peer on the same
        // address (the rebind re-teaches it on the first join beat).
        assert_eq!(a.peer(1), Some(b_addr));
    }

    #[test]
    fn transient_error_kinds_are_classified() {
        for kind in [
            io::ErrorKind::WouldBlock,
            io::ErrorKind::ConnectionRefused,
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
        ] {
            assert!(is_transient(&io::Error::from(kind)), "{kind:?}");
        }
        for kind in [
            io::ErrorKind::NotConnected,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::AddrInUse,
        ] {
            assert!(!is_transient(&io::Error::from(kind)), "{kind:?}");
        }
    }

    #[test]
    fn unroutable_destination_errors() {
        let (mut a, _b) = pair();
        assert!(a
            .send(0, 9, &Frame::beat(0, Heartbeat::plain()), 0)
            .is_err());
    }
}
