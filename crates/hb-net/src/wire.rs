//! The length-prefixed wire format for heartbeat frames.
//!
//! Every frame starts with a `len` prefix (u16 LE, counting everything
//! after the two length bytes), a version byte and a kind byte; the rest
//! of the body depends on the kind:
//!
//! ```text
//! beat / control (6 bytes):
//! +---------+---------+------+----------+---------+-------+
//! | len u16 | version | kind | src u16  | payload | epoch |
//! |  (LE)   |  (= 3)  | u8   |  (LE)    |  u8     |  u8   |
//! +---------+---------+------+----------+---------+-------+
//!
//! view / state-reply (11 + 3·count bytes):
//! +---------+---------+------+---------+-------------+-----------+-------+------------------------+
//! | len u16 | version | kind | src u16 | view_no u32 | coord u16 | count | (pid u16, bar u8) × n  |
//! +---------+---------+------+---------+-------------+-----------+-------+------------------------+
//!
//! state-request (9 bytes):
//! +---------+---------+------+---------+-------+-------------+
//! | len u16 | version | kind | src u16 | epoch | view_no u32 |
//! +---------+---------+------+---------+-------+-------------+
//! ```
//!
//! Version 2 appended the epoch byte for the §7 rejoin protocol; version
//! 3 added the membership kinds (view change, state request, state reply)
//! for the `hb-member` layer. Version-1 and version-2 frames are rejected
//! with [`DecodeError::Version`] rather than misparsed — the version byte
//! is checked before anything else in the body. The same encoding is used
//! for UDP datagrams (exactly one frame per datagram) and would frame a
//! byte stream unchanged; [`Frame::decode`] returns the number of bytes
//! consumed for that purpose.
//!
//! Decoding is total: any byte sequence produces either a frame or a
//! [`DecodeError`] — never a panic and never an out-of-bounds read. Frames
//! claiming more than [`MAX_FRAME`] bytes are rejected before any
//! allocation, so a hostile peer cannot make a receiver buffer unbounded
//! data. View frames are canonical: members strictly ascending, count
//! within [`MAX_VIEW_MEMBERS`](hb_core::MAX_VIEW_MEMBERS), coordinator a
//! member — one frame, one byte string.

use std::fmt;

use hb_core::view::{View, MAX_VIEW_MEMBERS};
use hb_core::{Heartbeat, Pid};

/// Current wire-format version, carried in every frame. Version 2 added
/// the trailing epoch byte; version 3 the membership kinds.
pub const WIRE_VERSION: u8 = 3;

/// Upper bound on the `len` field. Beat frames are 6 bytes and a
/// full-capacity view frame is `11 + 3·16 = 59`; the cap bounds what a
/// decoder will accept.
pub const MAX_FRAME: usize = 64;

const KIND_BEAT: u8 = 0;
const KIND_CONTROL: u8 = 1;
const KIND_VIEW: u8 = 2;
const KIND_STATE_REQ: u8 = 3;
const KIND_STATE_REPLY: u8 = 4;

/// Byte length of the body (everything after the length prefix) of a
/// beat or control frame.
const BODY_LEN: usize = 6;
/// Body length of a state-request frame.
const STATE_REQ_LEN: usize = 9;
/// Body length of a view / state-reply frame naming `count` members.
const fn view_len(count: usize) -> usize {
    11 + 3 * count
}

/// Out-of-band commands for fault injection and lifecycle control.
///
/// Control frames share the heartbeat wire format so the same codec, the
/// same sockets and the same fuzz-resistance arguments cover them, but
/// they are *not* protocol messages: loopback transports deliver them
/// instantly and losslessly, and they bypass the message counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// Voluntarily inactivate the receiving process (fault injection).
    Crash,
    /// Ask a dynamic-protocol participant to leave at the next beat.
    Leave,
    /// Stop the receiving node's run loop.
    Shutdown,
    /// Restart a crashed participant with a fresh epoch (§7 rejoin).
    Revive,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Command::Crash => "crash",
            Command::Leave => "leave",
            Command::Shutdown => "shutdown",
            Command::Revive => "revive",
        })
    }
}

/// One wire frame: a protocol heartbeat or a control command, stamped
/// with the sender's pid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Frame {
    /// A protocol heartbeat from `src`.
    Beat {
        /// Sending process.
        src: Pid,
        /// The heartbeat payload.
        hb: Heartbeat,
    },
    /// An out-of-band control command from `src`.
    Control {
        /// Sending process (by convention an out-of-band injector pid).
        src: Pid,
        /// The command.
        cmd: Command,
    },
    /// A membership view announcement (install or re-assert) from `src`.
    ViewChange {
        /// Announcing process (the view's coordinator, normally).
        src: Pid,
        /// The view being announced.
        view: View,
    },
    /// A joiner (or demoted ex-coordinator) asking the coordinator for
    /// the current view.
    StateRequest {
        /// Requesting process.
        src: Pid,
        /// The requester's incarnation epoch (becomes its bar on admit).
        epoch: u8,
        /// The requester's last known view number, so a coordinator can
        /// tell a cold joiner from a stale straggler.
        view_no: u32,
    },
    /// The coordinator's state-transfer reply carrying the current view.
    StateReply {
        /// Replying coordinator.
        src: Pid,
        /// The current view.
        view: View,
    },
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the length prefix promises (or no prefix at all).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown wire-format version.
    Version(u8),
    /// Unknown frame kind.
    Kind(u8),
    /// A payload byte outside its valid range.
    Payload,
    /// The length prefix promises more bytes than the frame kind defines.
    Trailing,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::Oversized(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            DecodeError::Version(v) => write!(f, "unknown wire version {v}"),
            DecodeError::Kind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Payload => write!(f, "invalid payload byte"),
            DecodeError::Trailing => write!(f, "trailing bytes inside frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Frame {
    /// A heartbeat frame.
    pub fn beat(src: Pid, hb: Heartbeat) -> Self {
        Frame::Beat { src, hb }
    }

    /// A control frame.
    pub fn control(src: Pid, cmd: Command) -> Self {
        Frame::Control { src, cmd }
    }

    /// A view-change frame.
    pub fn view_change(src: Pid, view: View) -> Self {
        Frame::ViewChange { src, view }
    }

    /// A state-request frame.
    pub fn state_request(src: Pid, epoch: u8, view_no: u32) -> Self {
        Frame::StateRequest {
            src,
            epoch,
            view_no,
        }
    }

    /// A state-reply frame.
    pub fn state_reply(src: Pid, view: View) -> Self {
        Frame::StateReply { src, view }
    }

    /// The sending process.
    pub fn src(&self) -> Pid {
        match *self {
            Frame::Beat { src, .. }
            | Frame::Control { src, .. }
            | Frame::ViewChange { src, .. }
            | Frame::StateRequest { src, .. }
            | Frame::StateReply { src, .. } => src,
        }
    }

    /// Encode into a fresh buffer (length prefix included).
    ///
    /// Hot paths should prefer [`encode_into`](Self::encode_into), which
    /// reuses a caller-owned buffer instead of allocating per frame.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit in a `u16` — the wire format caps a
    /// cluster at 65535 participants.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + view_len(MAX_VIEW_MEMBERS));
        self.encode_into(&mut out);
        out
    }

    /// Encode into `out`, clearing it first (length prefix included).
    ///
    /// The buffer is caller-owned scratch: any previous contents are
    /// discarded, and after the call `out` holds exactly the encoded
    /// frame — byte-for-byte what [`encode`](Self::encode) returns. A
    /// sender broadcasting one frame to many peers encodes once and
    /// writes the same buffer to each.
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit in a `u16` — the wire format caps a
    /// cluster at 65535 participants.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        let src16 = |src: Pid| {
            u16::try_from(src)
                .expect("pid must fit the u16 wire field")
                .to_le_bytes()
        };
        let header = |out: &mut Vec<u8>, body_len: usize, kind: u8, src: Pid| {
            out.extend_from_slice(&(body_len as u16).to_le_bytes());
            out.push(WIRE_VERSION);
            out.push(kind);
            out.extend_from_slice(&src16(src));
        };
        let view_body = |out: &mut Vec<u8>, kind: u8, src: Pid, view: &View| {
            header(out, view_len(view.len()), kind, src);
            out.extend_from_slice(&view.view_no.to_le_bytes());
            out.extend_from_slice(&src16(view.coordinator));
            out.push(view.len() as u8);
            for (pid, bar) in view.entries() {
                out.extend_from_slice(&src16(pid));
                out.push(bar);
            }
        };
        match *self {
            Frame::Beat { src, hb } => {
                header(out, BODY_LEN, KIND_BEAT, src);
                out.push(u8::from(hb.flag));
                out.push(hb.epoch);
            }
            Frame::Control { src, cmd } => {
                header(out, BODY_LEN, KIND_CONTROL, src);
                out.push(match cmd {
                    Command::Crash => 0,
                    Command::Leave => 1,
                    Command::Shutdown => 2,
                    Command::Revive => 3,
                });
                out.push(0);
            }
            Frame::ViewChange { src, ref view } => view_body(out, KIND_VIEW, src, view),
            Frame::StateReply { src, ref view } => view_body(out, KIND_STATE_REPLY, src, view),
            Frame::StateRequest {
                src,
                epoch,
                view_no,
            } => {
                header(out, STATE_REQ_LEN, KIND_STATE_REQ, src);
                out.push(epoch);
                out.extend_from_slice(&view_no.to_le_bytes());
            }
        }
    }

    /// Decode one frame from the front of `buf`; on success also returns
    /// the total number of bytes consumed (prefix included), so a stream
    /// reader can advance past the frame.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
        let Some(prefix) = buf.get(..2) else {
            return Err(DecodeError::Truncated);
        };
        let len = usize::from(u16::from_le_bytes([prefix[0], prefix[1]]));
        if len > MAX_FRAME {
            return Err(DecodeError::Oversized(len));
        }
        let Some(body) = buf.get(2..2 + len) else {
            return Err(DecodeError::Truncated);
        };
        // The version byte is authoritative before any layout assumption:
        // a version-1 frame is shorter than BODY_LEN and must surface as a
        // version mismatch, not as a truncation artefact.
        match body.first() {
            None => return Err(DecodeError::Truncated),
            Some(&v) if v != WIRE_VERSION => return Err(DecodeError::Version(v)),
            Some(_) => {}
        }
        if len < 4 {
            return Err(DecodeError::Truncated);
        }
        let kind = body[1];
        let src = Pid::from(u16::from_le_bytes([body[2], body[3]]));
        // Body length is per-kind: too few bytes is a truncation, too
        // many is trailing garbage inside the frame.
        let fixed = |want: usize| match len {
            l if l < want => Err(DecodeError::Truncated),
            l if l > want => Err(DecodeError::Trailing),
            _ => Ok(()),
        };
        let decode_view = || -> Result<View, DecodeError> {
            if len < view_len(0) {
                return Err(DecodeError::Truncated);
            }
            let view_no = u32::from_le_bytes([body[4], body[5], body[6], body[7]]);
            let coordinator = Pid::from(u16::from_le_bytes([body[8], body[9]]));
            let count = usize::from(body[10]);
            if count > MAX_VIEW_MEMBERS {
                return Err(DecodeError::Payload);
            }
            fixed(view_len(count))?;
            let mut entries = Vec::with_capacity(count);
            for i in 0..count {
                let off = view_len(i);
                let pid = Pid::from(u16::from_le_bytes([body[off], body[off + 1]]));
                let bar = body[off + 2];
                // Canonical encoding: strictly ascending member pids.
                if let Some(&(prev, _)) = entries.last() {
                    if pid <= prev {
                        return Err(DecodeError::Payload);
                    }
                }
                entries.push((pid, bar));
            }
            if !entries.iter().any(|&(p, _)| p == coordinator) {
                return Err(DecodeError::Payload);
            }
            Ok(View::new(view_no, coordinator, &entries))
        };
        let frame = match kind {
            KIND_BEAT => {
                fixed(BODY_LEN)?;
                Frame::Beat {
                    src,
                    hb: match body[4] {
                        0 => Heartbeat::leave().with_epoch(body[5]),
                        1 => Heartbeat::plain().with_epoch(body[5]),
                        _ => return Err(DecodeError::Payload),
                    },
                }
            }
            KIND_CONTROL => {
                fixed(BODY_LEN)?;
                if body[5] != 0 {
                    // Control frames carry no epoch; a nonzero byte keeps
                    // the encoding canonical (one frame, one byte string).
                    return Err(DecodeError::Payload);
                }
                Frame::Control {
                    src,
                    cmd: match body[4] {
                        0 => Command::Crash,
                        1 => Command::Leave,
                        2 => Command::Shutdown,
                        3 => Command::Revive,
                        _ => return Err(DecodeError::Payload),
                    },
                }
            }
            KIND_VIEW => Frame::ViewChange {
                src,
                view: decode_view()?,
            },
            KIND_STATE_REPLY => Frame::StateReply {
                src,
                view: decode_view()?,
            },
            KIND_STATE_REQ => {
                fixed(STATE_REQ_LEN)?;
                Frame::StateRequest {
                    src,
                    epoch: body[4],
                    view_no: u32::from_le_bytes([body[5], body[6], body[7], body[8]]),
                }
            }
            k => return Err(DecodeError::Kind(k)),
        };
        Ok((frame, 2 + len))
    }

    /// Decode a datagram that must contain exactly one frame — trailing
    /// bytes after the frame are rejected.
    pub fn decode_datagram(buf: &[u8]) -> Result<Frame, DecodeError> {
        let (frame, consumed) = Frame::decode(buf)?;
        if consumed != buf.len() {
            return Err(DecodeError::Trailing);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_variant() {
        let frames = [
            Frame::beat(0, Heartbeat::plain()),
            Frame::beat(7, Heartbeat::leave()),
            Frame::beat(usize::from(u16::MAX), Heartbeat::plain()),
            Frame::beat(4, Heartbeat::plain().with_epoch(1)),
            Frame::beat(4, Heartbeat::leave().with_epoch(u8::MAX)),
            Frame::control(3, Command::Crash),
            Frame::control(0, Command::Leave),
            Frame::control(9, Command::Shutdown),
            Frame::control(9, Command::Revive),
            Frame::view_change(1, View::genesis(3)),
            Frame::view_change(2, View::new(7, 2, &[(2, 1), (5, 0), (9, 3)])),
            Frame::state_request(4, 2, 7),
            Frame::state_reply(0, View::new(u32::MAX, 0, &[(0, 0)])),
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(Frame::decode_datagram(&bytes), Ok(f), "{f:?}");
            assert_eq!(Frame::decode(&bytes), Ok((f, bytes.len())));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = Frame::beat(1, Heartbeat::plain()).encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut bytes = vec![0u8; 4];
        bytes[..2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(DecodeError::Oversized(usize::from(u16::MAX)))
        );
    }

    #[test]
    fn bad_version_kind_and_payload_are_rejected() {
        let good = Frame::beat(1, Heartbeat::plain()).encode();
        let mut v = good.clone();
        v[2] = 99;
        assert_eq!(Frame::decode(&v), Err(DecodeError::Version(99)));
        let mut k = good.clone();
        k[3] = 42;
        assert_eq!(Frame::decode(&k), Err(DecodeError::Kind(42)));
        let mut p = good.clone();
        p[6] = 2;
        assert_eq!(Frame::decode(&p), Err(DecodeError::Payload));
    }

    #[test]
    fn trailing_bytes_rejected_in_datagrams() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes.push(0);
        assert_eq!(Frame::decode_datagram(&bytes), Err(DecodeError::Trailing));
        // Stream decoding, by contrast, just reports the consumed length.
        let (f, n) = Frame::decode(&bytes).unwrap();
        assert_eq!(f, Frame::beat(1, Heartbeat::plain()));
        assert_eq!(n, bytes.len() - 1);
    }

    #[test]
    fn inflated_length_prefix_is_trailing() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes[..2].copy_from_slice(&7u16.to_le_bytes());
        bytes.push(0); // make the promised bytes available
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    fn view_frames_round_trip_at_full_capacity() {
        let entries: Vec<(Pid, u8)> = (0..MAX_VIEW_MEMBERS).map(|p| (p, p as u8)).collect();
        let f = Frame::view_change(0, View::new(3, 0, &entries));
        let bytes = f.encode();
        assert!(bytes.len() <= 2 + MAX_FRAME, "full view fits the cap");
        assert_eq!(Frame::decode_datagram(&bytes), Ok(f));
    }

    #[test]
    fn non_canonical_view_frames_are_rejected() {
        let base = Frame::view_change(1, View::new(2, 1, &[(1, 0), (3, 0)])).encode();
        // Unsorted members: swap the two member pid fields.
        let mut unsorted = base.clone();
        unsorted[13..15].copy_from_slice(&3u16.to_le_bytes());
        unsorted[16..18].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(Frame::decode(&unsorted), Err(DecodeError::Payload));
        // Coordinator outside the member list.
        let mut orphan = base.clone();
        orphan[10..12].copy_from_slice(&9u16.to_le_bytes());
        assert_eq!(Frame::decode(&orphan), Err(DecodeError::Payload));
        // Member count over the capacity cap.
        let mut oversize = base.clone();
        oversize[12] = MAX_VIEW_MEMBERS as u8 + 1;
        assert_eq!(Frame::decode(&oversize), Err(DecodeError::Payload));
        // Count that disagrees with the length prefix.
        let mut short = base;
        short[12] = 1;
        assert_eq!(Frame::decode(&short), Err(DecodeError::Trailing));
    }

    #[test]
    fn version_one_frames_are_rejected_as_version_not_truncated() {
        // A well-formed v1 frame: 5-byte body, no epoch.
        let v1 = [5u8, 0, 1, KIND_BEAT, 1, 0, 1];
        assert_eq!(Frame::decode(&v1), Err(DecodeError::Version(1)));
        // Even a v1 *control* frame fails on version before anything else.
        let v1c = [5u8, 0, 1, KIND_CONTROL, 9, 0, 2];
        assert_eq!(Frame::decode(&v1c), Err(DecodeError::Version(1)));
    }

    #[test]
    fn version_two_frames_are_rejected_as_version() {
        // A well-formed pre-membership v2 beat frame (6-byte body).
        let v2 = [6u8, 0, 2, KIND_BEAT, 1, 0, 1, 0];
        assert_eq!(Frame::decode(&v2), Err(DecodeError::Version(2)));
    }

    #[test]
    fn epoch_survives_the_round_trip() {
        for epoch in [0u8, 1, 7, 255] {
            let f = Frame::beat(2, Heartbeat::plain().with_epoch(epoch));
            let bytes = f.encode();
            let (decoded, _) = Frame::decode(&bytes).unwrap();
            match decoded {
                Frame::Beat { hb, .. } => assert_eq!(hb.epoch, epoch),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn control_frames_with_nonzero_epoch_byte_are_rejected() {
        let mut bytes = Frame::control(3, Command::Revive).encode();
        *bytes.last_mut().unwrap() = 1;
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::Payload));
    }

    #[test]
    #[should_panic(expected = "u16 wire field")]
    fn oversized_pid_panics_on_encode() {
        Frame::beat(usize::from(u16::MAX) + 1, Heartbeat::plain()).encode();
    }
}
