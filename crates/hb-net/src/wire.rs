//! The length-prefixed wire format for heartbeat frames.
//!
//! Every frame is encoded as
//!
//! ```text
//! +--------+---------+------+----------+---------+-------+
//! | len u16 | version | kind | src u16  | payload | epoch |
//! |  (LE)   |  (= 2)  | u8   |  (LE)    |  u8     |  u8   |
//! +--------+---------+------+----------+---------+-------+
//! ```
//!
//! where `len` counts everything after the two length bytes. Version 2
//! appended the epoch byte for the §7 rejoin protocol; version-1 frames
//! (no epoch) are rejected with [`DecodeError::Version`] rather than
//! misparsed — the version byte is checked before anything else in the
//! body. The same
//! encoding is used for UDP datagrams (exactly one frame per datagram) and
//! would frame a byte stream unchanged; [`Frame::decode`] returns the
//! number of bytes consumed for that purpose.
//!
//! Decoding is total: any byte sequence produces either a frame or a
//! [`DecodeError`] — never a panic and never an out-of-bounds read. Frames
//! claiming more than [`MAX_FRAME`] bytes are rejected before any
//! allocation, so a hostile peer cannot make a receiver buffer unbounded
//! data.

use std::fmt;

use hb_core::{Heartbeat, Pid};

/// Current wire-format version, carried in every frame. Version 2 added
/// the trailing epoch byte.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on the `len` field. Real frames are 6 bytes; the cap
/// leaves room for future kinds while bounding what a decoder will
/// accept.
pub const MAX_FRAME: usize = 64;

const KIND_BEAT: u8 = 0;
const KIND_CONTROL: u8 = 1;

/// Byte length of the body (everything after the length prefix) of every
/// currently defined frame kind.
const BODY_LEN: usize = 6;

/// Out-of-band commands for fault injection and lifecycle control.
///
/// Control frames share the heartbeat wire format so the same codec, the
/// same sockets and the same fuzz-resistance arguments cover them, but
/// they are *not* protocol messages: loopback transports deliver them
/// instantly and losslessly, and they bypass the message counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// Voluntarily inactivate the receiving process (fault injection).
    Crash,
    /// Ask a dynamic-protocol participant to leave at the next beat.
    Leave,
    /// Stop the receiving node's run loop.
    Shutdown,
    /// Restart a crashed participant with a fresh epoch (§7 rejoin).
    Revive,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Command::Crash => "crash",
            Command::Leave => "leave",
            Command::Shutdown => "shutdown",
            Command::Revive => "revive",
        })
    }
}

/// One wire frame: a protocol heartbeat or a control command, stamped
/// with the sender's pid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Frame {
    /// A protocol heartbeat from `src`.
    Beat {
        /// Sending process.
        src: Pid,
        /// The heartbeat payload.
        hb: Heartbeat,
    },
    /// An out-of-band control command from `src`.
    Control {
        /// Sending process (by convention an out-of-band injector pid).
        src: Pid,
        /// The command.
        cmd: Command,
    },
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the length prefix promises (or no prefix at all).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown wire-format version.
    Version(u8),
    /// Unknown frame kind.
    Kind(u8),
    /// A payload byte outside its valid range.
    Payload,
    /// The length prefix promises more bytes than the frame kind defines.
    Trailing,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::Oversized(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            DecodeError::Version(v) => write!(f, "unknown wire version {v}"),
            DecodeError::Kind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Payload => write!(f, "invalid payload byte"),
            DecodeError::Trailing => write!(f, "trailing bytes inside frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Frame {
    /// A heartbeat frame.
    pub fn beat(src: Pid, hb: Heartbeat) -> Self {
        Frame::Beat { src, hb }
    }

    /// A control frame.
    pub fn control(src: Pid, cmd: Command) -> Self {
        Frame::Control { src, cmd }
    }

    /// The sending process.
    pub fn src(&self) -> Pid {
        match *self {
            Frame::Beat { src, .. } | Frame::Control { src, .. } => src,
        }
    }

    /// Encode into a fresh buffer (length prefix included).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit in a `u16` — the wire format caps a
    /// cluster at 65535 participants.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, src, payload, epoch) = match *self {
            Frame::Beat { src, hb } => (KIND_BEAT, src, u8::from(hb.flag), hb.epoch),
            Frame::Control { src, cmd } => (
                KIND_CONTROL,
                src,
                match cmd {
                    Command::Crash => 0,
                    Command::Leave => 1,
                    Command::Shutdown => 2,
                    Command::Revive => 3,
                },
                0,
            ),
        };
        let src = u16::try_from(src).expect("pid must fit the u16 wire field");
        let mut out = Vec::with_capacity(2 + BODY_LEN);
        out.extend_from_slice(&(BODY_LEN as u16).to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(kind);
        out.extend_from_slice(&src.to_le_bytes());
        out.push(payload);
        out.push(epoch);
        out
    }

    /// Decode one frame from the front of `buf`; on success also returns
    /// the total number of bytes consumed (prefix included), so a stream
    /// reader can advance past the frame.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
        let Some(prefix) = buf.get(..2) else {
            return Err(DecodeError::Truncated);
        };
        let len = usize::from(u16::from_le_bytes([prefix[0], prefix[1]]));
        if len > MAX_FRAME {
            return Err(DecodeError::Oversized(len));
        }
        let Some(body) = buf.get(2..2 + len) else {
            return Err(DecodeError::Truncated);
        };
        // The version byte is authoritative before any layout assumption:
        // a version-1 frame is shorter than BODY_LEN and must surface as a
        // version mismatch, not as a truncation artefact.
        match body.first() {
            None => return Err(DecodeError::Truncated),
            Some(&v) if v != WIRE_VERSION => return Err(DecodeError::Version(v)),
            Some(_) => {}
        }
        if len < BODY_LEN {
            return Err(DecodeError::Truncated);
        }
        let kind = body[1];
        let src = Pid::from(u16::from_le_bytes([body[2], body[3]]));
        let payload = body[4];
        let epoch = body[5];
        if len > BODY_LEN {
            return Err(DecodeError::Trailing);
        }
        let frame = match kind {
            KIND_BEAT => Frame::Beat {
                src,
                hb: match payload {
                    0 => Heartbeat::leave().with_epoch(epoch),
                    1 => Heartbeat::plain().with_epoch(epoch),
                    _ => return Err(DecodeError::Payload),
                },
            },
            KIND_CONTROL => {
                if epoch != 0 {
                    // Control frames carry no epoch; a nonzero byte keeps
                    // the encoding canonical (one frame, one byte string).
                    return Err(DecodeError::Payload);
                }
                Frame::Control {
                    src,
                    cmd: match payload {
                        0 => Command::Crash,
                        1 => Command::Leave,
                        2 => Command::Shutdown,
                        3 => Command::Revive,
                        _ => return Err(DecodeError::Payload),
                    },
                }
            }
            k => return Err(DecodeError::Kind(k)),
        };
        Ok((frame, 2 + len))
    }

    /// Decode a datagram that must contain exactly one frame — trailing
    /// bytes after the frame are rejected.
    pub fn decode_datagram(buf: &[u8]) -> Result<Frame, DecodeError> {
        let (frame, consumed) = Frame::decode(buf)?;
        if consumed != buf.len() {
            return Err(DecodeError::Trailing);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_variant() {
        let frames = [
            Frame::beat(0, Heartbeat::plain()),
            Frame::beat(7, Heartbeat::leave()),
            Frame::beat(usize::from(u16::MAX), Heartbeat::plain()),
            Frame::beat(4, Heartbeat::plain().with_epoch(1)),
            Frame::beat(4, Heartbeat::leave().with_epoch(u8::MAX)),
            Frame::control(3, Command::Crash),
            Frame::control(0, Command::Leave),
            Frame::control(9, Command::Shutdown),
            Frame::control(9, Command::Revive),
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(Frame::decode_datagram(&bytes), Ok(f), "{f:?}");
            assert_eq!(Frame::decode(&bytes), Ok((f, bytes.len())));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = Frame::beat(1, Heartbeat::plain()).encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut bytes = vec![0u8; 4];
        bytes[..2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(DecodeError::Oversized(usize::from(u16::MAX)))
        );
    }

    #[test]
    fn bad_version_kind_and_payload_are_rejected() {
        let good = Frame::beat(1, Heartbeat::plain()).encode();
        let mut v = good.clone();
        v[2] = 99;
        assert_eq!(Frame::decode(&v), Err(DecodeError::Version(99)));
        let mut k = good.clone();
        k[3] = 42;
        assert_eq!(Frame::decode(&k), Err(DecodeError::Kind(42)));
        let mut p = good.clone();
        p[6] = 2;
        assert_eq!(Frame::decode(&p), Err(DecodeError::Payload));
    }

    #[test]
    fn trailing_bytes_rejected_in_datagrams() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes.push(0);
        assert_eq!(Frame::decode_datagram(&bytes), Err(DecodeError::Trailing));
        // Stream decoding, by contrast, just reports the consumed length.
        let (f, n) = Frame::decode(&bytes).unwrap();
        assert_eq!(f, Frame::beat(1, Heartbeat::plain()));
        assert_eq!(n, bytes.len() - 1);
    }

    #[test]
    fn inflated_length_prefix_is_trailing() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes[..2].copy_from_slice(&7u16.to_le_bytes());
        bytes.push(0); // make the promised bytes available
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    fn version_one_frames_are_rejected_as_version_not_truncated() {
        // A well-formed v1 frame: 5-byte body, no epoch.
        let v1 = [5u8, 0, 1, KIND_BEAT, 1, 0, 1];
        assert_eq!(Frame::decode(&v1), Err(DecodeError::Version(1)));
        // Even a v1 *control* frame fails on version before anything else.
        let v1c = [5u8, 0, 1, KIND_CONTROL, 9, 0, 2];
        assert_eq!(Frame::decode(&v1c), Err(DecodeError::Version(1)));
    }

    #[test]
    fn epoch_survives_the_round_trip() {
        for epoch in [0u8, 1, 7, 255] {
            let f = Frame::beat(2, Heartbeat::plain().with_epoch(epoch));
            let bytes = f.encode();
            let (decoded, _) = Frame::decode(&bytes).unwrap();
            match decoded {
                Frame::Beat { hb, .. } => assert_eq!(hb.epoch, epoch),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn control_frames_with_nonzero_epoch_byte_are_rejected() {
        let mut bytes = Frame::control(3, Command::Revive).encode();
        *bytes.last_mut().unwrap() = 1;
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::Payload));
    }

    #[test]
    #[should_panic(expected = "u16 wire field")]
    fn oversized_pid_panics_on_encode() {
        Frame::beat(usize::from(u16::MAX) + 1, Heartbeat::plain()).encode();
    }
}
