//! The length-prefixed wire format for heartbeat frames.
//!
//! Every frame is encoded as
//!
//! ```text
//! +--------+---------+------+----------+---------+
//! | len u16 | version | kind | src u16  | payload |
//! |  (LE)   |  (= 1)  | u8   |  (LE)    |  u8     |
//! +--------+---------+------+----------+---------+
//! ```
//!
//! where `len` counts everything after the two length bytes. The same
//! encoding is used for UDP datagrams (exactly one frame per datagram) and
//! would frame a byte stream unchanged; [`Frame::decode`] returns the
//! number of bytes consumed for that purpose.
//!
//! Decoding is total: any byte sequence produces either a frame or a
//! [`DecodeError`] — never a panic and never an out-of-bounds read. Frames
//! claiming more than [`MAX_FRAME`] bytes are rejected before any
//! allocation, so a hostile peer cannot make a receiver buffer unbounded
//! data.

use std::fmt;

use hb_core::{Heartbeat, Pid};

/// Current wire-format version, carried in every frame.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on the `len` field. Real frames are 5 bytes; the cap
/// leaves room for future kinds while bounding what a decoder will
/// accept.
pub const MAX_FRAME: usize = 64;

const KIND_BEAT: u8 = 0;
const KIND_CONTROL: u8 = 1;

/// Byte length of the body (everything after the length prefix) of every
/// currently defined frame kind.
const BODY_LEN: usize = 5;

/// Out-of-band commands for fault injection and lifecycle control.
///
/// Control frames share the heartbeat wire format so the same codec, the
/// same sockets and the same fuzz-resistance arguments cover them, but
/// they are *not* protocol messages: loopback transports deliver them
/// instantly and losslessly, and they bypass the message counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Command {
    /// Voluntarily inactivate the receiving process (fault injection).
    Crash,
    /// Ask a dynamic-protocol participant to leave at the next beat.
    Leave,
    /// Stop the receiving node's run loop.
    Shutdown,
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Command::Crash => "crash",
            Command::Leave => "leave",
            Command::Shutdown => "shutdown",
        })
    }
}

/// One wire frame: a protocol heartbeat or a control command, stamped
/// with the sender's pid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Frame {
    /// A protocol heartbeat from `src`.
    Beat {
        /// Sending process.
        src: Pid,
        /// The heartbeat payload.
        hb: Heartbeat,
    },
    /// An out-of-band control command from `src`.
    Control {
        /// Sending process (by convention an out-of-band injector pid).
        src: Pid,
        /// The command.
        cmd: Command,
    },
}

/// Why a byte sequence failed to decode as a frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the length prefix promises (or no prefix at all).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown wire-format version.
    Version(u8),
    /// Unknown frame kind.
    Kind(u8),
    /// A payload byte outside its valid range.
    Payload,
    /// The length prefix promises more bytes than the frame kind defines.
    Trailing,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated frame"),
            DecodeError::Oversized(n) => write!(f, "frame length {n} exceeds cap {MAX_FRAME}"),
            DecodeError::Version(v) => write!(f, "unknown wire version {v}"),
            DecodeError::Kind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Payload => write!(f, "invalid payload byte"),
            DecodeError::Trailing => write!(f, "trailing bytes inside frame"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl Frame {
    /// A heartbeat frame.
    pub fn beat(src: Pid, hb: Heartbeat) -> Self {
        Frame::Beat { src, hb }
    }

    /// A control frame.
    pub fn control(src: Pid, cmd: Command) -> Self {
        Frame::Control { src, cmd }
    }

    /// The sending process.
    pub fn src(&self) -> Pid {
        match *self {
            Frame::Beat { src, .. } | Frame::Control { src, .. } => src,
        }
    }

    /// Encode into a fresh buffer (length prefix included).
    ///
    /// # Panics
    ///
    /// Panics if `src` does not fit in a `u16` — the wire format caps a
    /// cluster at 65535 participants.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, src, payload) = match *self {
            Frame::Beat { src, hb } => (KIND_BEAT, src, u8::from(hb.flag)),
            Frame::Control { src, cmd } => (
                KIND_CONTROL,
                src,
                match cmd {
                    Command::Crash => 0,
                    Command::Leave => 1,
                    Command::Shutdown => 2,
                },
            ),
        };
        let src = u16::try_from(src).expect("pid must fit the u16 wire field");
        let mut out = Vec::with_capacity(2 + BODY_LEN);
        out.extend_from_slice(&(BODY_LEN as u16).to_le_bytes());
        out.push(WIRE_VERSION);
        out.push(kind);
        out.extend_from_slice(&src.to_le_bytes());
        out.push(payload);
        out
    }

    /// Decode one frame from the front of `buf`; on success also returns
    /// the total number of bytes consumed (prefix included), so a stream
    /// reader can advance past the frame.
    pub fn decode(buf: &[u8]) -> Result<(Frame, usize), DecodeError> {
        let Some(prefix) = buf.get(..2) else {
            return Err(DecodeError::Truncated);
        };
        let len = usize::from(u16::from_le_bytes([prefix[0], prefix[1]]));
        if len > MAX_FRAME {
            return Err(DecodeError::Oversized(len));
        }
        let Some(body) = buf.get(2..2 + len) else {
            return Err(DecodeError::Truncated);
        };
        if len < BODY_LEN {
            return Err(DecodeError::Truncated);
        }
        if body[0] != WIRE_VERSION {
            return Err(DecodeError::Version(body[0]));
        }
        let kind = body[1];
        let src = Pid::from(u16::from_le_bytes([body[2], body[3]]));
        let payload = body[4];
        if len > BODY_LEN {
            return Err(DecodeError::Trailing);
        }
        let frame = match kind {
            KIND_BEAT => Frame::Beat {
                src,
                hb: match payload {
                    0 => Heartbeat::leave(),
                    1 => Heartbeat::plain(),
                    _ => return Err(DecodeError::Payload),
                },
            },
            KIND_CONTROL => Frame::Control {
                src,
                cmd: match payload {
                    0 => Command::Crash,
                    1 => Command::Leave,
                    2 => Command::Shutdown,
                    _ => return Err(DecodeError::Payload),
                },
            },
            k => return Err(DecodeError::Kind(k)),
        };
        Ok((frame, 2 + len))
    }

    /// Decode a datagram that must contain exactly one frame — trailing
    /// bytes after the frame are rejected.
    pub fn decode_datagram(buf: &[u8]) -> Result<Frame, DecodeError> {
        let (frame, consumed) = Frame::decode(buf)?;
        if consumed != buf.len() {
            return Err(DecodeError::Trailing);
        }
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_variant() {
        let frames = [
            Frame::beat(0, Heartbeat::plain()),
            Frame::beat(7, Heartbeat::leave()),
            Frame::beat(usize::from(u16::MAX), Heartbeat::plain()),
            Frame::control(3, Command::Crash),
            Frame::control(0, Command::Leave),
            Frame::control(9, Command::Shutdown),
        ];
        for f in frames {
            let bytes = f.encode();
            assert_eq!(Frame::decode_datagram(&bytes), Ok(f), "{f:?}");
            assert_eq!(Frame::decode(&bytes), Ok((f, bytes.len())));
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = Frame::beat(1, Heartbeat::plain()).encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]),
                Err(DecodeError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_length_is_rejected_before_reading() {
        let mut bytes = vec![0u8; 4];
        bytes[..2].copy_from_slice(&u16::MAX.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(DecodeError::Oversized(usize::from(u16::MAX)))
        );
    }

    #[test]
    fn bad_version_kind_and_payload_are_rejected() {
        let good = Frame::beat(1, Heartbeat::plain()).encode();
        let mut v = good.clone();
        v[2] = 99;
        assert_eq!(Frame::decode(&v), Err(DecodeError::Version(99)));
        let mut k = good.clone();
        k[3] = 42;
        assert_eq!(Frame::decode(&k), Err(DecodeError::Kind(42)));
        let mut p = good.clone();
        p[6] = 2;
        assert_eq!(Frame::decode(&p), Err(DecodeError::Payload));
    }

    #[test]
    fn trailing_bytes_rejected_in_datagrams() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes.push(0);
        assert_eq!(Frame::decode_datagram(&bytes), Err(DecodeError::Trailing));
        // Stream decoding, by contrast, just reports the consumed length.
        let (f, n) = Frame::decode(&bytes).unwrap();
        assert_eq!(f, Frame::beat(1, Heartbeat::plain()));
        assert_eq!(n, bytes.len() - 1);
    }

    #[test]
    fn inflated_length_prefix_is_trailing() {
        let mut bytes = Frame::beat(1, Heartbeat::plain()).encode();
        bytes[..2].copy_from_slice(&6u16.to_le_bytes());
        bytes.push(0); // make the promised bytes available
        assert_eq!(Frame::decode(&bytes), Err(DecodeError::Trailing));
    }

    #[test]
    #[should_panic(expected = "u16 wire field")]
    fn oversized_pid_panics_on_encode() {
        Frame::beat(usize::from(u16::MAX) + 1, Heartbeat::plain()).encode();
    }
}
