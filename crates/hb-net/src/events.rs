//! Per-node observability: counters and an event sink.
//!
//! The live runtime records the same [`Event`](hb_core::trace::Event)s as
//! the simulator, in the shared JSON-lines schema of
//! [`hb_core::events`], so a live run and a simulated run are directly
//! diffable — and both can feed the same streaming requirement monitors
//! through an attached [`EventTap`].

pub use hb_core::events::{event_json, parse_event_json, EventSink, EventTap, SharedTap};

/// Cheap always-on counters for one node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Heartbeats handed to the transport.
    pub beats_sent: u64,
    /// Heartbeats received.
    pub beats_received: u64,
    /// Coordinator round timeouts fired.
    pub timeouts: u64,
    /// Coordinator rounds that shortened the waiting time (the
    /// acceleration visibly kicking in).
    pub halvings: u64,
    /// Join heartbeats sent (join-phase variants).
    pub join_sends: u64,
    /// Control frames received.
    pub controls_received: u64,
    /// Voluntary inactivations executed (crash injections).
    pub crashes: u64,
    /// Non-voluntary inactivations (this node shut itself down).
    pub nv_inactivations: u64,
    /// Graceful leaves observed (own leave for participants, acknowledged
    /// leaves for the coordinator).
    pub leaves: u64,
    /// Post-crash restarts executed (§7 rejoin).
    pub revives: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::trace::Event;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// A Write sink into shared memory for asserting on JSON output.
    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);
    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn memory_sink_records() {
        let mut s = EventSink::memory();
        s.emit(&Event::Timeout { at: 3, pid: 0 });
        assert_eq!(s.log().unwrap().len(), 1);
        let log = s.take_log();
        assert_eq!(log.events()[0].at(), 3);
    }

    #[test]
    fn writer_sink_streams_json_lines() {
        let buf = Buf::default();
        let mut s = EventSink::disabled().with_writer(Box::new(buf.clone()));
        s.emit(&Event::Crash { at: 9, pid: 2 });
        s.emit(&Event::Timeout { at: 10, pid: 0 });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"t\":9,\"ev\":\"crash\",\"pid\":2}");
    }

    #[test]
    fn disabled_sink_is_silent() {
        let mut s = EventSink::disabled();
        s.emit(&Event::Timeout { at: 1, pid: 0 });
        assert!(s.log().is_none());
        assert!(s.take_log().is_empty());
    }
}
