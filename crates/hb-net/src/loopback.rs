//! An in-process loopback transport with injectable loss and delay.
//!
//! The loopback network gives every node a [`LoopbackEndpoint`] backed by
//! shared per-destination queues. Heartbeat frames pass through the same
//! fault pipeline as the simulator's channel — a [`LossModel`] (Bernoulli
//! or Gilbert–Elliott burst) decides drops, and delays are drawn uniformly
//! from `0..=budget` ticks, consuming the round-trip budget exactly like
//! [`hb_sim::channel::Channel`] — so a live loopback run is directly
//! comparable to a simulated run with the same parameters and loss.
//!
//! Control frames bypass the fault pipeline (instant, lossless delivery)
//! and the message counters: they are the test harness's hand, not
//! protocol traffic.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use hb_core::Pid;
use hb_sim::channel::LossModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::Time;
use crate::transport::{Recv, Transport};
use crate::wire::Frame;

/// Fault injection for a loopback network.
#[derive(Clone, Copy, Debug)]
pub struct Faults {
    /// How heartbeat frames get dropped.
    pub loss: LossModel,
}

impl Faults {
    /// A perfect network.
    pub fn none() -> Self {
        Faults {
            loss: LossModel::Bernoulli(0.0),
        }
    }

    /// Independent per-message loss.
    pub fn bernoulli(p: f64) -> Self {
        Faults {
            loss: LossModel::Bernoulli(p),
        }
    }

    /// A Gilbert–Elliott burst-loss chain (see [`LossModel`]).
    pub fn burst(to_bad: f64, to_good: f64, good_loss: f64, bad_loss: f64) -> Self {
        Faults {
            loss: LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            },
        }
    }
}

/// Message counters of a loopback network (heartbeat frames only).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Frames handed to the network (including lost ones).
    pub sent: u64,
    /// Frames delivered (or purged into a not-yet-started node).
    pub delivered: u64,
    /// Frames dropped by the loss model.
    pub lost: u64,
}

#[derive(Clone, Copy, Debug)]
struct Stored {
    deliver_at: Time,
    frame: Frame,
    budget_left: u32,
}

struct NetState {
    queues: Vec<Vec<Stored>>,
    loss: LossModel,
    ge_bad: bool,
    rng: StdRng,
    stats: NetStats,
}

impl NetState {
    /// One loss decision, mirroring `hb_sim::channel::Channel::drops_now`.
    fn drops_now(&mut self) -> bool {
        match self.loss {
            LossModel::Bernoulli(p) => self.rng.gen_bool(p),
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            } => {
                if self.ge_bad {
                    if self.rng.gen_bool(to_good) {
                        self.ge_bad = false;
                    }
                } else if self.rng.gen_bool(to_bad) {
                    self.ge_bad = true;
                }
                self.rng
                    .gen_bool(if self.ge_bad { bad_loss } else { good_loss })
            }
        }
    }
}

struct Inner {
    state: Mutex<NetState>,
    arrived: Condvar,
}

/// A loopback network connecting a fixed set of endpoints.
#[derive(Clone)]
pub struct LoopbackNet {
    inner: Arc<Inner>,
    endpoints: usize,
}

impl LoopbackNet {
    /// A network with `endpoints` addressable pids (`0..endpoints`),
    /// seeded fault randomness, and the given fault plan.
    pub fn new(endpoints: usize, faults: Faults, seed: u64) -> Self {
        LoopbackNet {
            inner: Arc::new(Inner {
                state: Mutex::new(NetState {
                    queues: (0..endpoints).map(|_| Vec::new()).collect(),
                    loss: faults.loss,
                    ge_bad: false,
                    rng: StdRng::seed_from_u64(seed),
                    stats: NetStats::default(),
                }),
                arrived: Condvar::new(),
            }),
            endpoints,
        }
    }

    /// The endpoint for `pid`.
    ///
    /// # Panics
    ///
    /// Panics if `pid` is out of range.
    pub fn endpoint(&self, pid: Pid) -> LoopbackEndpoint {
        assert!(pid < self.endpoints, "pid {pid} out of range");
        LoopbackEndpoint {
            inner: Arc::clone(&self.inner),
            pid,
        }
    }

    /// Whether any heartbeat or control frame is deliverable at `now`.
    pub fn any_deliverable(&self, now: Time) -> bool {
        let st = self.inner.state.lock().unwrap();
        st.queues
            .iter()
            .any(|q| q.iter().any(|m| m.deliver_at <= now))
    }

    /// Message counters so far.
    pub fn stats(&self) -> NetStats {
        self.inner.state.lock().unwrap().stats
    }

    /// Discard everything queued for `pid` — used when a node starts late,
    /// mirroring the simulator's "messages to not-yet-started participants
    /// vanish" (they count as delivered-into-the-void).
    pub fn purge(&self, pid: Pid) {
        let mut st = self.inner.state.lock().unwrap();
        let dropped = st.queues[pid].len() as u64;
        st.queues[pid].clear();
        st.stats.delivered += dropped;
    }
}

/// One node's handle onto a [`LoopbackNet`].
pub struct LoopbackEndpoint {
    inner: Arc<Inner>,
    pid: Pid,
}

impl LoopbackEndpoint {
    /// The pid this endpoint receives for.
    pub fn pid(&self) -> Pid {
        self.pid
    }
}

impl Transport for LoopbackEndpoint {
    fn send(&mut self, now: Time, dst: Pid, frame: &Frame, budget: u32) -> io::Result<()> {
        let mut st = self.inner.state.lock().unwrap();
        if dst >= st.queues.len() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no endpoint {dst}"),
            ));
        }
        match frame {
            Frame::Control { .. } => {
                // Out-of-band: instant, lossless, uncounted.
                st.queues[dst].push(Stored {
                    deliver_at: now,
                    frame: *frame,
                    budget_left: 0,
                });
            }
            Frame::Beat { .. } => {
                st.stats.sent += 1;
                if st.drops_now() {
                    st.stats.lost += 1;
                    return Ok(());
                }
                let delay = st.rng.gen_range(0..=budget);
                st.queues[dst].push(Stored {
                    deliver_at: now + Time::from(delay),
                    frame: *frame,
                    budget_left: budget - delay,
                });
            }
            Frame::ViewChange { .. } | Frame::StateRequest { .. } | Frame::StateReply { .. } => {
                // Membership traffic rides the same in-band channel as
                // beats (delayed, droppable) but stays out of the beat
                // stats — overhead comparisons against the paper's
                // message counts must not be skewed by the member layer.
                if st.drops_now() {
                    return Ok(());
                }
                let delay = st.rng.gen_range(0..=budget);
                st.queues[dst].push(Stored {
                    deliver_at: now + Time::from(delay),
                    frame: *frame,
                    budget_left: budget.saturating_sub(delay),
                });
            }
        }
        drop(st);
        self.inner.arrived.notify_all();
        Ok(())
    }

    fn try_recv(&mut self, now: Time) -> io::Result<Option<Recv>> {
        let mut st = self.inner.state.lock().unwrap();
        // Earliest deliverable first (FIFO among equal times) for a
        // deterministic processing order.
        let best = st.queues[self.pid]
            .iter()
            .enumerate()
            .filter(|(_, m)| m.deliver_at <= now)
            .min_by_key(|(i, m)| (m.deliver_at, *i))
            .map(|(i, _)| i);
        let Some(i) = best else {
            return Ok(None);
        };
        let m = st.queues[self.pid].remove(i);
        if matches!(m.frame, Frame::Beat { .. }) {
            st.stats.delivered += 1;
        }
        Ok(Some(Recv {
            frame: m.frame,
            reply_budget: m.budget_left,
        }))
    }

    fn wait(&mut self, timeout: Duration) -> io::Result<()> {
        let st = self.inner.state.lock().unwrap();
        if !st.queues[self.pid].is_empty() {
            return Ok(());
        }
        let _unused = self
            .inner
            .arrived
            .wait_timeout(st, timeout)
            .map_err(|_| io::Error::other("loopback lock poisoned"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Command;
    use hb_core::Heartbeat;

    #[test]
    fn delivery_respects_delay_budget() {
        let net = LoopbackNet::new(2, Faults::none(), 1);
        let mut a = net.endpoint(0);
        let mut b = net.endpoint(1);
        for _ in 0..50 {
            a.send(10, 1, &Frame::beat(0, Heartbeat::plain()), 3)
                .unwrap();
        }
        assert_eq!(b.try_recv(9).unwrap(), None, "nothing before send time");
        let mut got = 0;
        let mut budget_seen = false;
        for t in 10..=13 {
            while let Some(r) = b.try_recv(t).unwrap() {
                got += 1;
                // budget_left + delay == 3 always
                budget_seen |= r.reply_budget < 3;
                assert!(r.reply_budget <= 3);
            }
        }
        assert_eq!(got, 50);
        assert!(budget_seen, "some delay must have been drawn");
        assert_eq!(
            net.stats(),
            NetStats {
                sent: 50,
                delivered: 50,
                lost: 0
            }
        );
    }

    #[test]
    fn bernoulli_loss_drops_at_the_configured_rate() {
        let net = LoopbackNet::new(2, Faults::bernoulli(0.3), 7);
        let mut a = net.endpoint(0);
        for _ in 0..5_000 {
            a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 2)
                .unwrap();
        }
        let s = net.stats();
        let rate = s.lost as f64 / s.sent as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss {rate}");
    }

    #[test]
    fn control_frames_are_instant_lossless_and_uncounted() {
        let net = LoopbackNet::new(2, Faults::bernoulli(1.0), 3);
        let mut a = net.endpoint(0);
        let mut b = net.endpoint(1);
        a.send(5, 1, &Frame::control(0, Command::Crash), 4).unwrap();
        let r = b.try_recv(5).unwrap().expect("instant delivery");
        assert_eq!(r.frame, Frame::control(0, Command::Crash));
        assert_eq!(net.stats(), NetStats::default());
        // ...while beats on the same network are all eaten.
        a.send(5, 1, &Frame::beat(0, Heartbeat::plain()), 4)
            .unwrap();
        assert_eq!(net.stats().lost, 1);
    }

    #[test]
    fn purge_vanishes_pending_frames() {
        let net = LoopbackNet::new(2, Faults::none(), 1);
        let mut a = net.endpoint(0);
        a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
            .unwrap();
        assert!(net.any_deliverable(0));
        net.purge(1);
        assert!(!net.any_deliverable(0));
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn unknown_destination_errors() {
        let net = LoopbackNet::new(1, Faults::none(), 1);
        let mut a = net.endpoint(0);
        assert!(a
            .send(0, 5, &Frame::beat(0, Heartbeat::plain()), 0)
            .is_err());
    }

    #[test]
    fn wait_returns_on_arrival() {
        let net = LoopbackNet::new(2, Faults::none(), 1);
        let mut a = net.endpoint(0);
        let mut b = net.endpoint(1);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            a.send(0, 1, &Frame::beat(0, Heartbeat::plain()), 0)
                .unwrap();
        });
        let t0 = std::time::Instant::now();
        b.wait(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() < Duration::from_secs(4), "woken by arrival");
        t.join().unwrap();
    }
}
