//! The transport abstraction: how frames move between nodes.
//!
//! A [`Transport`] hands [`Frame`](crate::wire::Frame)s between processes
//! identified by [`Pid`]. Implementations decide what the medium is — an
//! in-process loopback with injectable loss and delay
//! ([`crate::loopback`]), or UDP sockets ([`crate::udp`]).
//!
//! The interface mirrors the paper's channel assumptions: a send carries a
//! round-trip latency *budget* (the protocols assume send + immediate
//! reply completes within `tmin`), and every reception reports how much of
//! that budget an instant reply may still consume. Simulated transports
//! enforce the budget; real sockets report it as zero and rely on the
//! network being faster than a tick.

use std::io;
use std::time::Duration;

use hb_core::Pid;

use crate::time::Time;
use crate::wire::Frame;

/// A received frame plus the remaining round-trip budget (in ticks) an
/// immediate reply may consume.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Recv {
    /// The decoded frame.
    pub frame: Frame,
    /// Remaining latency budget for an instant reply. Loopback transports
    /// draw reply delays from `0..=reply_budget`, keeping round trips
    /// within the protocol's `tmin` assumption; socket transports report
    /// 0 (real replies leave immediately).
    pub reply_budget: u32,
}

/// A bidirectional frame transport for one node.
pub trait Transport: Send {
    /// Send `frame` to `dst` at tick `now`, with `budget` ticks of
    /// one-way+reply latency budget. Lossy transports may silently drop
    /// the frame; an `Err` means the transport itself failed.
    fn send(&mut self, now: Time, dst: Pid, frame: &Frame, budget: u32) -> io::Result<()>;

    /// The next frame deliverable at tick `now`, if any. Must not block.
    fn try_recv(&mut self, now: Time) -> io::Result<Option<Recv>>;

    /// Block until a frame may have arrived or `timeout` elapses,
    /// whichever is first. Spurious wakeups are fine; callers re-poll.
    fn wait(&mut self, timeout: Duration) -> io::Result<()>;
}
