//! The deadline-driven event loop running one `hb-core` machine live.
//!
//! A [`NodeRuntime`] wraps either a coordinator ([`CoordSpec`]) or a
//! participant ([`RespSpec`]) — the *unmodified* sans-IO state machines —
//! and turns their `tick` / `timeout_due` / `on_timeout` / `on_beat`
//! interface into a real event loop over a [`Transport`]:
//!
//! * **Time** advances in unit ticks. [`NodeRuntime::poll`] catches the
//!   machine up to an externally supplied tick, firing every due event at
//!   the tick where it became due — so event timestamps are exact even
//!   when a thread wakes late.
//! * **Ordering** within a tick honours the fix level: under the §6.1
//!   receive-priority fix ([`FixLevel::receive_priority`]) every
//!   deliverable message is drained before a simultaneous timeout may
//!   fire; under the original semantics the due timeout fires first —
//!   deterministically exposing the race the fix repairs.
//! * **Sleeping**: [`NodeRuntime::next_deadline`] reports the next tick at
//!   which the machine can possibly act ([`CoordSpec::next_timeout_in`] /
//!   [`RespSpec::next_event_in`]), and [`NodeRuntime::run`] blocks on the
//!   transport until that deadline or an arrival — no busy polling.
//!
//! Fault injection and lifecycle are driven over the wire by control
//! frames ([`crate::wire::Command`]): `Crash` voluntarily inactivates the
//! node (it keeps consuming messages silently, as the paper's crashed
//! processes do), `Leave` schedules a dynamic-protocol leave, `Revive`
//! restarts a crashed participant with a fresh epoch (§7 rejoin),
//! `Shutdown` stops the run loop.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use hb_core::coordinator::{CoordReaction, CoordSpec, CoordState, TimeoutOutcome};
use hb_core::responder::{LeaveDecision, RespSpec, RespState};
use hb_core::trace::{Event, EventLog};
use hb_core::{FixLevel, Heartbeat, Pid, Status};

use crate::events::{Counters, EventSink};
use crate::time::{Time, TimeSource};
use crate::transport::{Recv, Transport};
use crate::wire::{Command, Frame};

/// Which machine a runtime hosts.
enum Role {
    Coordinator {
        spec: CoordSpec,
        state: CoordState,
    },
    Participant {
        spec: RespSpec,
        state: RespState,
        /// Leave at the first beat answered at or after this tick.
        leave_after: Option<Time>,
    },
}

/// Everything a finished node hands back for reporting.
#[derive(Debug)]
pub struct NodeReport {
    /// The node's pid.
    pub pid: Pid,
    /// Final liveness status.
    pub status: Status,
    /// Whether the node left gracefully (dynamic participants).
    pub left: bool,
    /// The node's local tick when it stopped.
    pub now: Time,
    /// Counters.
    pub counters: Counters,
    /// The in-memory event log (empty unless a memory sink was attached).
    pub log: EventLog,
}

/// A live runtime for one heartbeat process.
pub struct NodeRuntime<T: Transport> {
    pid: Pid,
    role: Role,
    transport: T,
    fix: FixLevel,
    /// Fresh-send round-trip budget (`tmin`, the paper's assumption).
    budget: u32,
    local_now: Time,
    shutdown: bool,
    /// Counters (always on).
    pub counters: Counters,
    sink: EventSink,
    /// Scratch for the per-round outgoing batch; reused across
    /// `fire_due`/`on_frame` calls so the steady-state loop never
    /// allocates.
    out_scratch: Vec<(Pid, Heartbeat, u32)>,
}

impl<T: Transport> NodeRuntime<T> {
    /// A runtime hosting the coordinator `p[0]`.
    pub fn coordinator(spec: CoordSpec, transport: T) -> Self {
        NodeRuntime {
            pid: 0,
            fix: spec.fix(),
            budget: spec.params().tmin(),
            role: Role::Coordinator {
                state: spec.init_state(),
                spec,
            },
            transport,
            local_now: 0,
            shutdown: false,
            counters: Counters::default(),
            sink: EventSink::disabled(),
            out_scratch: Vec::new(),
        }
    }

    /// A runtime hosting participant `pid` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `pid` is 0.
    pub fn participant(pid: Pid, spec: RespSpec, transport: T) -> Self {
        assert!(pid >= 1, "participants are numbered from 1");
        NodeRuntime {
            pid,
            fix: spec.fix(),
            budget: spec.params().tmin(),
            role: Role::Participant {
                state: spec.init_state(),
                spec,
                leave_after: None,
            },
            transport,
            local_now: 0,
            shutdown: false,
            counters: Counters::default(),
            sink: EventSink::disabled(),
            out_scratch: Vec::new(),
        }
    }

    /// Attach an event sink.
    pub fn with_sink(mut self, sink: EventSink) -> Self {
        self.sink = sink;
        self
    }

    /// Attach a live [`EventTap`](crate::events::EventTap) — e.g. a
    /// streaming requirement monitor — to this node's sink. Composes
    /// with [`with_sink`](Self::with_sink) and works on a disabled sink.
    pub fn attach_tap(&mut self, tap: crate::events::SharedTap) {
        self.sink.attach_tap(tap);
    }

    /// Start the node's clocks at tick `t` instead of 0 (late joiners).
    pub fn started_at(mut self, t: Time) -> Self {
        self.local_now = t;
        self
    }

    /// This node's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The machine's current liveness status.
    pub fn status(&self) -> Status {
        match &self.role {
            Role::Coordinator { state, .. } => state.status,
            Role::Participant { state, .. } => state.status,
        }
    }

    /// Whether a dynamic participant has left for good.
    pub fn left(&self) -> bool {
        match &self.role {
            Role::Coordinator { .. } => false,
            Role::Participant { state, .. } => state.left,
        }
    }

    /// The node's local tick (how far it has caught up).
    pub fn now(&self) -> Time {
        self.local_now
    }

    /// A participant's current epoch (its incarnation number); `0` for
    /// the coordinator.
    pub fn epoch(&self) -> u8 {
        match &self.role {
            Role::Coordinator { .. } => 0,
            Role::Participant { state, .. } => state.epoch,
        }
    }

    /// Whether a participant has (observed that it has) joined the
    /// round; the coordinator counts as always joined.
    pub fn joined(&self) -> bool {
        match &self.role {
            Role::Coordinator { .. } => true,
            Role::Participant { state, .. } => state.joined,
        }
    }

    /// The epoch the coordinator has registered for participant `pid`
    /// (`None` on participants or out-of-range pids).
    pub fn registered_epoch(&self, pid: Pid) -> Option<u8> {
        match &self.role {
            Role::Coordinator { spec, state } if (1..=spec.n()).contains(&pid) => {
                Some(state.min_epoch[pid - 1])
            }
            _ => None,
        }
    }

    /// `(admitted, filtered)` stale-beat counts observed by a
    /// coordinator; `(0, 0)` on participants.
    pub fn stale_beats(&self) -> (u32, u32) {
        match &self.role {
            Role::Coordinator { state, .. } => (state.stale_admitted, state.stale_filtered),
            Role::Participant { .. } => (0, 0),
        }
    }

    /// Whether the run loop is done: shut down, protocol-inactivated, or
    /// left. A *crashed* node is not halted — like the paper's crashed
    /// processes it keeps consuming messages silently until shut down.
    pub fn halted(&self) -> bool {
        self.shutdown || self.status() == Status::NvInactive || self.left()
    }

    /// The next tick at which this machine can act on its own, if any.
    pub fn next_deadline(&self) -> Option<Time> {
        let remaining = match &self.role {
            Role::Coordinator { spec, state } => spec.next_timeout_in(state),
            Role::Participant { spec, state, .. } => spec.next_event_in(state),
        }?;
        Some(self.local_now + Time::from(remaining))
    }

    /// Catch the machine up to tick `now`: at each tick on the way, fire
    /// everything due (messages and timeouts, ordered per the fix level),
    /// then advance the machine's clocks by one.
    pub fn poll(&mut self, now: Time) -> io::Result<()> {
        loop {
            self.drain_instant()?;
            if self.local_now >= now {
                return Ok(());
            }
            match &mut self.role {
                Role::Coordinator { spec, state } => spec.tick(state),
                Role::Participant { spec, state, .. } => spec.tick(state),
            }
            self.local_now += 1;
        }
    }

    /// Process every event due at the current tick until quiescent.
    fn drain_instant(&mut self) -> io::Result<()> {
        loop {
            let mut progressed = false;
            if self.fix.receive_priority() {
                // §6.1: while anything is deliverable, timeouts wait.
                while let Some(rcv) = self.transport.try_recv(self.local_now)? {
                    self.on_frame(rcv)?;
                    progressed = true;
                }
                progressed |= self.fire_due()?;
            } else {
                // Original semantics, worst case: a due timeout beats a
                // simultaneously deliverable message.
                progressed |= self.fire_due()?;
                if let Some(rcv) = self.transport.try_recv(self.local_now)? {
                    self.on_frame(rcv)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Fire one round of due urgent events. Returns whether anything
    /// fired.
    fn fire_due(&mut self) -> io::Result<bool> {
        let now = self.local_now;
        let mut outgoing = std::mem::take(&mut self.out_scratch);
        let fresh = self.budget;
        let mut fired = false;
        match &mut self.role {
            Role::Coordinator { spec, state } => {
                if spec.timeout_due(state) {
                    fired = true;
                    self.counters.timeouts += 1;
                    self.sink.emit(&Event::Timeout { at: now, pid: 0 });
                    let round_before = state.t;
                    match spec.on_timeout(state) {
                        TimeoutOutcome::Inactivated => {
                            self.counters.nv_inactivations += 1;
                            self.sink.emit(&Event::NvInactivate { at: now, pid: 0 });
                        }
                        TimeoutOutcome::Beat => {
                            if state.t < round_before {
                                self.counters.halvings += 1;
                            }
                            for dst in spec.recipients(state) {
                                outgoing.push((dst, spec.beat_for(state, dst), fresh));
                            }
                        }
                    }
                }
            }
            Role::Participant { spec, state, .. } => {
                if spec.watchdog_due(state) {
                    fired = true;
                    spec.on_watchdog(state);
                    self.counters.nv_inactivations += 1;
                    self.sink.emit(&Event::NvInactivate {
                        at: now,
                        pid: self.pid,
                    });
                } else if spec.join_send_due(state) {
                    fired = true;
                    let hb = spec.on_join_send(state);
                    self.counters.join_sends += 1;
                    outgoing.push((0, hb, fresh));
                }
            }
        }
        for &(dst, hb, budget) in &outgoing {
            self.send_beat(dst, hb, budget)?;
        }
        outgoing.clear();
        self.out_scratch = outgoing;
        Ok(fired)
    }

    /// Handle one received frame.
    fn on_frame(&mut self, rcv: Recv) -> io::Result<()> {
        let now = self.local_now;
        match rcv.frame {
            Frame::Beat { src, hb } => {
                self.counters.beats_received += 1;
                self.sink.emit(&Event::Deliver {
                    at: now,
                    from: src,
                    to: self.pid,
                    hb,
                });
                let mut outgoing = std::mem::take(&mut self.out_scratch);
                let fresh = self.budget;
                match &mut self.role {
                    Role::Coordinator { spec, state } => {
                        // Beats from unknown pids (a stray socket) are
                        // dropped rather than panicking the machine.
                        if (1..=spec.n()).contains(&src) {
                            match spec.on_heartbeat(state, src, hb) {
                                CoordReaction::None => {}
                                CoordReaction::LeaveAck(pid, ack) => {
                                    self.counters.leaves += 1;
                                    self.sink.emit(&Event::Leave { at: now, pid });
                                    // Fresh budget, as in the simulator: the
                                    // ack is a new message, not a reply
                                    // completing a round trip.
                                    outgoing.push((pid, ack, fresh));
                                }
                            }
                        }
                    }
                    Role::Participant {
                        spec,
                        state,
                        leave_after,
                    } => {
                        if src == 0 {
                            let decision = if leave_after.is_some_and(|t| now >= t) {
                                LeaveDecision::Leave
                            } else {
                                LeaveDecision::Stay
                            };
                            let was_left = state.left;
                            if let Some(reply) = spec.on_beat(state, hb, decision) {
                                outgoing.push((0, reply, rcv.reply_budget));
                            }
                            if state.left && !was_left {
                                self.counters.leaves += 1;
                                self.sink.emit(&Event::Leave {
                                    at: now,
                                    pid: self.pid,
                                });
                            }
                        }
                    }
                }
                for &(dst, reply, budget) in &outgoing {
                    self.send_beat(dst, reply, budget)?;
                }
                outgoing.clear();
                self.out_scratch = outgoing;
            }
            Frame::Control { cmd, .. } => {
                self.counters.controls_received += 1;
                match cmd {
                    Command::Crash => {
                        if self.status().is_active() {
                            match &mut self.role {
                                Role::Coordinator { spec, state } => spec.crash(state),
                                Role::Participant { spec, state, .. } => spec.crash(state),
                            }
                            self.counters.crashes += 1;
                            self.sink.emit(&Event::Crash {
                                at: now,
                                pid: self.pid,
                            });
                        }
                    }
                    Command::Leave => {
                        if let Role::Participant { leave_after, .. } = &mut self.role {
                            leave_after.get_or_insert(now);
                        }
                    }
                    Command::Revive => {
                        if let Role::Participant {
                            spec,
                            state,
                            leave_after,
                        } = &mut self.role
                        {
                            if state.status == Status::Crashed {
                                *state = spec.revive_state(state.epoch);
                                *leave_after = None;
                                self.counters.revives += 1;
                                self.sink.emit(&Event::Revive {
                                    at: now,
                                    pid: self.pid,
                                });
                            }
                        }
                    }
                    Command::Shutdown => self.shutdown = true,
                }
            }
            Frame::ViewChange { .. } | Frame::StateRequest { .. } | Frame::StateReply { .. } => {
                // Membership frames are the hb-member runtime's business;
                // the plain failure-detector runtime ignores them rather
                // than erroring, so mixed clusters can coexist.
            }
        }
        Ok(())
    }

    fn send_beat(&mut self, dst: Pid, hb: Heartbeat, budget: u32) -> io::Result<()> {
        let frame = Frame::beat(self.pid, hb);
        self.transport.send(self.local_now, dst, &frame, budget)?;
        self.counters.beats_sent += 1;
        self.sink.emit(&Event::Send {
            at: self.local_now,
            from: self.pid,
            to: dst,
            hb,
        });
        Ok(())
    }

    /// Run the node against a real (or virtual) clock until it halts or
    /// `stop` is raised: poll up to the clock's tick, then block on the
    /// transport until the next protocol deadline or an arrival.
    pub fn run(&mut self, clock: &dyn TimeSource, stop: &AtomicBool) -> io::Result<()> {
        /// Cap on one blocking wait, so `stop` is honoured promptly even
        /// with no traffic and no deadline.
        const MAX_WAIT: Duration = Duration::from_millis(50);
        while !stop.load(Ordering::Relaxed) && !self.halted() {
            let now = clock.now().max(self.local_now);
            self.poll(now)?;
            if self.halted() {
                break;
            }
            let wait = match self.next_deadline() {
                Some(d) => clock.until(d).min(MAX_WAIT),
                None => MAX_WAIT,
            };
            self.transport.wait(wait.max(Duration::from_micros(500)))?;
        }
        Ok(())
    }

    /// Tear down into a report.
    pub fn finish(mut self) -> NodeReport {
        NodeReport {
            pid: self.pid,
            status: self.status(),
            left: self.left(),
            now: self.local_now,
            counters: self.counters,
            log: self.sink.take_log(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loopback::{Faults, LoopbackNet};
    use hb_core::{Params, Variant};

    fn coord_resp(
        variant: Variant,
        tmin: u32,
        tmax: u32,
        fix: FixLevel,
    ) -> (
        NodeRuntime<crate::loopback::LoopbackEndpoint>,
        NodeRuntime<crate::loopback::LoopbackEndpoint>,
        LoopbackNet,
    ) {
        let params = Params::new(tmin, tmax).unwrap();
        let net = LoopbackNet::new(3, Faults::none(), 1);
        let c = NodeRuntime::coordinator(CoordSpec::new(variant, params, 1, fix), net.endpoint(0));
        let p = NodeRuntime::participant(1, RespSpec::new(variant, params, fix), net.endpoint(1));
        (c, p, net)
    }

    /// Step both nodes to `horizon` one tick at a time, draining
    /// zero-delay reply chains within each tick.
    fn step_pair(
        c: &mut NodeRuntime<crate::loopback::LoopbackEndpoint>,
        p: &mut NodeRuntime<crate::loopback::LoopbackEndpoint>,
        net: &LoopbackNet,
        horizon: Time,
    ) {
        for t in 0..=horizon {
            loop {
                c.poll(t).unwrap();
                p.poll(t).unwrap();
                if !net.any_deliverable(t) {
                    break;
                }
            }
        }
    }

    #[test]
    fn steady_state_exchanges_beats_and_stays_alive() {
        let (mut c, mut p, net) = coord_resp(Variant::Binary, 2, 8, FixLevel::Full);
        step_pair(&mut c, &mut p, &net, 800);
        assert_eq!(c.status(), Status::Active);
        assert_eq!(p.status(), Status::Active);
        // one beat + one reply per tmax round, roughly
        let sent = c.counters.beats_sent + p.counters.beats_sent;
        let expected = 2 * 800 / 8;
        assert!(
            (sent as i64 - expected as i64).abs() < 30,
            "sent {sent}, expected ≈{expected}"
        );
        assert_eq!(c.counters.halvings, 0, "no silence, no acceleration");
    }

    #[test]
    fn crashed_participant_is_detected_within_corrected_bound() {
        let params = Params::new(2, 8).unwrap();
        let bound = Time::from(params.p0_bound_corrected(Variant::Binary));
        let (mut c, mut p, net) = coord_resp(Variant::Binary, 2, 8, FixLevel::Full);
        let mut injector = net.endpoint(2);
        let crash_at = 100;
        for t in 0..=100_u64 {
            if t == crash_at {
                injector
                    .send(t, 1, &Frame::control(2, Command::Crash), 0)
                    .unwrap();
            }
            loop {
                c.poll(t).unwrap();
                p.poll(t).unwrap();
                if !net.any_deliverable(t) {
                    break;
                }
            }
        }
        assert_eq!(p.status(), Status::Crashed);
        // keep stepping the coordinator until it inactivates
        let mut t = 100;
        while c.status().is_active() && t < 100 + 10 * bound {
            t += 1;
            c.poll(t).unwrap();
        }
        assert_eq!(c.status(), Status::NvInactive);
        assert!(c.counters.halvings >= 1, "acceleration must have kicked in");
        let detect = t - crash_at;
        assert!(detect <= bound, "detected after {detect} > bound {bound}");
    }

    #[test]
    fn receive_priority_decides_the_simultaneous_race() {
        // Force a beat to be deliverable at the exact tick the watchdog
        // fires: under the original ordering the participant dies; under
        // the §6.1 fix it survives.
        for (fix, survives) in [
            (FixLevel::Original, false),
            (FixLevel::ReceivePriority, true),
        ] {
            let params = Params::new(1, 2).unwrap(); // original bound = 5
            let net = LoopbackNet::new(2, Faults::none(), 1);
            let mut p = NodeRuntime::participant(
                1,
                RespSpec::new(Variant::Binary, params, fix),
                net.endpoint(1),
            );
            let mut hand = net.endpoint(0);
            // Run the participant to one tick before the bound, then place
            // a beat due exactly at the bound tick.
            p.poll(4).unwrap();
            hand.send(5, 1, &Frame::beat(0, Heartbeat::plain()), 0)
                .unwrap();
            p.poll(5).unwrap();
            assert_eq!(
                p.status().is_active(),
                survives,
                "fix {fix:?}: wrong race outcome"
            );
        }
    }

    #[test]
    fn control_shutdown_halts_and_crash_keeps_consuming() {
        let (mut c, mut p, net) = coord_resp(Variant::Binary, 2, 8, FixLevel::Full);
        let mut injector = net.endpoint(2);
        injector
            .send(0, 1, &Frame::control(2, Command::Crash), 0)
            .unwrap();
        step_pair(&mut c, &mut p, &net, 10);
        assert_eq!(p.status(), Status::Crashed);
        assert!(!p.halted(), "crashed nodes keep consuming silently");
        assert!(p.counters.beats_received > 0);
        assert_eq!(p.counters.beats_sent, 0, "crashed nodes never reply");
        injector
            .send(10, 1, &Frame::control(2, Command::Shutdown), 0)
            .unwrap();
        p.poll(11).unwrap();
        assert!(p.halted());
    }

    #[test]
    fn revive_restarts_a_crashed_participant_with_a_fresh_epoch() {
        let (mut c, mut p, net) = coord_resp(Variant::Expanding, 2, 8, FixLevel::Full);
        let mut injector = net.endpoint(2);
        step_pair(&mut c, &mut p, &net, 30);
        assert_eq!(p.epoch(), 0);
        injector
            .send(30, 1, &Frame::control(2, Command::Crash), 0)
            .unwrap();
        p.poll(31).unwrap();
        assert_eq!(p.status(), Status::Crashed);
        // A revive on a live node is a no-op; on the crashed node it bumps
        // the epoch and re-enters the join phase.
        injector
            .send(31, 1, &Frame::control(2, Command::Revive), 0)
            .unwrap();
        p.poll(32).unwrap();
        assert_eq!(p.status(), Status::Active);
        assert_eq!(p.epoch(), 1);
        assert_eq!(p.counters.revives, 1);
        injector
            .send(32, 1, &Frame::control(2, Command::Revive), 0)
            .unwrap();
        p.poll(33).unwrap();
        assert_eq!(p.epoch(), 1, "revive of a live node is a no-op");
        // The pair re-converges: the coordinator registers the new epoch.
        step_pair(&mut c, &mut p, &net, 100);
        assert_eq!(c.registered_epoch(1), Some(1));
        assert_eq!(c.status(), Status::Active);
        assert_eq!(p.status(), Status::Active);
    }

    #[test]
    fn deadlines_track_the_machines() {
        let (c, p, _net) = coord_resp(Variant::Binary, 2, 8, FixLevel::Full);
        assert_eq!(c.next_deadline(), Some(8), "first round is tmax");
        // corrected bound for binary (2,8): 2*tmax = 16
        assert_eq!(p.next_deadline(), Some(16));
    }

    #[test]
    fn dynamic_leave_round_trip() {
        let (mut c, mut p, net) = coord_resp(Variant::Dynamic, 2, 8, FixLevel::Full);
        let mut injector = net.endpoint(2);
        // join first
        step_pair(&mut c, &mut p, &net, 30);
        injector
            .send(30, 1, &Frame::control(2, Command::Leave), 0)
            .unwrap();
        step_pair(&mut c, &mut p, &net, 100);
        assert!(p.left());
        assert!(p.halted());
        assert_eq!(c.counters.leaves, 1, "coordinator acknowledged the leave");
        assert_eq!(c.status(), Status::Active, "a leave disturbs nobody");
    }
}
