//! Structural self-description of the view-change machine, for the
//! `hb-analyze` static analyzer.
//!
//! [`MemberSpec::describe`] renders the membership layer as one
//! [`MachineIr`] over the five [`RoleKind`](crate::RoleKind) control
//! states. The shape deliberately mirrors the plain machines it
//! subsumes — and inherits their §6 hazard: every time-triggered
//! membership action (watchdog fire, takeover, round broadcast, the
//! eviction view-change) races a receive whose evidence it would
//! destroy, so below the §6.1 receive-priority fix the machine trips
//! the timeout-vs-receive overlap lint exactly like the coordinator and
//! responder do, and at `ReceivePriority`/`Full` the side condition
//! ([`Atom::NoUrgentMessage`]) makes it clean. Wire-frame dispatch
//! (beat / view-change / state-request / state-reply) is intended
//! branching, marked with distinct `input` labels.
//!
//! Epoch discipline: under the §7 rejoin fix the machine carries its
//! own incarnation tag (`epoch`) and the view's per-member bars
//! (`bars`); every write is serial-order monotone (`RaiseToTag` on
//! admission and registration, `BumpOnRevive` on restart), which the
//! `epoch-monotonicity` lint checks.

use hb_core::dataflow::{Concretization, Interval};
use hb_core::describe::{
    upd, Atom, DescribeMachine, EpochEffect, MachineIr, PidScope, Role, Transition, Trigger,
    UpdateKind, VarDecl, VarKind,
};

use crate::node::MemberSpec;

/// Numeric spans for the member machine's dataflow analysis.
///
/// The member state is never bit-packed (only the composed plain-role
/// checker model is), so the open-ended ledgers — the view generation
/// and the succession fire count — get the conservative 8-bit span; the
/// clocks get the same urgency-derived bounds as the plain roles.
pub fn member_concretization(spec: &MemberSpec) -> Concretization {
    let p = spec.params;
    let (tmin, tmax) = (p.tmin(), p.tmax());
    let wd = if spec.fix.corrected_bounds() {
        p.responder_bound_corrected(spec.variant)
    } else {
        p.responder_bound_original()
    };
    let mut c = Concretization {
        spans: Default::default(),
        init: Default::default(),
        bounds: Default::default(),
        msg_epoch: Interval::point(0),
        leaver_epoch: Interval::point(0),
    };
    for (name, span, init) in [
        ("status", Interval::new(0, 2), Interval::point(0)),
        ("view", Interval::new(0, 255), Interval::point(0)),
        ("waiting", Interval::new(0, wd), Interval::point(0)),
        ("fires", Interval::new(0, 255), Interval::point(0)),
        ("t", Interval::new(tmin, tmax), Interval::point(tmax)),
        ("elapsed", Interval::new(0, tmax), Interval::point(0)),
        ("rcvd", Interval::new(0, 1), Interval::point(1)),
        ("joined", Interval::new(0, 1), Interval::point(1)),
        ("epoch", Interval::new(0, 255), Interval::point(0)),
        ("bars", Interval::new(0, 255), Interval::point(0)),
    ] {
        c.spans.insert(name, span);
        c.init.insert(name, init);
    }
    c.bounds.insert("waiting", Interval::point(wd));
    c.bounds.insert("elapsed", Interval::new(tmin, tmax));
    c
}

impl DescribeMachine for MemberSpec {
    fn describe(&self) -> MachineIr {
        let rp = self.fix.receive_priority();
        let rejoin = self.fix.epoch_rejoin();

        let mut vars = vec![
            VarDecl {
                name: "status",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "view",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "waiting",
                kind: VarKind::Timer,
            },
            VarDecl {
                name: "fires",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "t",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "elapsed",
                kind: VarKind::Timer,
            },
            VarDecl {
                name: "rcvd",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "joined",
                kind: VarKind::Local,
            },
            VarDecl {
                name: "epoch",
                kind: VarKind::Epoch,
            },
        ];
        if rejoin {
            vars.push(VarDecl {
                name: "bars",
                kind: VarKind::Epoch,
            });
        }

        // The §6.1 receive-priority side condition on timeout actions.
        let time_guard = |mut g: Vec<Atom>| {
            if rp {
                g.push(Atom::NoUrgentMessage);
            }
            g
        };

        // -- participant ------------------------------------------------
        // A coordinator beat resets the watchdog and the fire ledger.
        let mut transitions = vec![Transition {
            name: "deliver-beat",
            from: "participant",
            to: "participant",
            trigger: Trigger::Receive,
            input: Some("beat"),
            guard: vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(true)],
            reads: vec!["epoch"],
            writes: vec!["waiting", "fires"],
            consumes: true,
            sends: vec!["to-coordinator"],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
            ],
            pid_scope: PidScope::Uniform,
        }];
        // The R1-style watchdog fires on coordinator silence; each fire
        // advances the succession ledger.
        transitions.push(Transition {
            name: "watchdog-fire",
            from: "participant",
            to: "participant",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![Atom::Active, Atom::TimerAtBound("waiting")]),
            reads: vec!["waiting", "fires"],
            writes: vec!["waiting", "fires"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Increment),
            ],
            pid_scope: PidScope::Uniform,
        });
        // Enough fires for this rank: claim the seat, install and
        // broadcast the superseding view.
        transitions.push(Transition {
            name: "takeover",
            from: "participant",
            to: "coordinator",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![Atom::Active, Atom::TimerAtBound("waiting")]),
            reads: vec!["waiting", "fires", "view"],
            writes: vec!["view", "waiting", "fires", "t", "elapsed", "rcvd"],
            consumes: false,
            sends: vec!["to-group"],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
                upd("t", UpdateKind::ToSpan),
                upd("elapsed", UpdateKind::Reset),
                upd("rcvd", UpdateKind::Set(0)),
            ],
            pid_scope: PidScope::Rank(
                "the succession rule counts watchdog fires against this node's rank \
                 in the view: lower ranks claim the seat sooner, so relabelling \
                 participants changes which one takes over",
            ),
        });
        // Same takeover with nobody else live: a singleton view probes
        // the universe instead of coordinating it.
        transitions.push(Transition {
            name: "takeover-solo",
            from: "participant",
            to: "solo",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![Atom::Active, Atom::TimerAtBound("waiting")]),
            reads: vec!["waiting", "fires", "view"],
            writes: vec!["view", "elapsed"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("elapsed", UpdateKind::Reset),
            ],
            pid_scope: PidScope::Rank(
                "the singleton takeover consults the same rank-ordered succession \
                 ledger as `takeover`",
            ),
        });
        // A superseding view-change frame installs the new view.
        transitions.push(Transition {
            name: "install-view",
            from: "participant",
            to: "participant",
            trigger: Trigger::Receive,
            input: Some("view"),
            guard: vec![Atom::Active, Atom::MessagePending],
            reads: vec!["view"],
            writes: vec!["view", "waiting", "fires"],
            consumes: true,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
            ],
            pid_scope: PidScope::Uniform,
        });

        // -- coordinator ------------------------------------------------
        // Round timeout, acceleration branch: halve and rebroadcast.
        transitions.push(Transition {
            name: "broadcast",
            from: "coordinator",
            to: "coordinator",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![
                Atom::Active,
                Atom::TimerAtBound("elapsed"),
                Atom::AccelAboveFloor,
            ]),
            reads: vec!["t", "elapsed", "rcvd", "view"],
            writes: vec!["t", "elapsed", "rcvd"],
            consumes: false,
            sends: vec!["to-group"],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("t", UpdateKind::ToSpan),
                upd("elapsed", UpdateKind::Reset),
                upd("rcvd", UpdateKind::Set(0)),
            ],
            pid_scope: PidScope::Uniform,
        });
        // Acceleration floor with a silent member: where the plain
        // coordinator starves out (NV-inactivation), the membership
        // coordinator *evicts* — the next view excludes the silent
        // member and the group lives on.
        transitions.push(Transition {
            name: "evict",
            from: "coordinator",
            to: "coordinator",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![
                Atom::Active,
                Atom::TimerAtBound("elapsed"),
                Atom::AccelAtFloor,
            ]),
            reads: vec!["t", "elapsed", "rcvd", "view"],
            writes: vec!["view", "t", "elapsed", "rcvd"],
            consumes: false,
            sends: vec!["to-group"],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("t", UpdateKind::ToSpan),
                upd("elapsed", UpdateKind::Reset),
                upd("rcvd", UpdateKind::Set(0)),
            ],
            pid_scope: PidScope::Uniform,
        });
        // A member's reply registers liveness (behind the epoch bar
        // under rejoin).
        {
            let mut guard = vec![Atom::Active, Atom::MessagePending, Atom::MessageFlag(true)];
            let mut reads = vec![];
            let mut writes = vec!["rcvd"];
            if rejoin {
                guard.push(Atom::EpochFresh);
                reads.push("bars");
                writes.push("bars");
            }
            transitions.push(Transition {
                name: "register-beat",
                from: "coordinator",
                to: "coordinator",
                trigger: Trigger::Receive,
                input: Some("beat"),
                guard,
                reads,
                writes,
                consumes: true,
                sends: vec![],
                epoch_effect: if rejoin {
                    EpochEffect::RaiseToTag
                } else {
                    EpochEffect::None
                },
                updates: vec![upd("rcvd", UpdateKind::Set(1))],
                pid_scope: PidScope::Uniform,
            });
        }
        // A state request admits the joiner: next view includes it (its
        // epoch as the min-epoch bar) and ships the full view back.
        {
            let mut reads = vec!["view"];
            let mut writes = vec!["view"];
            if rejoin {
                reads.push("bars");
                writes.push("bars");
            }
            transitions.push(Transition {
                name: "admit",
                from: "coordinator",
                to: "coordinator",
                trigger: Trigger::Receive,
                input: Some("state-request"),
                guard: vec![Atom::Active, Atom::MessagePending],
                reads,
                writes,
                consumes: true,
                sends: vec!["to-group"],
                epoch_effect: if rejoin {
                    EpochEffect::RaiseToTag
                } else {
                    EpochEffect::None
                },
                updates: vec![upd("view", UpdateKind::ToSpan)],
                pid_scope: PidScope::Uniform,
            });
        }
        // A superseding view demotes the (merely slow, now deposed)
        // coordinator back to participant — no split.
        transitions.push(Transition {
            name: "demote",
            from: "coordinator",
            to: "participant",
            trigger: Trigger::Receive,
            input: Some("view"),
            guard: vec![Atom::Active, Atom::MessagePending],
            reads: vec!["view"],
            writes: vec!["view", "waiting", "fires"],
            consumes: true,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
            ],
            pid_scope: PidScope::Uniform,
        });

        // -- solo -------------------------------------------------------
        // A singleton view periodically probes the universe for a group
        // to merge with (anti-entropy).
        transitions.push(Transition {
            name: "probe",
            from: "solo",
            to: "solo",
            trigger: Trigger::Time,
            input: None,
            guard: time_guard(vec![Atom::Active, Atom::TimerAtBound("elapsed")]),
            reads: vec!["elapsed", "view"],
            writes: vec!["elapsed"],
            consumes: false,
            sends: vec!["to-group"],
            epoch_effect: EpochEffect::None,
            updates: vec![upd("elapsed", UpdateKind::Reset)],
            pid_scope: PidScope::Uniform,
        });
        // A superseding view from anywhere merges the singleton back in.
        transitions.push(Transition {
            name: "merge",
            from: "solo",
            to: "participant",
            trigger: Trigger::Receive,
            input: Some("view"),
            guard: vec![Atom::Active, Atom::MessagePending],
            reads: vec!["view"],
            writes: vec!["view", "waiting", "fires"],
            consumes: true,
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![
                upd("view", UpdateKind::ToSpan),
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
            ],
            pid_scope: PidScope::Uniform,
        });

        // -- joiner -----------------------------------------------------
        // Broadcast a state request every `tmax` until admitted.
        transitions.push(Transition {
            name: "request-state",
            from: "joiner",
            to: "joiner",
            trigger: Trigger::Time,
            input: None,
            guard: vec![Atom::Active, Atom::NotJoined, Atom::TimerAtBound("elapsed")],
            reads: vec!["elapsed", "epoch"],
            writes: vec!["elapsed"],
            consumes: false,
            sends: vec!["to-group"],
            epoch_effect: EpochEffect::None,
            updates: vec![upd("elapsed", UpdateKind::Reset)],
            pid_scope: PidScope::Uniform,
        });
        // The coordinator's state reply carries the full view; under
        // rejoin the joiner only adopts a view whose bar matches its own
        // incarnation.
        {
            let mut guard = vec![Atom::Active, Atom::NotJoined, Atom::MessagePending];
            if rejoin {
                guard.push(Atom::EpochMatches);
            }
            transitions.push(Transition {
                name: "adopt-view",
                from: "joiner",
                to: "participant",
                trigger: Trigger::Receive,
                input: Some("state-reply"),
                guard,
                reads: vec!["epoch", "view"],
                writes: vec!["view", "waiting", "fires", "joined"],
                consumes: true,
                sends: vec![],
                epoch_effect: EpochEffect::None,
                updates: vec![
                    upd("view", UpdateKind::ToSpan),
                    upd("waiting", UpdateKind::Reset),
                    upd("fires", UpdateKind::Reset),
                    upd("joined", UpdateKind::Set(1)),
                ],
                pid_scope: PidScope::Uniform,
            });
        }

        // -- faults and restart ----------------------------------------
        for (name, from) in [
            ("crash-participant", "participant"),
            ("crash-coordinator", "coordinator"),
            ("crash-solo", "solo"),
            ("crash-joiner", "joiner"),
        ] {
            transitions.push(Transition {
                name,
                from,
                to: "down",
                trigger: Trigger::Fault,
                input: None,
                guard: vec![Atom::Active],
                reads: vec![],
                writes: vec!["status"],
                consumes: false,
                sends: vec![],
                epoch_effect: EpochEffect::None,
                updates: vec![upd("status", UpdateKind::Set(1))],
                pid_scope: PidScope::Uniform,
            });
        }
        // Restart: the next incarnation rejoins via state transfer.
        transitions.push(Transition {
            name: "revive",
            from: "down",
            to: "joiner",
            trigger: Trigger::Internal,
            input: None,
            guard: vec![],
            reads: vec!["epoch"],
            writes: vec!["status", "view", "waiting", "fires", "joined", "epoch"],
            consumes: false,
            sends: vec![],
            epoch_effect: EpochEffect::BumpOnRevive,
            updates: vec![
                upd("status", UpdateKind::Set(0)),
                upd("view", UpdateKind::ToSpan),
                upd("waiting", UpdateKind::Reset),
                upd("fires", UpdateKind::Reset),
                upd("joined", UpdateKind::Set(0)),
            ],
            pid_scope: PidScope::Uniform,
        });

        MachineIr {
            role: Role::Member,
            variant: self.variant,
            fix: self.fix,
            states: vec!["participant", "coordinator", "solo", "joiner", "down"],
            initial: "participant",
            vars,
            transitions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::describe::satisfiable;
    use hb_core::{FixLevel, Params, Variant};

    fn ir(fix: FixLevel) -> MachineIr {
        MemberSpec::new(Variant::Dynamic, Params::new(1, 10).unwrap(), fix).describe()
    }

    #[test]
    fn the_member_ir_is_well_formed() {
        for fix in FixLevel::ALL {
            let ir = ir(fix);
            assert_eq!(ir.name(), format!("member/dynamic/{}", fix.name()));
            assert!(ir.states.contains(&ir.initial));
            let mut names = std::collections::HashSet::new();
            for t in &ir.transitions {
                assert!(ir.states.contains(&t.from), "{}", t.name);
                assert!(ir.states.contains(&t.to), "{}", t.name);
                assert!(names.insert(t.name), "dup {}", t.name);
                assert!(satisfiable(&t.guard), "{}", t.name);
                for v in t.reads.iter().chain(&t.writes) {
                    assert!(
                        v == &"status" || ir.var_kind(v).is_some(),
                        "{} references undeclared {v}",
                        t.name
                    );
                }
            }
        }
    }

    #[test]
    fn timeouts_carry_the_side_condition_exactly_at_receive_priority() {
        for fix in FixLevel::ALL {
            let ir = ir(fix);
            for t in ir
                .transitions
                .iter()
                .filter(|t| t.trigger == Trigger::Time && t.name != "request-state")
            {
                assert_eq!(
                    t.guard.contains(&Atom::NoUrgentMessage),
                    fix.receive_priority(),
                    "{}/{}",
                    ir.name(),
                    t.name
                );
            }
        }
    }

    #[test]
    fn epoch_vars_appear_only_under_rejoin() {
        use hb_core::describe::VarKind;
        assert!(ir(FixLevel::Full).var_kind("bars") == Some(VarKind::Epoch));
        assert!(ir(FixLevel::CorrectedBounds).var_kind("bars").is_none());
    }

    /// The succession rule is genuinely rank-asymmetric, so the member
    /// machine must refuse the symmetry certificate at every fix level —
    /// with `takeover` as the named counterexample transition.
    #[test]
    fn the_member_machine_refuses_the_symmetry_certificate() {
        use hb_core::dataflow::{symmetry_certificate, SymmetryVerdict};
        for fix in FixLevel::ALL {
            match symmetry_certificate(&ir(fix)) {
                SymmetryVerdict::Refused { transition, .. } => {
                    assert_eq!(transition, "takeover")
                }
                SymmetryVerdict::Certified => panic!("member/{} must refuse", fix.name()),
            }
        }
    }

    /// The ranges the fixpoint proves for the member clocks match the
    /// urgency bounds the concretization encodes.
    #[test]
    fn member_clock_ranges_follow_urgency() {
        use hb_core::dataflow::{analyze, CHECKER_TRIGGERS};
        let spec = MemberSpec::new(
            Variant::Dynamic,
            Params::new(1, 10).unwrap(),
            FixLevel::Full,
        );
        let a = analyze(
            &spec.describe(),
            &member_concretization(&spec),
            &CHECKER_TRIGGERS,
        );
        let t = a.range("t").unwrap();
        assert_eq!((t.lo, t.hi), (1, 10));
        let elapsed = a.range("elapsed").unwrap();
        assert_eq!((elapsed.lo, elapsed.hi), (0, 10));
        assert_eq!(
            a.range("epoch").unwrap(),
            hb_core::dataflow::Interval::point(0)
        );
    }
}
