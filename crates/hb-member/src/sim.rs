//! The simulated mesh: an in-memory replica of the live loopback
//! network's fault channel.
//!
//! [`SimMesh`] consumes fault randomness in *exactly* the order
//! [`hb_net::loopback::LoopbackNet`] does — one loss draw, then one
//! uniform in-budget delay draw, per in-band frame, in send order; beats
//! counted, membership frames uncounted — so an [`Engine`](crate::Engine)
//! run over `SimMesh` and one over [`LiveMesh`](crate::live::LiveMesh)
//! with the same seed produce byte-identical event streams.

use hb_core::events::SharedTap;
use hb_core::Pid;
use hb_net::loopback::NetStats;
use hb_net::wire::Frame;
use hb_sim::channel::{FaultHook, LossModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::{Engine, MemberConfig, MemberReport, Mesh};

#[derive(Clone, Copy)]
struct Stored {
    deliver_at: u64,
    frame: Frame,
    budget_left: u32,
    seq: u64,
}

/// The simulated substrate (see module docs).
pub struct SimMesh {
    queues: Vec<Vec<Stored>>,
    loss: LossModel,
    ge_bad: bool,
    rng: StdRng,
    stats: NetStats,
    next_seq: u64,
}

impl SimMesh {
    /// A mesh for pids `0..group` with seeded loss/delay randomness.
    pub fn new(group: usize, loss: LossModel, seed: u64) -> Self {
        SimMesh {
            queues: (0..group).map(|_| Vec::new()).collect(),
            loss,
            ge_bad: false,
            rng: StdRng::seed_from_u64(seed),
            stats: NetStats::default(),
            next_seq: 0,
        }
    }

    /// One loss decision, mirroring `hb_sim::channel::Channel::drops_now`
    /// (and the loopback net's copy of it).
    fn drops_now(&mut self) -> bool {
        match self.loss {
            LossModel::Bernoulli(p) => self.rng.gen_bool(p),
            LossModel::GilbertElliott {
                to_bad,
                to_good,
                good_loss,
                bad_loss,
            } => {
                if self.ge_bad {
                    if self.rng.gen_bool(to_good) {
                        self.ge_bad = false;
                    }
                } else if self.rng.gen_bool(to_bad) {
                    self.ge_bad = true;
                }
                self.rng
                    .gen_bool(if self.ge_bad { bad_loss } else { good_loss })
            }
        }
    }
}

impl Mesh for SimMesh {
    fn send(&mut self, now: u64, dst: Pid, frame: &Frame, budget: u32) {
        assert!(dst < self.queues.len(), "no endpoint {dst}");
        let seq = self.next_seq;
        self.next_seq += 1;
        match frame {
            Frame::Control { .. } => {
                self.queues[dst].push(Stored {
                    deliver_at: now,
                    frame: *frame,
                    budget_left: 0,
                    seq,
                });
            }
            Frame::Beat { .. } => {
                self.stats.sent += 1;
                if self.drops_now() {
                    self.stats.lost += 1;
                    return;
                }
                let delay = self.rng.gen_range(0..=budget);
                self.queues[dst].push(Stored {
                    deliver_at: now + u64::from(delay),
                    frame: *frame,
                    budget_left: budget - delay,
                    seq,
                });
            }
            Frame::ViewChange { .. } | Frame::StateRequest { .. } | Frame::StateReply { .. } => {
                if self.drops_now() {
                    return;
                }
                let delay = self.rng.gen_range(0..=budget);
                self.queues[dst].push(Stored {
                    deliver_at: now + u64::from(delay),
                    frame: *frame,
                    budget_left: budget.saturating_sub(delay),
                    seq,
                });
            }
        }
    }

    fn recv_due(&mut self, now: u64, dst: Pid) -> Option<(Frame, u32)> {
        let i = self.queues[dst]
            .iter()
            .enumerate()
            .filter(|(_, m)| m.deliver_at <= now)
            .min_by_key(|(_, m)| (m.deliver_at, m.seq))
            .map(|(i, _)| i)?;
        let m = self.queues[dst].remove(i);
        if matches!(m.frame, Frame::Beat { .. }) {
            self.stats.delivered += 1;
        }
        Some((m.frame, m.budget_left))
    }

    fn any_due(&self, now: u64) -> bool {
        self.queues
            .iter()
            .any(|q| q.iter().any(|m| m.deliver_at <= now))
    }

    fn stats(&self) -> NetStats {
        self.stats
    }
}

/// Run a membership group on the simulated substrate.
pub fn run_sim(
    cfg: MemberConfig,
    hook: Option<Box<dyn FaultHook>>,
    taps: Vec<SharedTap>,
) -> MemberReport {
    let mesh = SimMesh::new(cfg.group, cfg.loss, cfg.seed);
    Engine::new(cfg, mesh, hook, taps).run()
}
