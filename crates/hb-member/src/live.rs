//! The live mesh: the membership engine over the real `hb-net` loopback
//! transport.
//!
//! [`LiveMesh`] adapts a [`LoopbackNet`] and its per-pid endpoints to
//! the engine's [`Mesh`] seam. The loopback net draws its loss and
//! delay randomness in the same order [`SimMesh`](crate::sim::SimMesh)
//! does (it is the reference `SimMesh` replicates), so the same seed
//! yields byte-identical event streams across the two substrates.
//!
//! Unlike the plain live runtime there is no injector endpoint: process
//! faults are the engine's hand, applied directly to the nodes.

use hb_core::events::SharedTap;
use hb_core::Pid;
use hb_net::loopback::{Faults, LoopbackEndpoint, LoopbackNet, NetStats};
use hb_net::transport::Transport;
use hb_net::wire::Frame;
use hb_sim::channel::FaultHook;

use crate::engine::{Engine, MemberConfig, MemberReport, Mesh};

/// The live substrate (see module docs).
pub struct LiveMesh {
    net: LoopbackNet,
    endpoints: Vec<LoopbackEndpoint>,
}

impl LiveMesh {
    /// A loopback network for pids `0..group`.
    pub fn new(group: usize, faults: Faults, seed: u64) -> Self {
        let net = LoopbackNet::new(group, faults, seed);
        let endpoints = (0..group).map(|pid| net.endpoint(pid)).collect();
        LiveMesh { net, endpoints }
    }
}

impl Mesh for LiveMesh {
    fn send(&mut self, now: u64, dst: Pid, frame: &Frame, budget: u32) {
        let src = frame.src();
        self.endpoints[src]
            .send(now, dst, frame, budget)
            .expect("loopback send to a known endpoint");
    }

    fn recv_due(&mut self, now: u64, dst: Pid) -> Option<(Frame, u32)> {
        self.endpoints[dst]
            .try_recv(now)
            .expect("loopback recv")
            .map(|r| (r.frame, r.reply_budget))
    }

    fn any_due(&self, now: u64) -> bool {
        self.net.any_deliverable(now)
    }

    fn stats(&self) -> NetStats {
        self.net.stats()
    }
}

/// Run a membership group on the live loopback substrate.
pub fn run_live(
    cfg: MemberConfig,
    hook: Option<Box<dyn FaultHook>>,
    taps: Vec<SharedTap>,
) -> MemberReport {
    let mesh = LiveMesh::new(cfg.group, Faults { loss: cfg.loss }, cfg.seed);
    Engine::new(cfg, mesh, hook, taps).run()
}
