//! The sans-IO membership machine: one [`MemberNode`] per process.
//!
//! A member node *wraps* the unmodified GM98 state machines
//! ([`CoordSpec`]/[`RespSpec`]) and reinterprets their inactivation
//! verdicts as membership actions:
//!
//! * a **participant watchdog firing** no longer inactivates the
//!   participant — it is the failure detection of the coordinator. The
//!   member of succession rank `r` (rank 0 = lowest live pid) claims the
//!   coordinator seat on its `r + 1`-th consecutive fire, so the first
//!   successor takes over one watchdog period ahead of the second: when
//!   both the coordinator *and* the first successor are dead, rank 1
//!   fires twice and takes over instead, and so on down the line.
//! * the **coordinator's acceleration bottoming out** no longer
//!   inactivates the group — the silent members are declared dead and
//!   *evicted* into the next view.
//!
//! Every view install is broadcast as a wire-v3
//! [`ViewChange`](Frame::ViewChange) frame and judged by
//! [`View::supersedes`]: a process only ever replaces its view with a
//! superseding one, so a deposed coordinator that was merely slow (or
//! partitioned) is *demoted* — it receives a superseding view, becomes a
//! plain participant (or a joiner, if it was evicted) — instead of
//! splitting the group.
//!
//! Rejoin is a state transfer in the Moirai shape: the revived process
//! broadcasts a [`StateRequest`](Frame::StateRequest) carrying its fresh
//! §7 epoch; the coordinator admits it ([`View::admit`]) with the epoch
//! as its min-epoch bar — so stale beats of the superseded incarnation
//! stay filtered — and answers with a [`StateReply`](Frame::StateReply)
//! holding the full view.
//!
//! The machine is sans-IO: inputs are explicit method calls, outputs are
//! `(destination, frame, delay budget)` triples pushed into a caller
//! vector, and observability is [`Event`]s emitted into the caller's
//! [`EventSink`] — the same schema the plain runtimes use, so `hb-monitor`
//! taps work unchanged.
//!
//! The pid ↔ machine-slot mapping: a coordinator for view `v` runs a
//! [`CoordSpec`] with `v.len() - 1` participant slots, slot `k` (1-based)
//! being the `k`-th non-coordinator member of `v` in ascending pid order.
//! For the genesis view (coordinator 0, members `0..=n`) this is the
//! identity, so a fault-free membership run *is* the plain protocol.

use hb_core::coordinator::{CoordReaction, CoordState, TimeoutOutcome};
use hb_core::events::EventSink;
use hb_core::responder::{LeaveDecision, RespState};
use hb_core::serial::serial_bump;
use hb_core::trace::Event;
use hb_core::{CoordSpec, FixLevel, Params, Pid, RespSpec, Variant, View, MAX_VIEW_MEMBERS};
use hb_net::wire::Frame;

/// An outgoing frame: `(destination, frame, delay budget)`.
pub type Outbound = (Pid, Frame, u32);

/// The protocol cell a membership group runs: variant, timing, fix level.
///
/// The membership layer is variant-generic but meant for the join
/// variants; [`MemberSpec::dynamic_full`] is the §I configuration
/// (dynamic protocol, full Atif–Mousavi fix, §7 epochs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberSpec {
    /// Protocol variant (the two-process variants cap the group at 2).
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level; [`FixLevel::Full`] enables the §7 epoch filtering the
    /// state-transfer bars rely on.
    pub fix: FixLevel,
}

impl MemberSpec {
    /// A spec for the given cell.
    pub fn new(variant: Variant, params: Params, fix: FixLevel) -> Self {
        MemberSpec {
            variant,
            params,
            fix,
        }
    }

    /// The default membership cell: dynamic variant, full fix.
    pub fn dynamic_full(params: Params) -> Self {
        Self::new(Variant::Dynamic, params, FixLevel::Full)
    }

    fn resp_spec(&self) -> RespSpec {
        RespSpec::new(self.variant, self.params, self.fix)
    }

    fn coord_spec(&self, n: usize) -> CoordSpec {
        CoordSpec::new(self.variant, self.params, n, self.fix)
    }
}

/// What a member node currently is, as reported to harnesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoleKind {
    /// Coordinating the current view.
    Coordinator,
    /// A ranked participant of the current view.
    Participant,
    /// Outside the current view, requesting a state transfer.
    Joiner,
    /// Sole member of its view, periodically probing the universe for a
    /// group to merge with.
    Solo,
    /// Crashed.
    Down,
}

enum Role {
    Coordinator { cs: CoordState },
    Participant { rs: RespState, fires: u32 },
    Joiner { elapsed: u32 },
    Solo { elapsed: u32 },
    Down,
}

/// One process of a membership group.
pub struct MemberNode {
    spec: MemberSpec,
    pid: Pid,
    /// The genesis universe size: pids `0..group` exist. Joiner and Solo
    /// anti-entropy broadcasts target the whole universe, not the
    /// (possibly stale, possibly singleton) current view — that is what
    /// lets fragmented islands find each other again.
    group: usize,
    epoch: u8,
    view: View,
    role: Role,
}

impl MemberNode {
    /// A node of the genesis group `0..group` (pid 0 coordinating).
    ///
    /// # Panics
    ///
    /// Panics if `group` is not in `2..=MAX_VIEW_MEMBERS` or `pid` is out
    /// of range.
    pub fn new(spec: MemberSpec, pid: Pid, group: usize) -> Self {
        assert!(
            (2..=MAX_VIEW_MEMBERS).contains(&group),
            "a membership group needs 2..={MAX_VIEW_MEMBERS} processes"
        );
        assert!(pid < group, "pid {pid} outside the genesis group");
        let view = View::genesis(group - 1);
        let role = if pid == 0 {
            // Genesis coordinator: the plain protocol's initial state
            // (join-variant participants enrol via their join beats).
            Role::Coordinator {
                cs: spec.coord_spec(group - 1).init_state(),
            }
        } else {
            Role::Participant {
                rs: spec.resp_spec().init_state(),
                fires: 0,
            }
        };
        MemberNode {
            spec,
            pid,
            group,
            epoch: 0,
            view,
            role,
        }
    }

    /// This node's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The currently installed view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The node's §7 incarnation.
    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    /// What the node currently is.
    pub fn role_kind(&self) -> RoleKind {
        match self.role {
            Role::Coordinator { .. } => RoleKind::Coordinator,
            Role::Participant { .. } => RoleKind::Participant,
            Role::Joiner { .. } => RoleKind::Joiner,
            Role::Solo { .. } => RoleKind::Solo,
            Role::Down => RoleKind::Down,
        }
    }

    /// Whether the node is running (not crashed).
    pub fn is_up(&self) -> bool {
        !matches!(self.role, Role::Down)
    }

    /// The §7 bar the coordinator has registered for `pid`, if this node
    /// coordinates and `pid` occupies a slot.
    pub fn registered_bar(&self, pid: Pid) -> Option<u8> {
        match &self.role {
            Role::Coordinator { cs } => self
                .slots()
                .iter()
                .position(|&p| p == pid)
                .map(|k| cs.min_epoch[k]),
            _ => None,
        }
    }

    /// Announce the genesis view (emits the `view_no = 0` install event;
    /// call once at time zero).
    pub fn start(&mut self, sink: &mut EventSink) {
        sink.emit(&Event::ViewChange {
            at: 0,
            pid: self.pid,
            view_no: self.view.view_no,
            coordinator: self.view.coordinator,
        });
    }

    /// The non-coordinator members of the current view, ascending: slot
    /// `k` (1-based) of the wrapped coordinator machine is `slots()[k-1]`.
    fn slots(&self) -> Vec<Pid> {
        self.view
            .members()
            .filter(|&p| p != self.view.coordinator)
            .collect()
    }

    /// Whether an urgent machine event is due (the harness must call
    /// [`fire`](Self::fire) before letting time pass).
    pub fn urgent(&self) -> bool {
        match &self.role {
            Role::Coordinator { cs } => self.spec.coord_spec(self.view.len() - 1).timeout_due(cs),
            Role::Participant { rs, .. } => {
                let sp = self.spec.resp_spec();
                sp.watchdog_due(rs) || sp.join_send_due(rs)
            }
            Role::Joiner { elapsed } => *elapsed >= self.spec.params.tmin(),
            Role::Solo { elapsed } => *elapsed >= self.spec.params.tmax(),
            Role::Down => false,
        }
    }

    /// Fire one due machine event. Call repeatedly while
    /// [`urgent`](Self::urgent).
    pub fn fire(&mut self, now: u64, sink: &mut EventSink, out: &mut Vec<Outbound>) {
        enum Act {
            None,
            Evict(Vec<Pid>),
            Takeover,
            RequestState,
            Probe,
        }
        let pid = self.pid;
        let fresh = self.spec.params.tmin();
        let tmin = self.spec.params.tmin();
        let slots = self.slots();
        let rank = self.view.succession_rank(pid);
        let mut act = Act::None;
        match &mut self.role {
            Role::Coordinator { cs } => {
                let cspec = self.spec.coord_spec(slots.len());
                if !cspec.timeout_due(cs) {
                    return;
                }
                // The slots whose acceleration has bottomed out — exactly
                // the condition under which the plain coordinator would
                // inactivate the whole group. The membership layer reads
                // it as "these members are dead" and evicts them instead.
                let bottomed: Vec<Pid> = slots
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| cs.jnd[k] && !cs.rcvd[k] && Params::halve(cs.tm[k]) < tmin)
                    .map(|(_, &p)| p)
                    .collect();
                if bottomed.is_empty() {
                    sink.emit(&Event::Timeout { at: now, pid });
                    match cspec.on_timeout(cs) {
                        TimeoutOutcome::Beat => {
                            for r in cspec.recipients(cs) {
                                let beat = Frame::beat(pid, cspec.beat_for(cs, r));
                                out.push((slots[r - 1], beat, fresh));
                            }
                        }
                        TimeoutOutcome::Inactivated => {
                            unreachable!("bottomed slots were pre-computed empty")
                        }
                    }
                } else {
                    act = Act::Evict(bottomed);
                }
            }
            Role::Participant { rs, fires } => {
                let rspec = self.spec.resp_spec();
                if rspec.watchdog_due(rs) {
                    // Coordinator silence: restart the watchdog and,
                    // once this member's succession turn has come, claim
                    // the seat.
                    *fires += 1;
                    rs.waiting = 0;
                    let rank = rank.expect("a participant is a ranked member");
                    if *fires as usize > rank {
                        act = Act::Takeover;
                    }
                } else if rspec.join_send_due(rs) {
                    let hb = rspec.on_join_send(rs);
                    out.push((self.view.coordinator, Frame::beat(pid, hb), fresh));
                } else {
                    return;
                }
            }
            Role::Joiner { elapsed } => {
                if *elapsed < tmin {
                    return;
                }
                *elapsed = 0;
                act = Act::RequestState;
            }
            Role::Solo { elapsed } => {
                if *elapsed < self.spec.params.tmax() {
                    return;
                }
                *elapsed = 0;
                act = Act::Probe;
            }
            Role::Down => return,
        }
        match act {
            Act::None => {}
            Act::Evict(dead) => {
                let mut v = self.view;
                for d in dead {
                    v = v.evict(d, pid);
                }
                self.install(v, None, now, sink, out);
                self.broadcast_view(out);
            }
            Act::Takeover => {
                let v = self.view.evict(self.view.coordinator, pid);
                self.install(v, None, now, sink, out);
                self.broadcast_view(out);
            }
            Act::RequestState => self.push_state_request(out),
            Act::Probe => {
                // Anti-entropy: tell the whole universe who we think we
                // are. Any process with a superseding view answers with
                // it (demoting us to a joiner of the larger group); any
                // process we supersede installs ours and rejoins us.
                let f = Frame::view_change(pid, self.view);
                for p in 0..self.group {
                    if p != pid {
                        out.push((p, f, fresh));
                    }
                }
            }
        }
    }

    /// Handle one delivered frame. `reply_budget` is the round-trip
    /// budget left at delivery; immediate replies ride on it, exactly as
    /// in the plain runtimes.
    pub fn on_frame(
        &mut self,
        now: u64,
        frame: Frame,
        reply_budget: u32,
        sink: &mut EventSink,
        out: &mut Vec<Outbound>,
    ) {
        if matches!(self.role, Role::Down) {
            // Messages to crashed processes are delivered but get no
            // reply (the paper's crash model).
            return;
        }
        let pid = self.pid;
        let fresh = self.spec.params.tmin();
        let slots = self.slots();
        match frame {
            Frame::Beat { src, hb } => {
                let mut reassert = false;
                match &mut self.role {
                    Role::Coordinator { cs } => {
                        if let Some(k) = slots.iter().position(|&p| p == src) {
                            let cspec = self.spec.coord_spec(slots.len());
                            match cspec.on_heartbeat(cs, k + 1, hb) {
                                CoordReaction::LeaveAck(slot, ack) => {
                                    out.push((
                                        slots[slot - 1],
                                        Frame::beat(pid, ack),
                                        reply_budget,
                                    ));
                                }
                                CoordReaction::None => {}
                            }
                        } else {
                            reassert = true;
                        }
                    }
                    Role::Participant { rs, fires } => {
                        if src == self.view.coordinator {
                            let rspec = self.spec.resp_spec();
                            if let Some(reply) = rspec.on_beat(rs, hb, LeaveDecision::Stay) {
                                *fires = 0;
                                out.push((src, Frame::beat(pid, reply), reply_budget));
                            }
                        } else {
                            reassert = true;
                        }
                    }
                    Role::Solo { .. } => reassert = true,
                    Role::Joiner { .. } => {} // no standing in the group yet
                    Role::Down => unreachable!(),
                }
                // A beat from outside the view (or from a deposed
                // coordinator still beating) means the sender's view is
                // stale: demote it by re-asserting ours.
                if reassert {
                    out.push((src, Frame::view_change(pid, self.view), fresh));
                }
            }
            Frame::ViewChange { src, view } | Frame::StateReply { src, view } => {
                if view.supersedes(&self.view) {
                    self.install(view, None, now, sink, out);
                } else if self.view.supersedes(&view) {
                    out.push((src, Frame::view_change(pid, self.view), fresh));
                }
                // Equal views: already agreed, nothing to say.
            }
            Frame::StateRequest {
                src,
                epoch,
                view_no: _,
            } => {
                if !matches!(self.role, Role::Coordinator { .. } | Role::Solo { .. }) {
                    return; // the coordinator answers state requests
                }
                if self.view.contains(src) && self.view.bar_of(src) == Some(epoch) {
                    // A resend of a request already admitted: answer with
                    // the current view without burning a view number.
                    sink.emit(&Event::StateTransfer {
                        at: now,
                        from: pid,
                        to: src,
                        view_no: self.view.view_no,
                    });
                    out.push((src, Frame::state_reply(pid, self.view), fresh));
                } else {
                    let v = self.view.admit(src, epoch);
                    self.install(v, Some(src), now, sink, out);
                    sink.emit(&Event::StateTransfer {
                        at: now,
                        from: pid,
                        to: src,
                        view_no: v.view_no,
                    });
                    out.push((src, Frame::state_reply(pid, v), fresh));
                    self.broadcast_view_except(out, src);
                }
            }
            Frame::Control { .. } => {} // injection traffic is the harness's hand
        }
    }

    /// Advance one time unit.
    pub fn tick(&mut self) {
        match &mut self.role {
            Role::Coordinator { cs } => {
                self.spec.coord_spec(self.view.len() - 1).tick(cs);
            }
            Role::Participant { rs, .. } => self.spec.resp_spec().tick(rs),
            Role::Joiner { elapsed } | Role::Solo { elapsed } => *elapsed += 1,
            Role::Down => {}
        }
    }

    /// Crash the node (idempotent).
    pub fn crash(&mut self, now: u64, sink: &mut EventSink) {
        if matches!(self.role, Role::Down) {
            return;
        }
        self.role = Role::Down;
        sink.emit(&Event::Crash {
            at: now,
            pid: self.pid,
        });
    }

    /// Restart a crashed node: the next §7 incarnation, immediately
    /// requesting a state transfer from whoever now coordinates.
    pub fn revive(&mut self, now: u64, sink: &mut EventSink, out: &mut Vec<Outbound>) {
        if !matches!(self.role, Role::Down) {
            return;
        }
        self.epoch = serial_bump(self.epoch);
        sink.emit(&Event::Revive {
            at: now,
            pid: self.pid,
        });
        self.role = Role::Joiner { elapsed: 0 };
        self.push_state_request(out);
    }

    /// Install `v` and re-seat this node's role in it. `joiner` marks a
    /// freshly admitted member (its slot starts un-joined in the join
    /// variants, so the §5 join handshake re-registers it).
    fn install(
        &mut self,
        v: View,
        joiner: Option<Pid>,
        now: u64,
        sink: &mut EventSink,
        out: &mut Vec<Outbound>,
    ) {
        self.view = v;
        sink.emit(&Event::ViewChange {
            at: now,
            pid: self.pid,
            view_no: v.view_no,
            coordinator: v.coordinator,
        });
        if !v.contains(self.pid) {
            // Evicted (e.g. a falsely suspected, now deposed
            // coordinator): fall back to a state transfer.
            self.role = Role::Joiner { elapsed: 0 };
            self.push_state_request(out);
        } else if v.coordinator == self.pid {
            self.seat_coordinator(joiner);
        } else if let Role::Participant { fires, .. } = &mut self.role {
            // Already a participant: the watchdog keeps running across
            // the install (the new coordinator's first beat resets it).
            *fires = 0;
        } else {
            // Demoted ex-coordinator or admitted joiner: a fresh
            // participant of the current incarnation.
            let mut rs = self.spec.resp_spec().init_state();
            rs.epoch = self.epoch;
            self.role = Role::Participant { rs, fires: 0 };
        }
    }

    /// Become the coordinator of the current view: a fresh machine whose
    /// slots inherit the view's §7 bars, with every carried member
    /// already joined (`joiner` excepted) and the first broadcast due
    /// immediately.
    fn seat_coordinator(&mut self, joiner: Option<Pid>) {
        let slots = self.slots();
        if slots.is_empty() {
            // Alone: start probing for other islands right away.
            self.role = Role::Solo {
                elapsed: self.spec.params.tmax(),
            };
            return;
        }
        let cspec = self.spec.coord_spec(slots.len());
        let mut cs = cspec.init_state();
        let join_variant = self.spec.variant.has_join_phase();
        for (k, &p) in slots.iter().enumerate() {
            cs.min_epoch[k] = self.view.bar_of(p).expect("slot is a member");
            cs.jnd[k] = !join_variant || Some(p) != joiner;
        }
        cs.elapsed = cs.t; // first beat goes out now
        self.role = Role::Coordinator { cs };
    }

    /// Broadcast the current view to every other member.
    fn broadcast_view(&self, out: &mut Vec<Outbound>) {
        self.broadcast_view_except(out, self.pid);
    }

    /// Broadcast the current view to every member other than this node
    /// and `skip` (who is answered separately).
    fn broadcast_view_except(&self, out: &mut Vec<Outbound>, skip: Pid) {
        let f = Frame::view_change(self.pid, self.view);
        for p in self.view.members() {
            if p != self.pid && p != skip {
                out.push((p, f, self.spec.params.tmin()));
            }
        }
    }

    /// Broadcast a state request to the whole universe: after an absence
    /// our view is stale (and may be a singleton), so we cannot know who
    /// coordinates now — but whoever does is among `0..group` and only
    /// the coordinator answers.
    fn push_state_request(&self, out: &mut Vec<Outbound>) {
        let f = Frame::state_request(self.pid, self.epoch, self.view.view_no);
        for p in 0..self.group {
            if p != self.pid {
                out.push((p, f, self.spec.params.tmin()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Heartbeat;

    fn spec() -> MemberSpec {
        MemberSpec::dynamic_full(Params::new(2, 8).unwrap())
    }

    fn sink() -> EventSink {
        EventSink::memory()
    }

    /// Drive a node's time forward one unit, firing anything urgent first.
    fn advance(n: &mut MemberNode, now: u64, s: &mut EventSink, out: &mut Vec<Outbound>) {
        while n.urgent() {
            n.fire(now, s, out);
        }
        n.tick();
    }

    #[test]
    fn genesis_reduces_to_the_plain_protocol() {
        let mut c = MemberNode::new(spec(), 0, 4);
        let mut s = sink();
        let mut out = Vec::new();
        c.start(&mut s);
        // Dynamic coordinator: first broadcast at tmax, to nobody (no one
        // has joined yet).
        for t in 0..=8 {
            advance(&mut c, t, &mut s, &mut out);
        }
        assert!(out.is_empty(), "no joined participants to beat");
        // A join beat enrols pid 2 in slot 2 (identity mapping).
        c.on_frame(9, Frame::beat(2, Heartbeat::plain()), 0, &mut s, &mut out);
        for t in 9..=17 {
            advance(&mut c, t, &mut s, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2, "slot 2 maps back to pid 2");
    }

    #[test]
    fn rank_zero_takes_over_on_first_fire_rank_one_on_second() {
        let mut p1 = MemberNode::new(spec(), 1, 4);
        let mut p2 = MemberNode::new(spec(), 2, 4);
        let mut s = sink();
        let mut out = Vec::new();
        // Join both, then let the coordinator fall silent.
        p1.on_frame(0, Frame::beat(0, Heartbeat::plain()), 0, &mut s, &mut out);
        p2.on_frame(0, Frame::beat(0, Heartbeat::plain()), 0, &mut s, &mut out);
        out.clear();
        let bound = RespSpec::new(Variant::Dynamic, Params::new(2, 8).unwrap(), FixLevel::Full)
            .watchdog_bound();
        let mut t = 0;
        for _ in 0..=bound {
            advance(&mut p1, t, &mut s, &mut out);
            advance(&mut p2, t, &mut s, &mut out);
            t += 1;
        }
        // Rank 0 (pid 1) has claimed the seat and broadcast its view.
        assert_eq!(p1.role_kind(), RoleKind::Coordinator);
        assert_eq!(p1.view().coordinator, 1);
        assert_eq!(p1.view().view_no, 1);
        assert!(!p1.view().contains(0), "the dead coordinator is evicted");
        // Rank 1 (pid 2) restarted its watchdog instead.
        assert_eq!(p2.role_kind(), RoleKind::Participant);
        assert_eq!(p2.view().view_no, 0);
        // Another full bound of silence and pid 2 gives up on pid 1 too.
        for _ in 0..=bound {
            advance(&mut p2, t, &mut s, &mut out);
            t += 1;
        }
        assert_eq!(p2.role_kind(), RoleKind::Coordinator);
        assert_eq!(p2.view().coordinator, 2);
        assert_eq!(
            p2.view().members().collect::<Vec<_>>(),
            vec![1, 2, 3],
            "pid 2 only knows the old coordinator is dead"
        );
        // The rival same-numbered views resolve by the tie-break: the
        // lower coordinator's wins, so pid 2 would be demoted on contact.
        assert!(p1.view().supersedes(&p2.view()));
        assert!(!p2.view().supersedes(&p1.view()));
    }

    #[test]
    fn superseding_view_demotes_a_stale_coordinator() {
        let mut old = MemberNode::new(spec(), 0, 4);
        let mut s = sink();
        let mut out = Vec::new();
        let newer = View::genesis(3).evict(0, 1).admit(0, 0);
        old.on_frame(50, Frame::view_change(1, newer), 0, &mut s, &mut out);
        assert_eq!(old.role_kind(), RoleKind::Participant);
        assert_eq!(old.view().coordinator, 1);
        // ...and a view it supersedes is answered with a re-assert.
        out.clear();
        old.on_frame(
            51,
            Frame::view_change(3, View::genesis(3)),
            0,
            &mut s,
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Frame::ViewChange { src: 0, .. }));
    }

    #[test]
    fn eviction_makes_the_node_request_state() {
        let mut node = MemberNode::new(spec(), 2, 4);
        let mut s = sink();
        let mut out = Vec::new();
        let without_me = View::genesis(3).evict(2, 0);
        node.on_frame(9, Frame::view_change(0, without_me), 0, &mut s, &mut out);
        assert_eq!(node.role_kind(), RoleKind::Joiner);
        let reqs: Vec<_> = out
            .iter()
            .filter(|(_, f, _)| matches!(f, Frame::StateRequest { src: 2, .. }))
            .collect();
        assert_eq!(reqs.len(), 3, "state request broadcast to the old view");
    }

    #[test]
    fn coordinator_admits_a_requester_and_transfers_state() {
        let mut c = MemberNode::new(spec(), 1, 4);
        let mut s = sink();
        let mut out = Vec::new();
        // Seat pid 1 as coordinator of {1, 2, 3}.
        let v = View::genesis(3).evict(0, 1);
        c.on_frame(30, Frame::view_change(1, v), 0, &mut s, &mut out);
        assert_eq!(c.role_kind(), RoleKind::Coordinator);
        out.clear();
        // Pid 0's next incarnation requests readmission.
        c.on_frame(40, Frame::state_request(0, 1, 0), 0, &mut s, &mut out);
        assert!(c.view().contains(0));
        assert_eq!(c.view().bar_of(0), Some(1), "bar set to the new epoch");
        assert_eq!(c.view().coordinator, 1, "admission does not re-seat");
        let reply = out
            .iter()
            .find(|(d, f, _)| *d == 0 && matches!(f, Frame::StateReply { .. }))
            .expect("state reply to the joiner");
        if let Frame::StateReply { view, .. } = reply.1 {
            assert!(view.contains(0));
        }
        // The other members got the new view.
        assert!(out
            .iter()
            .any(|(d, f, _)| *d == 2 && matches!(f, Frame::ViewChange { .. })));
        assert!(out
            .iter()
            .any(|(d, f, _)| *d == 3 && matches!(f, Frame::ViewChange { .. })));
        // A resend of the same request is answered without a new view.
        let burned = c.view().view_no;
        out.clear();
        c.on_frame(41, Frame::state_request(0, 1, 0), 0, &mut s, &mut out);
        assert_eq!(c.view().view_no, burned, "duplicate admit burns no number");
        assert_eq!(out.len(), 1, "just the state reply");
    }

    #[test]
    fn revive_bumps_the_epoch_and_requests_state() {
        let mut node = MemberNode::new(spec(), 0, 3);
        let mut s = sink();
        let mut out = Vec::new();
        node.crash(10, &mut s);
        assert_eq!(node.role_kind(), RoleKind::Down);
        node.revive(20, &mut s, &mut out);
        assert_eq!(node.epoch(), 1);
        assert_eq!(node.role_kind(), RoleKind::Joiner);
        assert_eq!(out.len(), 2, "requests to the two other processes");
        let log = s.take_log();
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, Event::Revive { at: 20, pid: 0 })));
    }

    #[test]
    fn takeover_to_an_empty_succession_goes_solo() {
        let mut p1 = MemberNode::new(spec(), 1, 2);
        let mut s = sink();
        let mut out = Vec::new();
        p1.on_frame(0, Frame::beat(0, Heartbeat::plain()), 0, &mut s, &mut out);
        let bound = RespSpec::new(Variant::Dynamic, Params::new(2, 8).unwrap(), FixLevel::Full)
            .watchdog_bound();
        for t in 0..=bound {
            advance(&mut p1, u64::from(t), &mut s, &mut out);
        }
        assert_eq!(p1.role_kind(), RoleKind::Solo);
        assert_eq!(p1.view().members().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn beats_from_outside_the_view_are_answered_with_the_view() {
        let mut p2 = MemberNode::new(spec(), 2, 4);
        let mut s = sink();
        let mut out = Vec::new();
        let v = View::genesis(3).evict(0, 1);
        p2.on_frame(30, Frame::view_change(1, v), 0, &mut s, &mut out);
        out.clear();
        // The deposed coordinator 0 still beats: demote it.
        p2.on_frame(31, Frame::beat(0, Heartbeat::plain()), 0, &mut s, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 0);
        assert!(matches!(out[0].1, Frame::ViewChange { src: 2, .. }));
    }
}
