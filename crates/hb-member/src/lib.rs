//! Group membership over the accelerated-heartbeat failure detector.
//!
//! GM98's protocols *detect* failure: the coordinator accelerates its
//! heartbeat toward a silent participant and, when the rate bottoms out
//! below `tmin`, the whole group inactivates. This crate reinterprets
//! those verdicts as *membership* transitions and adds the three things
//! a detector lacks:
//!
//! 1. **Views** ([`hb_core::View`]) — a monotone view number, a
//!    coordinator, a member set, and per-member §7 epoch bars, installed
//!    group-wide via wire-v3 `ViewChange` frames and ordered by
//!    [`View::supersedes`](hb_core::View::supersedes).
//! 2. **Coordinator failover** — a participant whose watchdog fires on
//!    the coordinator does not inactivate; the successor of rank `r`
//!    (lowest live pid first) claims the seat on its `r + 1`-th fire and
//!    broadcasts the next view. A deposed coordinator that was merely
//!    slow is demoted by the superseding view, not split off.
//! 3. **State transfer** — a joiner (or a revived crash victim on its
//!    next §7 incarnation) broadcasts a `StateRequest`; the coordinator
//!    admits it with its epoch as the min-epoch bar and replies with the
//!    full view in a `StateReply`.
//!
//! The machine itself ([`MemberNode`]) is sans-IO; the [`Engine`] drives
//! a whole group over a [`Mesh`] substrate — simulated
//! ([`sim::SimMesh`]) or the live `hb-net` loopback
//! ([`live::LiveMesh`]) — with identical semantics, emitting the same
//! [`hb_core::trace::Event`] stream the plain runtimes emit (plus
//! `ViewChange`/`StateTransfer`), so `hb-monitor` taps work unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod describe;
pub mod engine;
pub mod live;
pub mod node;
pub mod sim;

pub use describe::member_concretization;
pub use engine::{Engine, FaultKind, MemberConfig, MemberFault, MemberReport, Mesh, ReconvSample};
pub use live::{run_live, LiveMesh};
pub use node::{MemberNode, MemberSpec, Outbound, RoleKind};
pub use sim::{run_sim, SimMesh};

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Params;
    use hb_sim::channel::LossModel;

    fn cfg(seed: u64, duration: u64) -> MemberConfig {
        MemberConfig::clean(
            MemberSpec::dynamic_full(Params::new(2, 8).unwrap()),
            4,
            seed,
            duration,
        )
    }

    #[test]
    fn a_clean_run_stays_in_the_genesis_view() {
        let report = run_sim(cfg(11, 300), None, Vec::new());
        assert!(report.agreed());
        assert!(report.views.iter().all(|v| v.view_no == 0));
        assert!(report.roles.iter().enumerate().all(|(pid, r)| {
            *r == if pid == 0 {
                RoleKind::Coordinator
            } else {
                RoleKind::Participant
            }
        }));
        assert!(report.stats.sent > 0);
        assert_eq!(report.stats.lost, 0);
    }

    #[test]
    fn coordinator_crash_fails_over_and_reconverges() {
        let mut c = cfg(12, 600);
        c.faults.push(MemberFault {
            at: 100,
            kind: FaultKind::Crash,
            pid: 0,
        });
        let report = run_sim(c, None, Vec::new());
        // Pid 1 (lowest live) coordinates a view excluding pid 0...
        assert_eq!(report.roles[1], RoleKind::Coordinator);
        assert_eq!(report.views[1].coordinator, 1);
        assert!(!report.views[1].contains(0));
        // ...every survivor agrees...
        assert!(report.agreed());
        // ...and the sample is two-sided: detection then stability.
        let s = report.reconv[0];
        let detect = s.detect.expect("failover detected");
        let stable = s.stable.expect("new view stabilised");
        assert!(detect >= 100 && stable >= detect);
    }

    #[test]
    fn crashed_coordinator_revives_demoted_not_split() {
        let mut c = cfg(13, 900);
        c.faults.push(MemberFault {
            at: 100,
            kind: FaultKind::Crash,
            pid: 0,
        });
        c.faults.push(MemberFault {
            at: 400,
            kind: FaultKind::Revive,
            pid: 0,
        });
        let report = run_sim(c, None, Vec::new());
        // The ex-coordinator is back as a *participant* of pid 1's group.
        assert_eq!(report.roles[0], RoleKind::Participant);
        assert_eq!(report.views[0].coordinator, 1);
        assert!(report.agreed(), "one view, no split");
        // Its bar is the revived epoch, so stale incarnation beats stay
        // filtered.
        assert_eq!(report.views[1].bar_of(0), Some(1));
        // Both samples resolved.
        assert!(report.reconv[0].stable.is_some());
        assert!(report.reconv[1].stable.is_some());
        // The state transfer is on the record.
        assert!(report.events.events().iter().any(|e| matches!(
            e,
            hb_core::trace::Event::StateTransfer { from: 1, to: 0, .. }
        )));
    }

    #[test]
    fn sim_and_live_event_streams_are_byte_identical() {
        let mut c = cfg(14, 700);
        c.loss = LossModel::Bernoulli(0.05);
        c.faults.push(MemberFault {
            at: 120,
            kind: FaultKind::Crash,
            pid: 0,
        });
        c.faults.push(MemberFault {
            at: 420,
            kind: FaultKind::Revive,
            pid: 0,
        });
        let sim = run_sim(c.clone(), None, Vec::new());
        let live = run_live(c, None, Vec::new());
        let render = |r: &MemberReport| {
            r.events
                .events()
                .iter()
                .map(|e| format!("{e}\n"))
                .collect::<String>()
        };
        assert_eq!(render(&sim), render(&live));
        assert_eq!(sim.stats, live.stats);
        assert_eq!(sim.reconv, live.reconv);
    }

    #[test]
    fn lossy_run_survives_false_suspicion_without_split() {
        // Heavy bursts depose live coordinators over and over; the group
        // must keep healing — demotion by superseding view, state
        // transfer for the evicted — instead of splitting or
        // fragmenting into silent singletons.
        let mut c = cfg(13, 1500);
        c.loss = LossModel::GilbertElliott {
            to_bad: 0.05,
            to_good: 0.3,
            good_loss: 0.01,
            bad_loss: 0.9,
        };
        let report = run_sim(c, None, Vec::new());
        let churn = report.views.iter().map(|v| v.view_no).max().unwrap();
        assert!(churn > 0, "bursts must actually depose somebody");
        assert!(report.agreed(), "one view at the end, no split");
        assert!(
            report
                .roles
                .iter()
                .all(|r| matches!(r, RoleKind::Coordinator | RoleKind::Participant)),
            "nobody left stranded solo or joining: {:?}",
            report.roles
        );
    }
}
