//! The substrate-independent membership harness.
//!
//! Both the simulated and the live runs of a membership group execute
//! this one engine; only the [`Mesh`] underneath differs. The engine
//! owns everything that could diverge between substrates — the order in
//! which nodes fire, the order in which frames are routed, the
//! [`Event`] emission for transport observability, the fault schedule,
//! and the re-convergence bookkeeping — so the sim and the live harness
//! produce byte-identical event streams by construction (pinned by
//! `tests/membership_live.rs`).
//!
//! Per tick the engine (1) applies due schedule faults, (2) releases
//! fault-delayed frames, (3) runs delivery and machine firings to a
//! fixpoint, (4) resolves pending re-convergence samples, and (5) ticks
//! every node.

use hb_core::events::{EventSink, SharedTap};
use hb_core::trace::{Event, EventLog};
use hb_core::{Pid, View};
use hb_net::loopback::NetStats;
use hb_net::wire::Frame;
use hb_sim::channel::{FaultHook, LossModel, SendFate};

use crate::node::{MemberNode, MemberSpec, Outbound, RoleKind};

/// What carries frames between member nodes: the engine's only
/// substrate-dependent seam.
///
/// Implementations must consume fault randomness identically (one loss
/// draw plus one uniform in-budget delay draw per in-band frame, in send
/// order) — that is what keeps sim and live event streams byte-equal.
pub trait Mesh {
    /// Queue `frame` (whose source is `frame.src()`) for `dst`.
    fn send(&mut self, now: u64, dst: Pid, frame: &Frame, budget: u32);

    /// Take the earliest frame deliverable to `dst` at `now`, with the
    /// round-trip budget it has left.
    fn recv_due(&mut self, now: u64, dst: Pid) -> Option<(Frame, u32)>;

    /// Whether anything is deliverable anywhere at `now`.
    fn any_due(&self, now: u64) -> bool;

    /// Beat counters so far.
    fn stats(&self) -> NetStats;
}

/// A scheduled process fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemberFault {
    /// Tick at which the fault strikes.
    pub at: u64,
    /// What happens.
    pub kind: FaultKind,
    /// The afflicted process.
    pub pid: Pid,
}

/// The process-fault alphabet of a membership run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The process crashes silently.
    Crash,
    /// A crashed process restarts with a fresh §7 epoch and rejoins via
    /// state transfer.
    Revive,
}

/// Everything a membership run needs.
#[derive(Clone, Debug)]
pub struct MemberConfig {
    /// Protocol cell.
    pub spec: MemberSpec,
    /// Genesis group size (pids `0..group`, pid 0 coordinating).
    pub group: usize,
    /// Seed for the mesh's loss/delay randomness.
    pub seed: u64,
    /// Run length in ticks.
    pub duration: u64,
    /// The mesh's loss model (ignored by the mesh when a fault hook owns
    /// the drops — the chaos pipeline case).
    pub loss: LossModel,
    /// Process faults, applied in order at their ticks.
    pub faults: Vec<MemberFault>,
}

impl MemberConfig {
    /// A fault-free lossless run.
    pub fn clean(spec: MemberSpec, group: usize, seed: u64, duration: u64) -> Self {
        MemberConfig {
            spec,
            group,
            seed,
            duration,
            loss: LossModel::Bernoulli(0.0),
            faults: Vec::new(),
        }
    }
}

/// Two-sided re-convergence measurement for one fault: how long the
/// group took to *detect* the change and how long until the membership
/// was *stable* again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReconvSample {
    /// The fault measured.
    pub kind: FaultKind,
    /// The afflicted process.
    pub pid: Pid,
    /// When it struck.
    pub at: u64,
    /// Crash: first tick a surviving node installed a view excluding the
    /// victim. Revive: first tick any node's view registered the new
    /// incarnation. `None` if never within the run.
    pub detect: Option<u64>,
    /// Crash: first tick *every* up node's view excluded the victim.
    /// Revive: first tick the revived node itself was back in its own
    /// installed view. `None` if never within the run.
    pub stable: Option<u64>,
}

/// A pending sample plus the evidence needed to resolve it.
struct PendingSample {
    sample: ReconvSample,
    /// Crash: each node's view number when the fault struck (detection
    /// is a *new* view that excludes the victim).
    view_nos: Vec<u32>,
    /// Revive: the fresh incarnation's epoch.
    epoch: u8,
}

/// The outcome of a membership run.
#[derive(Debug)]
pub struct MemberReport {
    /// The full event stream (sorted by construction: emitted in tick
    /// order).
    pub events: EventLog,
    /// Each process's final view.
    pub views: Vec<View>,
    /// Each process's final role.
    pub roles: Vec<RoleKind>,
    /// Beat counters from the mesh.
    pub stats: NetStats,
    /// One two-sided sample per scheduled fault, in schedule order.
    pub reconv: Vec<ReconvSample>,
}

impl MemberReport {
    /// Whether every up node agrees on one view (same number, same
    /// coordinator, same members).
    pub fn agreed(&self) -> bool {
        let mut up = self
            .roles
            .iter()
            .zip(&self.views)
            .filter(|(r, _)| **r != RoleKind::Down)
            .map(|(_, v)| v);
        match up.next() {
            Some(first) => up.all(|v| v == first),
            None => true,
        }
    }
}

/// The engine: nodes + mesh + schedule, stepped tick by tick.
pub struct Engine<M: Mesh> {
    cfg: MemberConfig,
    nodes: Vec<MemberNode>,
    mesh: M,
    sink: EventSink,
    hook: Option<Box<dyn FaultHook>>,
    /// Frames a fault hook delayed beyond the mesh: `(release_at, dst,
    /// frame, budget)`, released in push order.
    holdback: Vec<(u64, Pid, Frame, u32)>,
    pending: Vec<PendingSample>,
    next_fault: usize,
    now: u64,
}

impl<M: Mesh> Engine<M> {
    /// An engine over `mesh`. `hook` (the chaos pipeline) decides
    /// message fates on top of the mesh; `taps` receive every event live
    /// (hb-monitor's seam).
    pub fn new(
        cfg: MemberConfig,
        mesh: M,
        hook: Option<Box<dyn FaultHook>>,
        taps: Vec<SharedTap>,
    ) -> Self {
        let nodes = (0..cfg.group)
            .map(|pid| MemberNode::new(cfg.spec, pid, cfg.group))
            .collect();
        let mut sink = EventSink::memory();
        for tap in taps {
            sink.attach_tap(tap);
        }
        Engine {
            cfg,
            nodes,
            mesh,
            sink,
            hook,
            holdback: Vec::new(),
            pending: Vec::new(),
            next_fault: 0,
            now: 0,
        }
    }

    /// Run to the configured duration and report.
    pub fn run(mut self) -> MemberReport {
        for node in &mut self.nodes {
            node.start(&mut self.sink);
        }
        while self.now < self.cfg.duration {
            self.step();
        }
        MemberReport {
            events: self.sink.take_log(),
            views: self.nodes.iter().map(MemberNode::view).collect(),
            roles: self.nodes.iter().map(MemberNode::role_kind).collect(),
            stats: self.mesh.stats(),
            reconv: self.pending.into_iter().map(|p| p.sample).collect(),
        }
    }

    fn step(&mut self) {
        self.apply_faults();
        self.release_holdbacks();
        self.fixpoint();
        self.resolve_reconv();
        for node in &mut self.nodes {
            node.tick();
        }
        self.now += 1;
    }

    /// Apply every scheduled fault due now, in schedule order.
    fn apply_faults(&mut self) {
        while self.next_fault < self.cfg.faults.len()
            && self.cfg.faults[self.next_fault].at <= self.now
        {
            let f = self.cfg.faults[self.next_fault];
            self.next_fault += 1;
            match f.kind {
                FaultKind::Crash => {
                    self.nodes[f.pid].crash(self.now, &mut self.sink);
                    let view_nos = self.nodes.iter().map(|n| n.view().view_no).collect();
                    self.pending.push(PendingSample {
                        sample: ReconvSample {
                            kind: f.kind,
                            pid: f.pid,
                            at: self.now,
                            detect: None,
                            stable: None,
                        },
                        view_nos,
                        epoch: 0,
                    });
                }
                FaultKind::Revive => {
                    let mut out = Vec::new();
                    self.nodes[f.pid].revive(self.now, &mut self.sink, &mut out);
                    let epoch = self.nodes[f.pid].epoch();
                    self.route(out);
                    self.pending.push(PendingSample {
                        sample: ReconvSample {
                            kind: f.kind,
                            pid: f.pid,
                            at: self.now,
                            detect: None,
                            stable: None,
                        },
                        view_nos: Vec::new(),
                        epoch,
                    });
                }
            }
        }
    }

    /// Release hook-delayed frames whose time has come, in push order.
    fn release_holdbacks(&mut self) {
        let now = self.now;
        let mut due = Vec::new();
        self.holdback.retain(|&(at, dst, frame, budget)| {
            if at <= now {
                due.push((dst, frame, budget));
                false
            } else {
                true
            }
        });
        for (dst, frame, budget) in due {
            self.mesh.send(now, dst, &frame, budget);
        }
    }

    /// Deliver and fire until nothing more can happen at this tick.
    /// Frames to crashed processes are still delivered (and ignored by
    /// the node) — the paper's crash model loses the process, not the
    /// channel.
    fn fixpoint(&mut self) {
        loop {
            let mut progress = false;
            for pid in 0..self.cfg.group {
                while let Some((frame, budget)) = self.mesh.recv_due(self.now, pid) {
                    progress = true;
                    if let Frame::Beat { src, hb } = frame {
                        self.sink.emit(&Event::Deliver {
                            at: self.now,
                            from: src,
                            to: pid,
                            hb,
                        });
                    }
                    let mut out = Vec::new();
                    self.nodes[pid].on_frame(self.now, frame, budget, &mut self.sink, &mut out);
                    self.route(out);
                }
            }
            for pid in 0..self.cfg.group {
                while self.nodes[pid].urgent() {
                    progress = true;
                    let mut out = Vec::new();
                    self.nodes[pid].fire(self.now, &mut self.sink, &mut out);
                    self.route(out);
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// Pass outbound frames through the fault hook and into the mesh,
    /// emitting the transport events for beats.
    fn route(&mut self, out: Vec<Outbound>) {
        for (dst, frame, budget) in out {
            let src = frame.src();
            if let Frame::Beat { hb, .. } = frame {
                self.sink.emit(&Event::Send {
                    at: self.now,
                    from: src,
                    to: dst,
                    hb,
                });
            }
            let fate = match &mut self.hook {
                Some(h) => h.fate(self.now, src, dst),
                None => SendFate::clean(),
            };
            match fate {
                SendFate::Drop => {
                    if matches!(frame, Frame::Beat { .. }) {
                        self.sink.emit(&Event::Lose {
                            at: self.now,
                            from: src,
                            to: dst,
                        });
                    }
                }
                SendFate::Deliver {
                    copies,
                    extra_delay,
                } => {
                    for _ in 0..copies {
                        if extra_delay == 0 {
                            self.mesh.send(self.now, dst, &frame, budget);
                        } else {
                            self.holdback.push((
                                self.now + u64::from(extra_delay),
                                dst,
                                frame,
                                budget,
                            ));
                        }
                    }
                }
            }
        }
    }

    /// Check every unresolved sample against the nodes' current views.
    fn resolve_reconv(&mut self) {
        let now = self.now;
        let nodes = &self.nodes;
        for p in &mut self.pending {
            let victim = p.sample.pid;
            match p.sample.kind {
                FaultKind::Crash => {
                    if p.sample.detect.is_none() {
                        let detected = nodes.iter().enumerate().any(|(i, n)| {
                            i != victim
                                && n.is_up()
                                && n.view().view_no > p.view_nos[i]
                                && !n.view().contains(victim)
                        });
                        if detected {
                            p.sample.detect = Some(now);
                        }
                    }
                    if p.sample.detect.is_some() && p.sample.stable.is_none() {
                        let stable = nodes
                            .iter()
                            .enumerate()
                            .filter(|&(i, n)| i != victim && n.is_up())
                            .all(|(_, n)| !n.view().contains(victim));
                        if stable {
                            p.sample.stable = Some(now);
                        }
                    }
                }
                FaultKind::Revive => {
                    if p.sample.detect.is_none() {
                        let detected = nodes.iter().enumerate().any(|(i, n)| {
                            i != victim && n.is_up() && n.view().bar_of(victim) == Some(p.epoch)
                        });
                        if detected {
                            p.sample.detect = Some(now);
                        }
                    }
                    if p.sample.stable.is_none() {
                        let me = &nodes[victim];
                        if me.is_up()
                            && me.role_kind() != RoleKind::Joiner
                            && me.view().bar_of(victim) == Some(p.epoch)
                        {
                            p.sample.stable = Some(now);
                        }
                    }
                }
            }
        }
    }
}
