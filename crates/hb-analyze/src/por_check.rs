//! The POR soundness cross-check and state-count reporting.
//!
//! The ample-set oracle of `hb_verify::por` carries a pen-and-paper
//! C0–C3 argument; this module is the empirical backstop the tentpole
//! demands: every Table 1/Table 2 cell is checked twice — full
//! exploration and reduced — and the verdicts must be identical.
//!
//! Cells are run at the participant count where each variant actually
//! exhibits concurrency — see [`cell_n`]. At `n = 1` the channel never
//! holds two in-flight messages, so there is nothing to commute and the
//! reduced run degenerates to the full one. Rather than reporting a
//! silent 0%, [`no_commute_note`] derives the *reason* from the IR
//! (fault-free + single participant + no unprompted participant send)
//! and the table marks those cells as expected.

use hb_core::describe::DescribeMachine;
use hb_core::{Params, RespSpec, Variant};
use hb_verify::por::verify_with_n_por;
use hb_verify::requirements::{verify_with_n, Requirement};
use hb_verify::tables::paper_params;

/// One cross-checked cell.
#[derive(Clone, Debug)]
pub struct PorCell {
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters (paper dataset).
    pub params: Params,
    /// Requirement checked.
    pub requirement: Requirement,
    /// Participant count used.
    pub n: usize,
    /// Verdict of the full exploration.
    pub holds_full: bool,
    /// Verdict under ample-set reduction.
    pub holds_por: bool,
    /// States explored without reduction.
    pub full_states: usize,
    /// States explored with reduction.
    pub por_states: usize,
    /// IR-derived explanation when 0% reduction is *expected*, not a
    /// blind spot — see [`no_commute_note`].
    pub note: Option<&'static str>,
}

impl PorCell {
    /// Whether full and reduced exploration agree — the soundness gate.
    pub fn agree(&self) -> bool {
        self.holds_full == self.holds_por
    }

    /// Explored-state reduction in percent. Negative when the reduced
    /// search explored *more* states — possible on failing cells, where
    /// both searches stop at the first violation and the reduced search
    /// order can reach it later.
    pub fn reduction_pct(&self) -> f64 {
        if self.full_states == 0 {
            return 0.0;
        }
        100.0 * (self.full_states as f64 - self.por_states as f64) / self.full_states as f64
    }
}

/// The participant count a cross-check cell runs at.
///
/// Two-process variants are pinned to `n = 1` by construction. The
/// multi-party variants run at `n = 2` for the fault-free requirements,
/// where broadcast beats and replies genuinely race; their R1 cells stay
/// at `n = 1` because the cross-check needs the *full* exploration as
/// the baseline, and the full R1 graph at `n = 2` (loss × crashes ×
/// ghost monitors) runs to hundreds of millions of states — exactly the
/// blow-up reduction exists to avoid, but unaffordable to verify
/// against exhaustively.
pub fn cell_n(variant: Variant, req: Requirement) -> usize {
    match variant {
        Variant::Binary | Variant::RevisedBinary | Variant::TwoPhase => 1,
        Variant::Static | Variant::Expanding | Variant::Dynamic => match req {
            Requirement::R1 => 1,
            _ => 2,
        },
    }
}

/// The EXPERIMENTS §G blind spot, turned into an IR-derived rule: on a
/// fault-free (`R2`/`R3`) cell with one participant whose responder IR
/// declares no time-triggered send ([`SendProfile::time_sends`] is
/// false — every participant message is a reply to a beat), at most one
/// message is ever in flight. There are no concurrent independent
/// actions, so *zero* commutable pairs exist and 0% reduction is the
/// correct answer, not a reduction failure. Cells matching the rule
/// carry this note; `R1` cells keep faults in play (crash/loss steps do
/// commute) and stay unannotated.
///
/// [`SendProfile::time_sends`]: hb_core::describe::SendProfile::time_sends
pub fn no_commute_note(
    variant: Variant,
    params: Params,
    req: Requirement,
    n: usize,
) -> Option<&'static str> {
    if n != 1 || req == Requirement::R1 {
        return None;
    }
    let resp_ir = RespSpec::new(variant, params, hb_core::FixLevel::Original).describe();
    if resp_ir.send_profile().time_sends {
        return None;
    }
    Some("no commutable pairs: one participant, fault-free, and the IR declares no unprompted participant send — at most one message is ever in flight")
}

/// Run the cross-check over every Table 1/Table 2 cell (all six
/// variants × the five paper datasets × R1–R3) at the paper's
/// `FixLevel::Original`. Panics on a verdict divergence — by
/// construction that means the ample oracle is unsound, and no caller
/// has a sensible way to continue.
pub fn por_cross_check() -> Vec<PorCell> {
    let mut cells = Vec::new();
    let variants: Vec<Variant> = Variant::TABLE1.into_iter().chain(Variant::TABLE2).collect();
    for &variant in &variants {
        for &params in &paper_params() {
            for req in Requirement::ALL {
                let n = cell_n(variant, req);
                let fix = hb_core::FixLevel::Original;
                let full = verify_with_n(variant, params, fix, req, n);
                let por = verify_with_n_por(variant, params, fix, req, n);
                let cell = PorCell {
                    variant,
                    params,
                    requirement: req,
                    n,
                    holds_full: full.holds,
                    holds_por: por.holds,
                    full_states: full.stats.states,
                    por_states: por.stats.states,
                    note: no_commute_note(variant, params, req, n),
                };
                assert!(
                    cell.agree(),
                    "POR verdict diverged on {}/{}-{}/{:?}: full={} por={}",
                    variant.name(),
                    params.tmin(),
                    params.tmax(),
                    req,
                    full.holds,
                    por.holds,
                );
                cells.push(cell);
            }
        }
    }
    cells
}

/// The fraction of cells whose reduction meets `threshold_pct`.
pub fn fraction_reduced(cells: &[PorCell], threshold_pct: f64) -> f64 {
    if cells.is_empty() {
        return 0.0;
    }
    cells
        .iter()
        .filter(|c| c.reduction_pct() >= threshold_pct)
        .count() as f64
        / cells.len() as f64
}

/// Render the explored-state table (markdown) for EXPERIMENTS.md.
/// Cells whose 0% reduction is *proven expected* ([`no_commute_note`])
/// are marked `†` and excluded from the reduction summary; the note is
/// printed once as a footnote.
pub fn render_state_table(cells: &[PorCell]) -> String {
    let mut out = String::new();
    out.push_str("| variant | tmin/tmax | req | n | full states | POR states | saved |\n");
    out.push_str("|---------|-----------|-----|---|-------------|------------|-------|\n");
    for c in cells {
        out.push_str(&format!(
            "| {} | {}/{} | {:?} | {} | {} | {} | {:.0}%{} |\n",
            c.variant.name(),
            c.params.tmin(),
            c.params.tmax(),
            c.requirement,
            c.n,
            c.full_states,
            c.por_states,
            c.reduction_pct(),
            if c.note.is_some() { " †" } else { "" },
        ));
    }
    let reducible: Vec<&PorCell> = cells.iter().filter(|c| c.note.is_none()).collect();
    let meeting = reducible
        .iter()
        .filter(|c| c.reduction_pct() >= 30.0)
        .count();
    out.push_str(&format!(
        "\n{} of {} reducible cells explored ≥ 30% fewer states under POR \
         ({} cells marked † have provably no commutable pairs); \
         verdicts agree on all cells.\n",
        meeting,
        reducible.len(),
        cells.len() - reducible.len(),
    ));
    if let Some(note) = cells.iter().find_map(|c| c.note) {
        out.push_str(&format!("\n† {note}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_note_rule_tracks_the_ir_send_profile() {
        let p = Params::new(3, 9).unwrap();
        // Binary's responder only ever replies to beats: fault-free
        // one-participant cells provably have nothing to commute.
        assert!(no_commute_note(Variant::Binary, p, Requirement::R2, 1).is_some());
        assert!(no_commute_note(Variant::TwoPhase, p, Requirement::R3, 1).is_some());
        // The expanding responder's join phase sends on a timer — two
        // messages can race even with one participant, so no note.
        assert!(no_commute_note(Variant::Expanding, p, Requirement::R2, 1).is_none());
        // R1 cells keep faults in play: crash/loss steps commute.
        assert!(no_commute_note(Variant::Binary, p, Requirement::R1, 1).is_none());
        // Multi-participant cells genuinely reduce.
        assert!(no_commute_note(Variant::Static, p, Requirement::R2, 2).is_none());
    }

    #[test]
    fn noted_cells_render_with_a_footnote_and_leave_the_summary() {
        let p = Params::new(3, 9).unwrap();
        let cell = |variant, req: Requirement, n: usize, full: usize, por: usize| PorCell {
            variant,
            params: p,
            requirement: req,
            n,
            holds_full: true,
            holds_por: true,
            full_states: full,
            por_states: por,
            note: no_commute_note(variant, p, req, n),
        };
        let cells = vec![
            cell(Variant::Binary, Requirement::R2, 1, 100, 100),
            cell(Variant::Static, Requirement::R2, 2, 100, 60),
        ];
        let table = render_state_table(&cells);
        assert!(table.contains("0% †"), "{table}");
        assert!(table.contains("1 of 1 reducible cells"), "{table}");
        assert!(table.contains("1 cells marked †"), "{table}");
        assert!(table.contains("† no commutable pairs"), "{table}");
    }
}
