//! The lint catalog over [`MachineIr`].

use hb_core::describe::{
    satisfiable, Atom, DescribeMachine, MachineIr, PidScope, Transition, Trigger, VarKind,
};
use hb_core::{CoordSpec, FixLevel, Params, RespSpec, Variant};
use hb_member::MemberSpec;

use crate::findings::{sort_findings, Finding, Lint};

/// Every protocol machine: the two plain roles plus the `hb-member`
/// view-change machine × all six variants × all four fix levels
/// (72 IRs). The IR is parameter-free, so a single representative
/// `Params` is used for construction.
pub fn all_machines() -> Vec<MachineIr> {
    let p = Params::new(1, 10).expect("valid params");
    let mut out = Vec::new();
    for v in Variant::ALL {
        for fix in FixLevel::ALL {
            out.push(CoordSpec::new(v, p, 1, fix).describe());
            out.push(RespSpec::new(v, p, fix).describe());
            out.push(MemberSpec::new(v, p, fix).describe());
        }
    }
    out
}

/// Run every lint over one machine. Findings come back in the stable
/// (machine, lint name, items) report order.
pub fn lint_machine(ir: &MachineIr) -> Vec<Finding> {
    let mut out = Vec::new();
    timeout_receive_overlap(ir, &mut out);
    unreachable_states(ir, &mut out);
    dead_transitions(ir, &mut out);
    ambiguous_receive(ir, &mut out);
    epoch_monotonicity(ir, &mut out);
    pid_concrete_guard(ir, &mut out);
    sort_findings(&mut out);
    out
}

/// Run every lint over every machine. The result is globally sorted
/// by (machine, lint name, items) — construction order never leaks
/// into the JSON stream.
pub fn lint_all(machines: &[MachineIr]) -> Vec<Finding> {
    let mut out: Vec<Finding> = machines.iter().flat_map(lint_machine).collect();
    sort_findings(&mut out);
    out
}

fn intersects(a: &[&'static str], b: &[&'static str]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// The AM09 §6 bug shape. For every (time-triggered `t`, receive `r`)
/// pair from the same control state, flag when all of:
///
/// 1. *shared instant* — both guards are jointly satisfiable together
///    with [`Atom::UrgentMessagePending`]: a message delivery is due in
///    the very instant the timer fires (the §6.1 receive-priority side
///    condition [`Atom::NoUrgentMessage`] contradicts this, which is
///    exactly how the fixed machines escape);
/// 2. *decision dependence* — `r` writes state that `t` reads: the
///    receive would have changed what the timeout decides;
/// 3. *destruction* — `t` overwrites state `r` writes, or inactivates
///    (`status` write): firing the timeout first loses the receive's
///    evidence irrecoverably.
///
/// Condition 3 is what keeps benign time/receive pairs (a periodic
/// join-phase send racing its confirmation) out of the report.
fn timeout_receive_overlap(ir: &MachineIr, out: &mut Vec<Finding>) {
    for t in ir.transitions.iter().filter(|t| t.trigger == Trigger::Time) {
        for r in ir
            .transitions
            .iter()
            .filter(|r| r.trigger == Trigger::Receive && r.from == t.from)
        {
            let decision_dependent = intersects(&r.writes, &t.reads);
            let destructive = intersects(&t.writes, &r.writes) || t.writes.contains(&"status");
            if !(decision_dependent && destructive) {
                continue;
            }
            let mut joint: Vec<Atom> = t.guard.clone();
            joint.extend(r.guard.iter().copied());
            joint.push(Atom::UrgentMessagePending);
            if satisfiable(&joint) {
                out.push(Finding {
                    machine: ir.name(),
                    lint: Lint::TimeoutReceiveOverlap,
                    items: vec![t.name.into(), r.name.into()],
                    detail: format!(
                        "'{}' can fire in the same instant as the pending receive '{}' \
                         and destroys evidence the receive records",
                        t.name, r.name
                    ),
                });
            }
        }
    }
}

/// Control states unreachable from the initial state.
fn unreachable_states(ir: &MachineIr, out: &mut Vec<Finding>) {
    let mut reached = vec![ir.initial];
    let mut frontier = vec![ir.initial];
    while let Some(s) = frontier.pop() {
        for t in ir.transitions.iter().filter(|t| t.from == s) {
            if !reached.contains(&t.to) {
                reached.push(t.to);
                frontier.push(t.to);
            }
        }
    }
    for &s in ir.states.iter().filter(|s| !reached.contains(s)) {
        out.push(Finding {
            machine: ir.name(),
            lint: Lint::UnreachableState,
            items: vec![s.into()],
            detail: format!("no transition path reaches control state '{s}'"),
        });
    }
}

/// Transitions whose guard is self-contradictory.
fn dead_transitions(ir: &MachineIr, out: &mut Vec<Finding>) {
    for t in ir.transitions.iter().filter(|t| !satisfiable(&t.guard)) {
        out.push(Finding {
            machine: ir.name(),
            lint: Lint::DeadTransition,
            items: vec![t.name.into()],
            detail: format!("guard of '{}' is unsatisfiable; it can never fire", t.name),
        });
    }
}

/// Ambiguous receive dispatch: two receive transitions from the same
/// state, for the same environment input, with jointly satisfiable
/// guards. Distinct `input` labels mark intended environment branching
/// (the dynamic stay/leave decision) and are exempt.
fn ambiguous_receive(ir: &MachineIr, out: &mut Vec<Finding>) {
    let recv: Vec<&Transition> = ir
        .transitions
        .iter()
        .filter(|t| t.trigger == Trigger::Receive)
        .collect();
    for (i, a) in recv.iter().enumerate() {
        for b in &recv[i + 1..] {
            if a.from != b.from || a.input != b.input {
                continue;
            }
            let mut joint: Vec<Atom> = a.guard.clone();
            joint.extend(b.guard.iter().copied());
            if satisfiable(&joint) {
                out.push(Finding {
                    machine: ir.name(),
                    lint: Lint::AmbiguousReceive,
                    items: vec![a.name.into(), b.name.into()],
                    detail: format!(
                        "'{}' and '{}' can both match the same message",
                        a.name, b.name
                    ),
                });
            }
        }
    }
}

/// Epoch writes must follow a monotone discipline in RFC 1982 serial
/// order — otherwise a revived node can fall behind its own bar and be
/// filtered forever.
fn epoch_monotonicity(ir: &MachineIr, out: &mut Vec<Finding>) {
    for t in &ir.transitions {
        let writes_epoch = t
            .writes
            .iter()
            .any(|w| ir.var_kind(w) == Some(VarKind::Epoch));
        if writes_epoch && !t.epoch_effect.is_monotone() {
            out.push(Finding {
                machine: ir.name(),
                lint: Lint::EpochNonMonotone,
                items: vec![t.name.into()],
                detail: format!(
                    "'{}' writes an epoch variable without a serial-order-monotone effect",
                    t.name
                ),
            });
        }
    }
}

/// Advisory: transitions whose behaviour depends on a participant's
/// concrete rank ([`PidScope::Rank`]). These are the symmetry
/// certificate's counterexamples — `hb_verify::symmetry` refuses the
/// sort-key quotient for any machine with one, falling back to the n!
/// brute-force canonicalizer. Surfaced so the forfeited speed-up is a
/// conscious design cost, never a silent one.
fn pid_concrete_guard(ir: &MachineIr, out: &mut Vec<Finding>) {
    for t in &ir.transitions {
        if let PidScope::Rank(reason) = t.pid_scope {
            out.push(Finding {
                machine: ir.name(),
                lint: Lint::PidConcreteGuard,
                items: vec![t.name.into()],
                detail: format!("'{}' consults a concrete rank: {reason}", t.name),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::describe::{EpochEffect, Role, VarDecl};

    /// A minimal synthetic IR to drive the structural lints that the
    /// real machines (deliberately) never trip.
    fn synthetic() -> MachineIr {
        let t = |name, from, to, trigger, guard: Vec<Atom>| Transition {
            name,
            from,
            to,
            trigger,
            input: None,
            guard,
            reads: vec![],
            writes: vec![],
            consumes: matches!(trigger, Trigger::Receive),
            sends: vec![],
            epoch_effect: EpochEffect::None,
            updates: vec![],
            pid_scope: hb_core::describe::PidScope::Uniform,
        };
        MachineIr {
            role: Role::Responder,
            variant: Variant::Binary,
            fix: FixLevel::Original,
            states: vec!["a", "b", "orphan"],
            initial: "a",
            vars: vec![VarDecl {
                name: "epoch",
                kind: VarKind::Epoch,
            }],
            transitions: vec![
                t("go", "a", "b", Trigger::Internal, vec![]),
                t(
                    "never",
                    "a",
                    "b",
                    Trigger::Time,
                    vec![Atom::Joined, Atom::NotJoined],
                ),
                t(
                    "recv-one",
                    "b",
                    "b",
                    Trigger::Receive,
                    vec![Atom::MessagePending],
                ),
                t(
                    "recv-two",
                    "b",
                    "b",
                    Trigger::Receive,
                    vec![Atom::MessagePending, Atom::Active],
                ),
                Transition {
                    writes: vec!["epoch"],
                    epoch_effect: EpochEffect::Clobber,
                    ..t("clobber", "b", "a", Trigger::Internal, vec![])
                },
            ],
        }
    }

    #[test]
    fn synthetic_ir_trips_the_structural_lints() {
        let findings = lint_machine(&synthetic());
        let lints: Vec<Lint> = findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&Lint::UnreachableState), "{findings:?}");
        assert!(lints.contains(&Lint::DeadTransition), "{findings:?}");
        assert!(lints.contains(&Lint::AmbiguousReceive), "{findings:?}");
        assert!(lints.contains(&Lint::EpochNonMonotone), "{findings:?}");
        assert!(!lints.contains(&Lint::TimeoutReceiveOverlap));
    }

    #[test]
    fn distinct_inputs_exempt_intended_branching() {
        let mut ir = synthetic();
        for t in ir.transitions.iter_mut() {
            if t.name == "recv-one" {
                t.input = Some("stay");
            }
        }
        let findings = lint_machine(&ir);
        assert!(!findings.iter().any(|f| f.lint == Lint::AmbiguousReceive));
    }

    #[test]
    fn enumerates_all_72_machines() {
        assert_eq!(all_machines().len(), 72);
    }

    #[test]
    fn rank_scoped_transition_trips_the_advisory_lint() {
        let mut ir = synthetic();
        ir.transitions[0].pid_scope = hb_core::describe::PidScope::Rank("lowest rank wins");
        let findings = lint_machine(&ir);
        let f = findings
            .iter()
            .find(|f| f.lint == Lint::PidConcreteGuard)
            .expect("rank scope must be flagged");
        assert_eq!(f.items, vec!["go".to_string()]);
        assert!(f.detail.contains("lowest rank wins"));
    }

    #[test]
    fn only_member_machines_carry_the_rank_advisory() {
        for ir in all_machines() {
            let findings = lint_machine(&ir);
            let rank_findings: Vec<&Finding> = findings
                .iter()
                .filter(|f| f.lint == Lint::PidConcreteGuard)
                .collect();
            let is_member = ir.name().starts_with("member/");
            assert_eq!(
                !rank_findings.is_empty(),
                is_member,
                "rank advisory mismatch on {}",
                ir.name()
            );
            if is_member {
                assert!(
                    rank_findings
                        .iter()
                        .all(|f| f.items[0].starts_with("takeover")),
                    "unexpected rank-scoped transition on {}: {rank_findings:?}",
                    ir.name()
                );
            }
        }
    }

    #[test]
    fn lint_all_is_globally_sorted() {
        let findings = lint_all(&all_machines());
        let keys: Vec<(String, &str, Vec<String>)> = findings
            .iter()
            .map(|f| (f.machine.clone(), f.lint.name(), f.items.clone()))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
