//! `hb-analyze` — static analysis of the heartbeat protocol machines.
//!
//! AM09's headline bugs in the GM98 family all share one static shape: a
//! time-triggered action (round timeout, watchdog) racing a receive on
//! jointly satisfiable guards, where the timeout destroys or pre-empts
//! the liveness evidence the receive would have recorded. `hb-verify`
//! finds those bugs dynamically by exhaustive exploration; this crate
//! finds the *shape* statically, in microseconds, from the machines' own
//! transition-system IR ([`hb_core::describe`]).
//!
//! Three parts:
//!
//! * [`lints`] — structural checks over every `variant × FixLevel`
//!   machine: the timeout-vs-receive overlap above, unreachable control
//!   states, dead (unsatisfiable) transitions, ambiguous receive
//!   dispatch, epoch monotonicity, and the advisory `pid-concrete-guard`
//!   (rank-dependent transitions that forfeit the symmetry quotient).
//!   Findings sort deterministically by (machine, lint, items) and
//!   render as single-line JSON ([`Finding::to_json`], with a
//!   `severity` field) and as a human report.
//! * [`dataflow`] — the report surface of `hb_core::dataflow`: proven
//!   interval ranges (the widths `hb_verify`'s bit-packed codec uses)
//!   and the static symmetry certificate for all 72 machines.
//! * [`por_check`] — the soundness gate for the independence-driven
//!   partial-order reduction of [`hb_verify::por`]: re-checks every
//!   Table 1/Table 2 cell with and without reduction, insists on
//!   identical verdicts, and reports the explored-state savings —
//!   annotating the cells where the IR proves zero commutable pairs
//!   exist.
//!
//! The expected lint outcome is itself a regression oracle: every
//! machine below the §6.1 receive-priority fix trips the overlap lint,
//! and every machine at `ReceivePriority`/`Full` is clean — asserted by
//! the workspace golden tests and the `hb_analyze --deny-findings` CI
//! gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod findings;
pub mod lints;
pub mod por_check;

pub use dataflow::{dataflow_report, render_dataflow, verdict_counts, MachineReport};
pub use findings::{render_human, sort_findings, Finding, Lint};
pub use lints::{all_machines, lint_all, lint_machine};
pub use por_check::{no_commute_note, por_cross_check, render_state_table, PorCell};
