//! Lint findings: machine-readable JSON and the human report.

/// The lint that produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A time-triggered transition and a receive from the same control
    /// state are jointly enabled at an urgent-delivery instant, the
    /// receive writes state the timeout's decision reads, and the
    /// timeout clobbers the receive's writes or inactivates — the AM09
    /// §6 bug class.
    TimeoutReceiveOverlap,
    /// A control state no transition path can reach from the initial
    /// state.
    UnreachableState,
    /// A transition whose guard is self-contradictory and can never
    /// fire.
    DeadTransition,
    /// Two receive transitions from the same state, for the same
    /// environment input, with jointly satisfiable guards: dispatch is
    /// ambiguous.
    AmbiguousReceive,
    /// A transition writes an epoch variable without a monotone
    /// (RFC 1982 serial order) discipline.
    EpochNonMonotone,
    /// A transition's behaviour depends on the concrete rank of a
    /// participant ([`hb_core::describe::PidScope::Rank`]): the machine
    /// cannot be symmetry-certified and the quotient checker refuses
    /// it. Advisory — rank dependence is legitimate (deterministic
    /// coordinator takeover needs it) but costs the n! → n log n
    /// canonicalization speed-up, so it is surfaced, not denied.
    PidConcreteGuard,
}

impl Lint {
    /// Stable kebab-case identifier (JSON `lint` field).
    pub fn name(self) -> &'static str {
        match self {
            Lint::TimeoutReceiveOverlap => "timeout-receive-overlap",
            Lint::UnreachableState => "unreachable-state",
            Lint::DeadTransition => "dead-transition",
            Lint::AmbiguousReceive => "ambiguous-receive",
            Lint::EpochNonMonotone => "epoch-non-monotone",
            Lint::PidConcreteGuard => "pid-concrete-guard",
        }
    }

    /// Advisory lints inform without failing `--deny-findings`: they
    /// flag a cost (a forfeited optimization), not a defect.
    pub fn is_advisory(self) -> bool {
        matches!(self, Lint::PidConcreteGuard)
    }

    /// JSON `severity` field value.
    pub fn severity(self) -> &'static str {
        if self.is_advisory() {
            "advisory"
        } else {
            "error"
        }
    }
}

/// One finding of one lint on one machine.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Machine identifier (`role/variant/fix`).
    pub machine: String,
    /// Which lint fired.
    pub lint: Lint,
    /// The transition or state names involved.
    pub items: Vec<String>,
    /// One-sentence explanation.
    pub detail: String,
}

impl Finding {
    /// The finding as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.items.iter().map(|i| format!("\"{i}\"")).collect();
        format!(
            "{{\"machine\":\"{}\",\"lint\":\"{}\",\"severity\":\"{}\",\"items\":[{}],\"detail\":\"{}\"}}",
            self.machine,
            self.lint.name(),
            self.lint.severity(),
            items.join(","),
            self.detail.replace('\\', "\\\\").replace('"', "\\\""),
        )
    }
}

/// Sort findings into the stable report order: machine, then lint
/// name, then involved items. Lint order is by *name* (the public,
/// kebab-case identifier), not enum declaration order, so the JSON
/// stream stays stable if the enum is ever reordered.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.machine.as_str(), a.lint.name(), &a.items).cmp(&(
            b.machine.as_str(),
            b.lint.name(),
            &b.items,
        ))
    });
}

/// Render findings as a human report: one block per machine with
/// findings, plus a one-line summary.
pub fn render_human(findings: &[Finding], machines_checked: usize) -> String {
    let mut out = String::new();
    let mut last_machine = "";
    for f in findings {
        if f.machine != last_machine {
            out.push_str(&format!("{}\n", f.machine));
            last_machine = &f.machine;
        }
        out.push_str(&format!(
            "  [{}{}] {}: {}\n",
            f.lint.name(),
            if f.lint.is_advisory() {
                ", advisory"
            } else {
                ""
            },
            f.items.join(" / "),
            f.detail
        ));
    }
    let advisory = findings.iter().filter(|f| f.lint.is_advisory()).count();
    if advisory > 0 {
        out.push_str(&format!(
            "{} finding(s) ({} advisory) across {} machine(s) checked\n",
            findings.len(),
            advisory,
            machines_checked
        ));
    } else {
        out.push_str(&format!(
            "{} finding(s) across {} machine(s) checked\n",
            findings.len(),
            machines_checked
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_escaped() {
        let f = Finding {
            machine: "coordinator/binary/original".into(),
            lint: Lint::TimeoutReceiveOverlap,
            items: vec!["accelerate".into(), "register-beat".into()],
            detail: "a \"race\"".into(),
        };
        assert_eq!(
            f.to_json(),
            "{\"machine\":\"coordinator/binary/original\",\
             \"lint\":\"timeout-receive-overlap\",\
             \"severity\":\"error\",\
             \"items\":[\"accelerate\",\"register-beat\"],\
             \"detail\":\"a \\\"race\\\"\"}"
        );
    }

    #[test]
    fn only_the_rank_lint_is_advisory() {
        for lint in [
            Lint::TimeoutReceiveOverlap,
            Lint::UnreachableState,
            Lint::DeadTransition,
            Lint::AmbiguousReceive,
            Lint::EpochNonMonotone,
        ] {
            assert!(!lint.is_advisory());
            assert_eq!(lint.severity(), "error");
        }
        assert!(Lint::PidConcreteGuard.is_advisory());
        assert_eq!(Lint::PidConcreteGuard.severity(), "advisory");
    }

    #[test]
    fn sort_is_by_machine_then_lint_name_then_items() {
        let f = |m: &str, lint, item: &str| Finding {
            machine: m.into(),
            lint,
            items: vec![item.into()],
            detail: "d".into(),
        };
        let mut v = vec![
            f("b", Lint::DeadTransition, "z"),
            f("a", Lint::UnreachableState, "x"),
            f("a", Lint::AmbiguousReceive, "y"),
            f("a", Lint::AmbiguousReceive, "w"),
        ];
        sort_findings(&mut v);
        let keys: Vec<(String, &str, String)> = v
            .iter()
            .map(|f| (f.machine.clone(), f.lint.name(), f.items[0].clone()))
            .collect();
        assert_eq!(
            keys,
            vec![
                ("a".into(), "ambiguous-receive", "w".into()),
                ("a".into(), "ambiguous-receive", "y".into()),
                ("a".into(), "unreachable-state", "x".into()),
                ("b".into(), "dead-transition", "z".into()),
            ]
        );
    }

    #[test]
    fn human_report_groups_by_machine() {
        let f = |m: &str| Finding {
            machine: m.into(),
            lint: Lint::UnreachableState,
            items: vec!["x".into()],
            detail: "d".into(),
        };
        let r = render_human(&[f("a"), f("a"), f("b")], 4);
        assert_eq!(r.matches("a\n").count(), 1);
        assert!(r.contains("3 finding(s) across 4 machine(s)"));
    }
}
