//! Lint findings: machine-readable JSON and the human report.

/// The lint that produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Lint {
    /// A time-triggered transition and a receive from the same control
    /// state are jointly enabled at an urgent-delivery instant, the
    /// receive writes state the timeout's decision reads, and the
    /// timeout clobbers the receive's writes or inactivates — the AM09
    /// §6 bug class.
    TimeoutReceiveOverlap,
    /// A control state no transition path can reach from the initial
    /// state.
    UnreachableState,
    /// A transition whose guard is self-contradictory and can never
    /// fire.
    DeadTransition,
    /// Two receive transitions from the same state, for the same
    /// environment input, with jointly satisfiable guards: dispatch is
    /// ambiguous.
    AmbiguousReceive,
    /// A transition writes an epoch variable without a monotone
    /// (RFC 1982 serial order) discipline.
    EpochNonMonotone,
}

impl Lint {
    /// Stable kebab-case identifier (JSON `lint` field).
    pub fn name(self) -> &'static str {
        match self {
            Lint::TimeoutReceiveOverlap => "timeout-receive-overlap",
            Lint::UnreachableState => "unreachable-state",
            Lint::DeadTransition => "dead-transition",
            Lint::AmbiguousReceive => "ambiguous-receive",
            Lint::EpochNonMonotone => "epoch-non-monotone",
        }
    }
}

/// One finding of one lint on one machine.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Machine identifier (`role/variant/fix`).
    pub machine: String,
    /// Which lint fired.
    pub lint: Lint,
    /// The transition or state names involved.
    pub items: Vec<String>,
    /// One-sentence explanation.
    pub detail: String,
}

impl Finding {
    /// The finding as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.items.iter().map(|i| format!("\"{i}\"")).collect();
        format!(
            "{{\"machine\":\"{}\",\"lint\":\"{}\",\"items\":[{}],\"detail\":\"{}\"}}",
            self.machine,
            self.lint.name(),
            items.join(","),
            self.detail.replace('\\', "\\\\").replace('"', "\\\""),
        )
    }
}

/// Render findings as a human report: one block per machine with
/// findings, plus a one-line summary.
pub fn render_human(findings: &[Finding], machines_checked: usize) -> String {
    let mut out = String::new();
    let mut last_machine = "";
    for f in findings {
        if f.machine != last_machine {
            out.push_str(&format!("{}\n", f.machine));
            last_machine = &f.machine;
        }
        out.push_str(&format!(
            "  [{}] {}: {}\n",
            f.lint.name(),
            f.items.join(" / "),
            f.detail
        ));
    }
    out.push_str(&format!(
        "{} finding(s) across {} machine(s) checked\n",
        findings.len(),
        machines_checked
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_flat_and_escaped() {
        let f = Finding {
            machine: "coordinator/binary/original".into(),
            lint: Lint::TimeoutReceiveOverlap,
            items: vec!["accelerate".into(), "register-beat".into()],
            detail: "a \"race\"".into(),
        };
        assert_eq!(
            f.to_json(),
            "{\"machine\":\"coordinator/binary/original\",\
             \"lint\":\"timeout-receive-overlap\",\
             \"items\":[\"accelerate\",\"register-beat\"],\
             \"detail\":\"a \\\"race\\\"\"}"
        );
    }

    #[test]
    fn human_report_groups_by_machine() {
        let f = |m: &str| Finding {
            machine: m.into(),
            lint: Lint::UnreachableState,
            items: vec!["x".into()],
            detail: "d".into(),
        };
        let r = render_human(&[f("a"), f("a"), f("b")], 4);
        assert_eq!(r.matches("a\n").count(), 1);
        assert!(r.contains("3 finding(s) across 4 machine(s)"));
    }
}
