//! The dataflow report: proven variable ranges and symmetry verdicts
//! for every protocol machine.
//!
//! This is the user-facing surface of `hb_core::dataflow`: for each of
//! the 72 IRs ([`crate::all_machines`]) it runs the interval/parity
//! fixpoint under that machine's [`Concretization`] and attaches the
//! static symmetry certificate. Two consumers depend on the same
//! numbers:
//!
//! * `hb_verify::packed::HbCodec` sizes its bit fields from the proven
//!   ranges — the report makes the widths auditable (`bits` column);
//! * `hb_verify::symmetry::certified_canonical` gates the O(n log n)
//!   sort-key quotient on the certificate — the report names the
//!   counterexample transition for every refused machine.
//!
//! The analysis runs under the checker trigger set
//! ([`CHECKER_TRIGGERS`]): `Internal` revive steps are out of scope for
//! the model checker, which is exactly what pins the epoch variables to
//! zero-width fields.

use hb_core::dataflow::{
    analyze, symmetry_certificate, Concretization, Interval, SymmetryVerdict, CHECKER_TRIGGERS,
};
use hb_core::describe::DescribeMachine;
use hb_core::{CoordSpec, FixLevel, Params, RespSpec, Variant};
use hb_member::describe::member_concretization;
use hb_member::MemberSpec;

/// One machine's analysis summary.
#[derive(Clone, Debug)]
pub struct MachineReport {
    /// Machine identifier (`role/variant/fix`).
    pub machine: String,
    /// Machine-wide proven range and packed bit width per variable,
    /// in declaration order.
    pub ranges: Vec<VarRange>,
    /// Control states the checker trigger set cannot reach.
    pub unreachable: Vec<&'static str>,
    /// The static interchangeability certificate.
    pub verdict: SymmetryVerdict,
}

/// A proven range for one declared variable.
#[derive(Clone, Copy, Debug)]
pub struct VarRange {
    /// Variable name.
    pub var: &'static str,
    /// Machine-wide interval hull.
    pub range: Interval,
    /// Bits a packed encoding needs for this variable.
    pub bits: u32,
}

impl MachineReport {
    /// Total packed bits across all declared variables.
    pub fn total_bits(&self) -> u32 {
        self.ranges.iter().map(|r| r.bits).sum()
    }
}

fn report(
    machine: String,
    ir: &hb_core::describe::MachineIr,
    conc: &Concretization,
) -> MachineReport {
    let a = analyze(ir, conc, &CHECKER_TRIGGERS);
    let ranges = ir
        .vars
        .iter()
        .map(|decl| {
            // A variable the machine declares but the analysis never
            // saw written stays at its initial interval.
            let range = a
                .range(decl.name)
                .unwrap_or_else(|| conc.initial(decl.name));
            VarRange {
                var: decl.name,
                range,
                bits: range.bits(),
            }
        })
        .collect();
    MachineReport {
        machine,
        ranges,
        unreachable: a.unreachable,
        verdict: symmetry_certificate(ir),
    }
}

/// Analyze all 72 machines, in [`crate::all_machines`] order.
pub fn dataflow_report() -> Vec<MachineReport> {
    let p = Params::new(1, 10).expect("valid params");
    let mut out = Vec::new();
    for v in Variant::ALL {
        for fix in FixLevel::ALL {
            let cs = CoordSpec::new(v, p, 1, fix);
            out.push(report(
                cs.describe().name(),
                &cs.describe(),
                &Concretization::coordinator(&cs),
            ));
            let rs = RespSpec::new(v, p, fix);
            out.push(report(
                rs.describe().name(),
                &rs.describe(),
                &Concretization::responder(&rs),
            ));
            let ms = MemberSpec::new(v, p, fix);
            out.push(report(
                ms.describe().name(),
                &ms.describe(),
                &member_concretization(&ms),
            ));
        }
    }
    out.sort_by(|a, b| a.machine.cmp(&b.machine));
    out
}

/// Count `(certified, refused)` machines.
pub fn verdict_counts(reports: &[MachineReport]) -> (usize, usize) {
    let certified = reports.iter().filter(|r| r.verdict.is_certified()).count();
    (certified, reports.len() - certified)
}

/// Render the report for the CLI: one block per machine with the
/// symmetry verdict and the proven ranges, then a verdict summary.
pub fn render_dataflow(reports: &[MachineReport]) -> String {
    let mut out = String::new();
    for r in reports {
        out.push_str(&format!("{}\n", r.machine));
        match r.verdict {
            SymmetryVerdict::Certified => {
                out.push_str("  symmetry: certified (sort-key quotient admissible)\n");
            }
            SymmetryVerdict::Refused { transition, reason } => {
                out.push_str(&format!(
                    "  symmetry: refused — '{transition}' is rank-dependent ({reason})\n"
                ));
            }
        }
        for vr in &r.ranges {
            out.push_str(&format!(
                "  {:>16} ∈ [{}, {}]  ({} bit{})\n",
                vr.var,
                vr.range.lo,
                vr.range.hi,
                vr.bits,
                if vr.bits == 1 { "" } else { "s" },
            ));
        }
        if !r.unreachable.is_empty() {
            out.push_str(&format!(
                "  unreachable under checker triggers: {}\n",
                r.unreachable.join(", ")
            ));
        }
        out.push_str(&format!("  total packed: {} bits\n", r.total_bits()));
    }
    let (certified, refused) = verdict_counts(reports);
    out.push_str(&format!(
        "{certified} machine(s) certified interchangeable, {refused} refused, \
         of {} analyzed\n",
        reports.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_machine_gets_a_verdict_and_plain_roles_certify() {
        let reports = dataflow_report();
        assert_eq!(reports.len(), 72);
        let (certified, refused) = verdict_counts(&reports);
        assert_eq!(
            certified, 48,
            "both plain roles of all 24 variant×fix cells"
        );
        assert_eq!(refused, 24, "every member machine has a takeover");
        for r in &reports {
            let is_member = r.machine.starts_with("member/");
            assert_eq!(
                !r.verdict.is_certified(),
                is_member,
                "verdict mismatch on {}",
                r.machine
            );
            if let SymmetryVerdict::Refused { transition, .. } = r.verdict {
                assert!(
                    transition.starts_with("takeover"),
                    "{}: unexpected counterexample '{transition}'",
                    r.machine
                );
            }
        }
    }

    #[test]
    fn report_is_sorted_and_every_declared_var_has_a_range() {
        let reports = dataflow_report();
        let names: Vec<&String> = reports.iter().map(|r| &r.machine).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        for r in &reports {
            assert!(!r.ranges.is_empty(), "{} declares no variables?", r.machine);
            for vr in &r.ranges {
                assert!(vr.range.lo <= vr.range.hi);
                assert!(vr.bits <= 32);
            }
        }
    }

    #[test]
    fn epochs_are_zero_width_under_checker_triggers() {
        // The checker never revives, so every epoch-kinded variable is
        // pinned at its initial point value — the packed encoding's
        // headline saving, asserted here at the report surface.
        let reports = dataflow_report();
        for r in reports
            .iter()
            .filter(|r| r.machine.starts_with("responder/"))
        {
            for vr in r.ranges.iter().filter(|vr| vr.var == "epoch") {
                assert_eq!(vr.bits, 0, "{}: epoch should be pinned", r.machine);
            }
        }
    }

    #[test]
    fn render_names_the_takeover_counterexample() {
        let reports = dataflow_report();
        let text = render_dataflow(&reports);
        assert!(text.contains("48 machine(s) certified"), "{text}");
        assert!(text.contains("24 refused"));
        assert!(text.contains("refused — 'takeover"));
        assert!(text.contains("certified (sort-key quotient admissible)"));
    }
}
