//! A std-only, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! replaces the real `proptest` with this path crate. It provides the
//! [`Strategy`] abstraction (ranges, tuples, [`Just`], [`prop::sample::select`],
//! [`prop::collection::vec`], [`any`], `prop_map`, [`prop_oneof!`]), the
//! [`proptest!`] test macro and the `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` family.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! the generated inputs verbatim) and a fixed deterministic seed per test
//! process, so failures are reproducible by re-running the test.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SampleUniform, SeedableRng};

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map generated values through `f` (mirrors `proptest`'s
    /// `Strategy::prop_map`).
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<T: SampleUniform + fmt::Debug> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + fmt::Debug> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<V: fmt::Debug> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($v,)+) = self;
                ($($v.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / a, B / b);
impl_tuple_strategy!(A / a, B / b, C / c);
impl_tuple_strategy!(A / a, B / b, C / c, D / d);

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical full-range strategy (see [`any`]).
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct ArbStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> ArbStrategy<T> {
    ArbStrategy(PhantomData)
}

/// Box a strategy for use in heterogeneous unions ([`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// A uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Build a union; panics if `arms` is empty.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Sub-strategies under the `prop::` path, as in the real crate.
pub mod prop {
    /// Sampling from explicit value sets.
    pub mod sample {
        use super::super::*;

        /// A strategy drawing uniformly from a fixed set.
        pub struct Select<T: Clone + fmt::Debug>(Vec<T>);

        impl<T: Clone + fmt::Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut StdRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// Choose uniformly from `items` (mirrors `prop::sample::select`).
        ///
        /// # Panics
        ///
        /// Panics if `items` is empty.
        pub fn select<T: Clone + fmt::Debug>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select needs at least one item");
            Select(items)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use super::super::*;

        /// A strategy for vectors with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `element` with length drawn from `len` (mirrors
        /// `prop::collection::vec`).
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }
}

/// Per-test configuration (only the case count is honoured).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; try other inputs.
    Reject,
    /// `prop_assert!`-family failure.
    Fail(String),
}

/// Test-runner plumbing used by the [`proptest!`] expansion; not part of
/// the public API of the real crate.
pub fn run_cases<F>(cfg: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> (String, Result<(), TestCaseError>),
{
    let mut rng = StdRng::seed_from_u64(0x70_72_6F_70_74_65_73_74); // "proptest"
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    while accepted < cfg.cases {
        let (inputs, outcome) = case(&mut rng);
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 16 * cfg.cases + 1024,
                    "prop_assume! rejected too many cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed: {msg}\n    inputs: {inputs}")
            }
        }
    }
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            $crate::run_cases($cfg, |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __val = $crate::Strategy::generate(&$strat, __rng);
                    __inputs.push_str(&::std::format!(
                        ::std::concat!(::std::stringify!($arg), " = {:?}; "),
                        &__val
                    ));
                    let $arg = __val;
                )+
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                (__inputs, __outcome)
            });
        }
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
}

/// `assert!` for property bodies: fails the case instead of panicking
/// directly, so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l != __r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n    left: {:?}\n   right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// A strategy choosing among the given arms uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed($arm)),+])
    };
}

/// The common imports, as in the real crate.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 1u32..=16, (a, b) in (0u8..4, any::<bool>())) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn mapping_and_collections(
            v in prop::collection::vec((0u32..10).prop_map(|n| n * 2), 0..8),
        ) {
            prop_assert!(v.len() < 8);
            prop_assert!(v.iter().all(|n| n % 2 == 0 && *n < 20));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn oneof_and_select(
            pick in prop_oneof![Just(1u8), Just(2u8), (3u8..=9).prop_map(|v| v)],
            sel in prop::sample::select(vec!["a", "b"]),
        ) {
            prop_assert!((1..=9).contains(&pick));
            prop_assert!(sel == "a" || sel == "b");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failures_report_inputs() {
        crate::run_cases(ProptestConfig::with_cases(8), |rng| {
            let x = crate::Strategy::generate(&(0u32..10), rng);
            let outcome = (|| -> Result<(), crate::TestCaseError> {
                prop_assert!(x > 100, "x was {x}");
                Ok(())
            })();
            (format!("x = {x:?}"), outcome)
        });
    }
}
