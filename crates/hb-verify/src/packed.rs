//! Bit-packed state encoding for the composed heartbeat model, with
//! field widths taken from the IR dataflow analysis.
//!
//! [`HbCodec`] implements [`mck::packed::StateCodec`] for [`HbState`]:
//! every numeric field is stored as `value - lo` in exactly
//! [`Interval::bits`] bits of its *proven* reachable range, computed by
//! [`hb_core::dataflow::system_ranges`] under the checker's trigger set
//! (no revive, so epochs stay pinned near zero and the 8-bit epoch
//! fields cost 0–1 bits instead of 8). Booleans cost one bit, statuses
//! two.
//!
//! The widths are a *contract*, not a heuristic: encoding a value
//! outside its proven range panics (see [`mck::packed::BitWriter`]),
//! and debug builds decode every interned record back and assert
//! equality — so a packed run over the full reachable set doubles as a
//! machine-checked validation of the dataflow ranges against the real
//! model.
//!
//! Two fields are not machine variables and get engineering bounds
//! instead of proven ones, both documented here and enforced by the
//! same panic-on-overflow contract:
//!
//! * the channel length — capped at `4n + 2` (per participant: one
//!   urgent leftover plus one fresh message in each direction is
//!   already generous; the checker's own invariant tests keep the true
//!   bound far lower);
//! * `stale_filtered` — provably 0 unless the model both allows leaves
//!   and runs the §7 epoch-rejoin fix (the only checker configuration
//!   in which the bar can rise above a wire epoch), where it is capped
//!   at `3n` stale leftovers. `stale_admitted` is provably 0 in every
//!   checker configuration (wire epochs never exceed the bar) and costs
//!   zero bits.

use hb_core::dataflow::{system_ranges, Interval, CHECKER_TRIGGERS};
use hb_core::{CoordState, Heartbeat, RespState, Status};
use mck::packed::{BitReader, BitWriter, StateCodec};

use crate::model::{HbModel, HbState, MonitorState, Msg};

/// Width table for one model configuration; build with
/// [`HbCodec::for_model`] and feed to [`mck::packed::PackedChecker`].
#[derive(Clone, Debug)]
pub struct HbCodec {
    n: usize,
    /// Coordinator round length `t`.
    iv_t: Interval,
    /// Coordinator `elapsed`.
    iv_elapsed: Interval,
    /// Per-participant waiting times `tm[i]`.
    iv_tm: Interval,
    /// Per-participant epoch bars `min_epoch[i]`.
    iv_min_epoch: Interval,
    /// Stale-beat counter (non-zero width only under rejoin + leaves).
    iv_stale_filtered: Interval,
    /// Responder watchdogs `waiting`.
    iv_waiting: Interval,
    /// Responder join timers `join_elapsed`.
    iv_join_elapsed: Interval,
    /// Responder incarnations `epoch`.
    iv_epoch: Interval,
    /// Message delay budgets.
    iv_budget: Interval,
    /// Epoch tags on in-flight messages.
    iv_wire: Interval,
    /// Channel length.
    iv_count: Interval,
    /// Message peer (participant pid − 1).
    iv_peer: Interval,
    /// R1 monitor `since_last`, when monitors are attached.
    iv_since: Option<Interval>,
}

impl HbCodec {
    /// Derive the width table for `model` from the IR dataflow ranges.
    pub fn for_model(model: &HbModel) -> Self {
        let sr = system_ranges(model.coord_spec(), model.resp_spec(), &CHECKER_TRIGGERS);
        let n = model.n();
        // A variable a variant's IR never declares (e.g. `min_epoch` in
        // the binary protocol) is one that variant provably never
        // writes: it sits at its initial value forever, which is
        // exactly the concretization's init interval.
        let cc = hb_core::dataflow::Concretization::coordinator(model.coord_spec());
        let rc = hb_core::dataflow::Concretization::responder(model.resp_spec());
        let range =
            |a: &hb_core::dataflow::Analysis,
             conc: &hb_core::dataflow::Concretization,
             var: &str| a.range(var).unwrap_or_else(|| conc.initial(var));
        let rejoin_leaves = model.coord_spec().fix().epoch_rejoin() && model.leave_allowed();
        Self {
            n,
            iv_t: range(&sr.coord, &cc, "t"),
            iv_elapsed: range(&sr.coord, &cc, "elapsed"),
            iv_tm: range(&sr.coord, &cc, "tm"),
            iv_min_epoch: range(&sr.coord, &cc, "min_epoch"),
            iv_stale_filtered: if rejoin_leaves {
                Interval::new(0, 3 * n as u32)
            } else {
                Interval::point(0)
            },
            iv_waiting: range(&sr.resp, &rc, "waiting"),
            iv_join_elapsed: range(&sr.resp, &rc, "join_elapsed"),
            iv_epoch: range(&sr.resp, &rc, "epoch"),
            iv_budget: Interval::new(0, model.params().tmin()),
            iv_wire: sr.wire_epoch,
            iv_count: Interval::new(0, 4 * n as u32 + 2),
            iv_peer: Interval::new(0, n as u32 - 1),
            iv_since: model.monitor_bound_value().map(|b| Interval::new(0, b + 1)),
        }
    }

    /// Bits per participant in a channel-empty state — handy for
    /// back-of-envelope memory estimates in reports.
    pub fn bits_per_participant(&self) -> u32 {
        // resp: status + waiting + join_elapsed + joined + left + epoch
        // coord slots: rcvd + tm + jnd + left + min_epoch
        2 + self.iv_waiting.bits()
            + self.iv_join_elapsed.bits()
            + 1
            + 1
            + self.iv_epoch.bits()
            + 1
            + self.iv_tm.bits()
            + 1
            + 1
            + self.iv_min_epoch.bits()
            + self.iv_since.map(|iv| 1 + iv.bits()).unwrap_or(0)
    }
}

fn push_iv(w: &mut BitWriter, v: u32, iv: Interval) {
    assert!(
        iv.contains(v),
        "value {v} outside its proven range [{}, {}]",
        iv.lo,
        iv.hi
    );
    w.push(v - iv.lo, iv.bits());
}

fn read_iv(r: &mut BitReader, iv: Interval) -> u32 {
    iv.lo + r.read(iv.bits())
}

fn push_bool(w: &mut BitWriter, b: bool) {
    w.push(b as u32, 1);
}

fn read_bool(r: &mut BitReader) -> bool {
    r.read(1) == 1
}

fn push_status(w: &mut BitWriter, s: Status) {
    let v = match s {
        Status::Active => 0,
        Status::Crashed => 1,
        Status::NvInactive => 2,
    };
    w.push(v, 2);
}

fn read_status(r: &mut BitReader) -> Status {
    match r.read(2) {
        0 => Status::Active,
        1 => Status::Crashed,
        2 => Status::NvInactive,
        v => unreachable!("status code {v}"),
    }
}

impl StateCodec<HbState> for HbCodec {
    fn encode(&self, s: &HbState, w: &mut BitWriter) {
        push_status(w, s.coord.status);
        push_iv(w, s.coord.t, self.iv_t);
        push_iv(w, s.coord.elapsed, self.iv_elapsed);
        push_iv(w, s.coord.stale_admitted, Interval::point(0));
        push_iv(w, s.coord.stale_filtered, self.iv_stale_filtered);
        for i in 0..self.n {
            push_bool(w, s.coord.rcvd[i]);
            push_iv(w, s.coord.tm[i], self.iv_tm);
            push_bool(w, s.coord.jnd[i]);
            push_bool(w, s.coord.left[i]);
            push_iv(w, s.coord.min_epoch[i] as u32, self.iv_min_epoch);
        }
        for r in &s.resps {
            push_status(w, r.status);
            push_iv(w, r.waiting, self.iv_waiting);
            push_iv(w, r.join_elapsed, self.iv_join_elapsed);
            push_bool(w, r.joined);
            push_bool(w, r.left);
            push_iv(w, r.epoch as u32, self.iv_epoch);
        }
        push_iv(w, s.channel.len() as u32, self.iv_count);
        for m in &s.channel {
            let to_coord = m.dst == 0;
            let peer = if to_coord { m.src } else { m.dst };
            push_bool(w, to_coord);
            push_iv(w, peer as u32 - 1, self.iv_peer);
            push_bool(w, m.hb.flag);
            push_iv(w, m.hb.epoch as u32, self.iv_wire);
            push_iv(w, m.budget, self.iv_budget);
        }
        push_bool(w, s.lost);
        if let Some(iv) = self.iv_since {
            for m in &s.monitors {
                push_bool(w, m.armed);
                push_iv(w, m.since_last, iv);
            }
        }
    }

    fn decode(&self, r: &mut BitReader) -> HbState {
        let status = read_status(r);
        let t = read_iv(r, self.iv_t);
        let elapsed = read_iv(r, self.iv_elapsed);
        let stale_admitted = read_iv(r, Interval::point(0));
        let stale_filtered = read_iv(r, self.iv_stale_filtered);
        let mut coord = CoordState {
            status,
            t,
            elapsed,
            rcvd: Vec::with_capacity(self.n),
            tm: Vec::with_capacity(self.n),
            jnd: Vec::with_capacity(self.n),
            left: Vec::with_capacity(self.n),
            min_epoch: Vec::with_capacity(self.n),
            stale_admitted,
            stale_filtered,
        };
        for _ in 0..self.n {
            coord.rcvd.push(read_bool(r));
            coord.tm.push(read_iv(r, self.iv_tm));
            coord.jnd.push(read_bool(r));
            coord.left.push(read_bool(r));
            coord.min_epoch.push(read_iv(r, self.iv_min_epoch) as u8);
        }
        let resps = (0..self.n)
            .map(|_| RespState {
                status: read_status(r),
                waiting: read_iv(r, self.iv_waiting),
                join_elapsed: read_iv(r, self.iv_join_elapsed),
                joined: read_bool(r),
                left: read_bool(r),
                epoch: read_iv(r, self.iv_epoch) as u8,
            })
            .collect();
        let len = read_iv(r, self.iv_count) as usize;
        let channel = (0..len)
            .map(|_| {
                let to_coord = read_bool(r);
                let peer = read_iv(r, self.iv_peer) as usize + 1;
                let flag = read_bool(r);
                let epoch = read_iv(r, self.iv_wire) as u8;
                let budget = read_iv(r, self.iv_budget);
                let (src, dst) = if to_coord { (peer, 0) } else { (0, peer) };
                Msg {
                    src,
                    dst,
                    hb: Heartbeat { flag, epoch },
                    budget,
                }
            })
            .collect();
        let lost = read_bool(r);
        let monitors = match self.iv_since {
            Some(iv) => (0..self.n)
                .map(|_| MonitorState {
                    armed: read_bool(r),
                    since_last: read_iv(r, iv),
                })
                .collect(),
            None => Vec::new(),
        };
        HbState {
            coord,
            resps,
            channel,
            lost,
            monitors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::{build_model, error_predicate, Requirement};
    use hb_core::{FixLevel, Params, Variant};
    use mck::packed::PackedChecker;
    use mck::{Checker, Model};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn round_trips(codec: &HbCodec, s: &HbState) -> bool {
        let mut w = BitWriter::new();
        codec.encode(s, &mut w);
        let mut r = BitReader::new(w.bytes());
        &codec.decode(&mut r) == s
    }

    #[test]
    fn epoch_fields_cost_almost_nothing() {
        // 8-bit fields in the state, 0–1 bits on disk: the whole point
        // of driving widths from proven ranges instead of types.
        let m = HbModel::new(
            Variant::Static,
            Params::new(2, 4).unwrap(),
            2,
            FixLevel::Full,
        );
        let c = HbCodec::for_model(&m);
        assert_eq!(c.iv_epoch.bits(), 0, "responder epoch pinned to 0");
        assert_eq!(c.iv_wire.bits(), 0, "wire epoch pinned to 0");
        assert_eq!(c.iv_min_epoch.bits(), 0, "static bar never rises");
        assert_eq!(c.iv_stale_filtered.bits(), 0);
        // Dynamic + rejoin: the bar can rise once per leaver.
        let dynamic = HbModel::new(
            Variant::Dynamic,
            Params::new(2, 4).unwrap(),
            2,
            FixLevel::Full,
        );
        let c = HbCodec::for_model(&dynamic);
        assert_eq!(c.iv_min_epoch.bits(), 1, "bar rises to 1 after a leave");
        assert!(c.iv_stale_filtered.bits() > 0);
    }

    #[test]
    fn initial_states_round_trip_for_every_variant() {
        for variant in Variant::ALL {
            let n = if variant.is_two_process() { 1 } else { 3 };
            for fix in [FixLevel::Original, FixLevel::Full] {
                let m = HbModel::new(variant, Params::new(2, 8).unwrap(), n, fix)
                    .stagger_starts(true)
                    .monitor_bound(16);
                let codec = HbCodec::for_model(&m);
                for s in m.initial_states() {
                    assert!(round_trips(&codec, &s), "{variant}/{fix}");
                }
            }
        }
    }

    #[test]
    fn random_walk_states_round_trip() {
        let m = build_model(
            Variant::Dynamic,
            Params::new(2, 4).unwrap(),
            FixLevel::Full,
            2,
            Requirement::R1,
        );
        let codec = HbCodec::for_model(&m);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..10 {
            let path = mck::sim::random_walk(&m, &mut rng, 60);
            for s in path.states() {
                assert!(round_trips(&codec, &s), "state failed: {s:?}");
            }
        }
    }

    #[test]
    fn packed_checker_agrees_with_plain_on_r2() {
        // Exhaustive agreement, and (in debug builds) a decode-assert on
        // every reachable state — the dataflow ranges validated against
        // the real model. Static n=2 exercises multi-participant packing.
        let m = build_model(
            Variant::Static,
            Params::new(1, 3).unwrap(),
            FixLevel::Original,
            2,
            Requirement::R2,
        );
        let pred = |s: &HbState| !error_predicate(&m, Requirement::R2)(s);
        let plain = Checker::new(&m).check_invariant(pred);
        let packed = PackedChecker::new(&m, HbCodec::for_model(&m)).check_invariant(pred);
        assert_eq!(plain.holds(), packed.outcome.holds());
        assert_eq!(plain.stats().states, packed.outcome.stats().states);
        assert_eq!(
            plain.stats().transitions,
            packed.outcome.stats().transitions
        );
        assert!(packed.mem.arena_bytes > 0);
        // The packed arena is a fraction of what boxed `HbState`s cost.
        let per_state = packed.mem.arena_bytes / packed.outcome.stats().states.max(1);
        assert!(
            per_state <= 8,
            "expected a handful of bytes per packed state, got {per_state}"
        );
    }

    #[test]
    fn packed_checker_finds_the_same_counterexample_depth() {
        // tmin = tmax races: R2 is violated; packed BFS must agree on
        // the shortest-witness depth.
        let m = build_model(
            Variant::Binary,
            Params::new(3, 3).unwrap(),
            FixLevel::Original,
            1,
            Requirement::R2,
        );
        let pred = |s: &HbState| !error_predicate(&m, Requirement::R2)(s);
        let plain = Checker::new(&m).check_invariant(pred);
        let packed = PackedChecker::new(&m, HbCodec::for_model(&m)).check_invariant(pred);
        let p_depth = plain.counterexample().unwrap().len();
        let q_depth = packed.outcome.counterexample().unwrap().len();
        assert_eq!(p_depth, q_depth);
    }

    #[test]
    fn rejoin_leave_cells_stay_within_proven_widths() {
        // Dynamic + Full fix + leaves: min_epoch rises to 1 and stale
        // leftovers get filtered — the only configuration with nonzero
        // epoch/stale widths. An exhaustive packed run proves the caps
        // hold on every reachable state.
        let m = build_model(
            Variant::Dynamic,
            Params::new(2, 4).unwrap(),
            FixLevel::Full,
            1,
            Requirement::R2,
        );
        let pred = |s: &HbState| !error_predicate(&m, Requirement::R2)(s);
        let packed = PackedChecker::new(&m, HbCodec::for_model(&m)).check_invariant(pred);
        assert!(packed.outcome.holds());
    }
}
