//! Participant-permutation symmetry for the composed heartbeat models,
//! gated by the IR's static interchangeability certificate.
//!
//! In the static/expanding/dynamic protocols all participants run the
//! same code, so global states that differ only by a renaming of the
//! participants are bisimilar. Two canonicalization functions pick one
//! representative per orbit:
//!
//! * [`canonical`] — brute force over all `n!` permutations, the least
//!   permuted state in the derived `Ord`. Exact but exponential; kept as
//!   the cross-check oracle.
//! * [`canonical_sorted`] — `O(n log n)`: every per-participant datum
//!   (responder state, the coordinator's `rcvd`/`tm`/`jnd`/`left`/
//!   `min_epoch` slots, the ghost monitor, and the multiset of in-flight
//!   messages touching that participant) is gathered into one sort key,
//!   and the participants are permuted into sorted-key order. Because
//!   every message has the coordinator as one endpoint, the key captures
//!   the participant's *entire* slice of the global state, so key-equal
//!   participants are literally interchangeable and the result is
//!   orbit-unique.
//!
//! The sort-key shortcut is only sound when participants really are
//! interchangeable; that used to be a hand-waved obligation. It is now
//! discharged statically: [`certified_canonical`] consults
//! [`hb_core::dataflow::symmetry_certificate`] on both machines' IR and
//! *refuses the quotient at construction* — naming the offending
//! transition — for any machine with a rank-dependent transition (e.g.
//! the membership machines' `takeover`), or when the model's
//! per-participant fault switches are not uniform.
//!
//! ```
//! use hb_core::{Params, Variant, FixLevel};
//! use hb_verify::{HbModel, symmetry::certified_canonical};
//! use mck::{Checker, symmetry::Symmetric};
//!
//! let model = HbModel::new(Variant::Static, Params::new(1, 3).unwrap(), 2, FixLevel::Original);
//! let canon = certified_canonical(&model).expect("plain machines are certified");
//! let sym = Symmetric::new(&model, canon);
//! let full = Checker::new(&model).check_invariant(|_| true).stats().states;
//! let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
//! assert!(reduced < full);
//! ```
//!
//! Only use the quotient with *symmetric* properties (invariant under the
//! same renaming) — R2 ("some participant NV-inactive"), R3, and the
//! liveness goal all qualify; "participant **2** specifically fails" does
//! not.

use hb_core::dataflow::{symmetry_certificate, SymmetryVerdict};
use hb_core::describe::{DescribeMachine, Role};
use hb_core::{Heartbeat, Pid};

use crate::model::{HbModel, HbState, Msg};

fn permute(s: &HbState, perm: &[usize]) -> HbState {
    let n = perm.len();
    let mut out = s.clone();
    // perm[i] = index of the participant that moves to slot i.
    for (i, &j) in perm.iter().enumerate() {
        out.resps[i] = s.resps[j].clone();
        out.coord.rcvd[i] = s.coord.rcvd[j];
        out.coord.tm[i] = s.coord.tm[j];
        out.coord.jnd[i] = s.coord.jnd[j];
        out.coord.left[i] = s.coord.left[j];
        out.coord.min_epoch[i] = s.coord.min_epoch[j];
        if !s.monitors.is_empty() {
            out.monitors[i] = s.monitors[j];
        }
    }
    // relabel message endpoints: old pid j+1 becomes new pid i+1
    let mut new_pid = vec![0 as Pid; n + 1];
    for i in 0..n {
        new_pid[perm[i] + 1] = i + 1;
    }
    out.channel = s
        .channel
        .iter()
        .map(|m| Msg {
            src: if m.src == 0 { 0 } else { new_pid[m.src] },
            dst: if m.dst == 0 { 0 } else { new_pid[m.dst] },
            ..*m
        })
        .collect();
    out.channel.sort_unstable();
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// The canonical representative of `s` under participant permutation:
/// the least permuted state in the derived `Ord` on [`HbState`].
pub fn canonical(s: &HbState) -> HbState {
    let n = s.resps.len();
    if n <= 1 {
        return s.clone();
    }
    permutations(n)
        .into_iter()
        .map(|p| permute(s, &p))
        .min()
        .expect("at least the identity permutation exists")
}

/// The sort key of participant `i` (0-based) in `s`: everything the
/// global state knows about that participant. Since every in-flight
/// message has `p[0]` as one endpoint, the per-message entry
/// `(to_coord, hb, budget)` loses no information, and two participants
/// with equal keys have identical slices of the global state — swapping
/// them is the identity.
type ParticipantKey = (
    hb_core::RespState,
    bool,
    u32,
    bool,
    bool,
    u8,
    Option<crate::model::MonitorState>,
    Vec<(bool, Heartbeat, u32)>,
);

fn participant_key(s: &HbState, i: usize) -> ParticipantKey {
    let pid = i + 1;
    let mut msgs: Vec<(bool, Heartbeat, u32)> = s
        .channel
        .iter()
        .filter(|m| m.src == pid || m.dst == pid)
        .map(|m| (m.dst == 0, m.hb, m.budget))
        .collect();
    msgs.sort_unstable();
    (
        s.resps[i].clone(),
        s.coord.rcvd[i],
        s.coord.tm[i],
        s.coord.jnd[i],
        s.coord.left[i],
        s.coord.min_epoch[i],
        s.monitors.get(i).copied(),
        msgs,
    )
}

/// The canonical representative of `s` in `O(n log n)`: participants
/// permuted into sorted-key order (see the module docs for why the key
/// determines the orbit). Picks a (possibly) different representative
/// than [`canonical`], but the same *function* on each orbit — which is
/// all [`mck::symmetry::Symmetric`] needs.
pub fn canonical_sorted(s: &HbState) -> HbState {
    let n = s.resps.len();
    if n <= 1 {
        return s.clone();
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_cached_key(|&i| participant_key(s, i));
    if order.windows(2).all(|w| w[0] < w[1]) {
        return s.clone(); // already canonical
    }
    permute(s, &order)
}

/// Why a model was refused the symmetric quotient.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SymmetryRefusal {
    /// A machine transition consults a concrete rank: the IR certificate
    /// names it as the counterexample.
    RankDependent {
        /// Which of the two machines tripped the certificate.
        role: Role,
        /// The offending transition.
        transition: &'static str,
        /// The IR's explanation of the asymmetry.
        reason: &'static str,
    },
    /// The model's per-participant crash switches are not uniform, so
    /// renaming participants changes the enabled fault actions.
    NonUniformFaults,
}

impl std::fmt::Display for SymmetryRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SymmetryRefusal::RankDependent {
                role,
                transition,
                reason,
            } => write!(
                f,
                "quotient refused: {role:?} transition `{transition}` is rank-dependent ({reason})"
            ),
            SymmetryRefusal::NonUniformFaults => write!(
                f,
                "quotient refused: per-participant fault switches are not uniform"
            ),
        }
    }
}

impl std::error::Error for SymmetryRefusal {}

/// The certificate-gated constructor for the fast canonicalizer.
///
/// Returns [`canonical_sorted`] iff the static symmetry certificate of
/// both machine IRs is [`SymmetryVerdict::Certified`] *and* the model's
/// participant fault switches are uniform; otherwise the refusal names
/// the counterexample transition. There is no fallback to brute force —
/// an uncertified machine gets no quotient at all, because the `n!`
/// search picks a representative just as unsoundly when participants
/// are genuinely distinguishable.
pub fn certified_canonical(model: &HbModel) -> Result<fn(&HbState) -> HbState, SymmetryRefusal> {
    for (role, verdict) in [
        (
            Role::Coordinator,
            symmetry_certificate(&model.coord_spec().describe()),
        ),
        (
            Role::Responder,
            symmetry_certificate(&model.resp_spec().describe()),
        ),
    ] {
        if let SymmetryVerdict::Refused { transition, reason } = verdict {
            return Err(SymmetryRefusal::RankDependent {
                role,
                transition,
                reason,
            });
        }
    }
    if !model.participant_faults_uniform() {
        return Err(SymmetryRefusal::NonUniformFaults);
    }
    Ok(canonical_sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::{build_model, error_predicate, Requirement};
    use hb_core::{FixLevel, Params, Variant};
    use mck::symmetry::Symmetric;
    use mck::Checker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(n: usize) -> crate::model::HbModel {
        build_model(
            Variant::Static,
            Params::new(1, 3).unwrap(),
            FixLevel::Original,
            n,
            Requirement::R2,
        )
    }

    #[test]
    fn canonicalization_is_idempotent_and_permutation_invariant() {
        let m = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let path = mck::sim::random_walk(&m, &mut rng, 50);
            for s in path.states() {
                let c = canonical(&s);
                assert_eq!(canonical(&c), c, "idempotent");
                let swapped = permute(&s, &[1, 0]);
                assert_eq!(canonical(&swapped), c, "orbit-invariant");
            }
        }
    }

    #[test]
    fn quotient_agrees_with_full_model_on_r2() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let pred = |s: &HbState| error_predicate(&m, Requirement::R2)(s);
        let full = Checker::new(&m).find_state(pred);
        let red = Checker::new(&sym).find_state(pred);
        assert_eq!(full.is_some(), red.is_some());
        if let (Some(f), Some(r)) = (full, red) {
            assert_eq!(f.len(), r.len(), "shortest violation depth must agree");
        }
    }

    #[test]
    fn quotient_is_strictly_smaller_with_two_participants() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let full = Checker::new(&m).check_invariant(|_| true).stats().states;
        let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
        assert!(reduced < full, "no reduction: {reduced} vs {full} states");
    }

    #[test]
    fn sorted_canonicalization_matches_brute_force_orbits() {
        // `canonical_sorted` may pick a different representative than
        // the n! search, but it must be constant on each orbit and land
        // in the *same* orbit — checked by round-tripping through the
        // brute-force representative.
        let m = model(3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let path = mck::sim::random_walk(&m, &mut rng, 40);
            for s in path.states() {
                let c = canonical_sorted(&s);
                assert_eq!(canonical_sorted(&c), c, "idempotent");
                let swapped = permute(&s, &[2, 0, 1]);
                assert_eq!(canonical_sorted(&swapped), c, "orbit-invariant");
                assert_eq!(canonical(&c), canonical(&s), "same orbit as brute force");
            }
        }
    }

    #[test]
    fn sorted_quotient_agrees_with_brute_force_quotient_on_r2() {
        let m = model(2);
        let brute = Symmetric::new(&m, canonical);
        let sorted = Symmetric::new(&m, canonical_sorted);
        let pred = |s: &HbState| error_predicate(&m, Requirement::R2)(s);
        let b = Checker::new(&brute).find_state(pred);
        let s = Checker::new(&sorted).find_state(pred);
        assert_eq!(b.is_some(), s.is_some());
        if let (Some(b), Some(s)) = (b, s) {
            assert_eq!(b.len(), s.len(), "shortest violation depth must agree");
        }
        // The quotients are the same size: both functions pick exactly
        // one representative per orbit.
        let bs = Checker::new(&brute)
            .check_invariant(|_| true)
            .stats()
            .states;
        let ss = Checker::new(&sorted)
            .check_invariant(|_| true)
            .stats()
            .states;
        assert_eq!(bs, ss, "orbit counts must match");
    }

    #[test]
    fn certificate_admits_every_plain_machine() {
        for variant in Variant::ALL {
            let n = if variant.is_two_process() { 1 } else { 2 };
            let m =
                crate::model::HbModel::new(variant, Params::new(2, 4).unwrap(), n, FixLevel::Full);
            assert!(
                certified_canonical(&m).is_ok(),
                "{variant} should be certified"
            );
        }
    }

    #[test]
    fn certificate_refuses_non_uniform_fault_switches() {
        let m = crate::model::HbModel::new(
            Variant::Static,
            Params::new(2, 4).unwrap(),
            2,
            FixLevel::Full,
        )
        .crashable(1, false);
        let err = certified_canonical(&m).unwrap_err();
        assert_eq!(err, SymmetryRefusal::NonUniformFaults);
        assert!(err.to_string().contains("not uniform"));
    }

    #[test]
    fn staggered_starts_keep_the_quotient_sound() {
        let m = build_model(
            Variant::Static,
            Params::new(1, 3).unwrap(),
            FixLevel::Original,
            2,
            Requirement::R2,
        )
        .stagger_starts(true);
        let canon = certified_canonical(&m).unwrap();
        let sym = Symmetric::new(&m, canon);
        let pred = |s: &HbState| error_predicate(&m, Requirement::R2)(s);
        let full = Checker::new(&m).find_state(pred);
        let red = Checker::new(&sym).find_state(pred);
        assert_eq!(full.is_some(), red.is_some());
        let mut rng = StdRng::seed_from_u64(21);
        assert!(sym.verify_symmetric(&mut rng, 6, 25));
    }

    #[test]
    fn symmetry_self_check_passes() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sym.verify_symmetric(&mut rng, 8, 30));
    }

    #[test]
    fn three_participant_quotient_shrinks_substantially() {
        let m = model(3);
        let sym = Symmetric::new(&m, canonical);
        let full = Checker::new(&m)
            .max_states(400_000)
            .check_invariant(|_| true);
        let reduced = Checker::new(&sym)
            .max_states(400_000)
            .check_invariant(|_| true);
        // With 3! = 6 permutations the quotient approaches a 6x saving on
        // the participant-distinguishing portion of the space.
        assert!(reduced.stats().states * 2 < full.stats().states.max(1) * 3);
    }
}
