//! Participant-permutation symmetry for the composed heartbeat models.
//!
//! In the static/expanding/dynamic protocols all participants run the
//! same code, so global states that differ only by a renaming of the
//! participants are bisimilar. [`canonical`] picks the lexicographically
//! least state over all participant permutations (brute force over `n!`,
//! fine for the small `n` these models use), which lets
//! [`mck::symmetry::Symmetric`] explore the quotient:
//!
//! ```
//! use hb_core::{Params, Variant, FixLevel};
//! use hb_verify::{HbModel, symmetry::canonical};
//! use mck::{Checker, symmetry::Symmetric};
//!
//! let model = HbModel::new(Variant::Static, Params::new(1, 3).unwrap(), 2, FixLevel::Original);
//! let sym = Symmetric::new(&model, |s| canonical(s));
//! let full = Checker::new(&model).check_invariant(|_| true).stats().states;
//! let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
//! assert!(reduced < full);
//! ```
//!
//! Only use the quotient with *symmetric* properties (invariant under the
//! same renaming) — R2 ("some participant NV-inactive"), R3, and the
//! liveness goal all qualify; "participant **2** specifically fails" does
//! not. The soundness obligation also requires the model's fault switches
//! to be uniform across participants (the default).

use hb_core::Pid;

use crate::model::{HbState, Msg};

fn permute(s: &HbState, perm: &[usize]) -> HbState {
    let n = perm.len();
    let mut out = s.clone();
    // perm[i] = index of the participant that moves to slot i.
    for (i, &j) in perm.iter().enumerate() {
        out.resps[i] = s.resps[j].clone();
        out.coord.rcvd[i] = s.coord.rcvd[j];
        out.coord.tm[i] = s.coord.tm[j];
        out.coord.jnd[i] = s.coord.jnd[j];
        out.coord.left[i] = s.coord.left[j];
        if !s.monitors.is_empty() {
            out.monitors[i] = s.monitors[j];
        }
    }
    // relabel message endpoints: old pid j+1 becomes new pid i+1
    let mut new_pid = vec![0 as Pid; n + 1];
    for i in 0..n {
        new_pid[perm[i] + 1] = i + 1;
    }
    out.channel = s
        .channel
        .iter()
        .map(|m| Msg {
            src: if m.src == 0 { 0 } else { new_pid[m.src] },
            dst: if m.dst == 0 { 0 } else { new_pid[m.dst] },
            ..*m
        })
        .collect();
    out.channel.sort_unstable();
    out
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![vec![]];
    }
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k == 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// The canonical representative of `s` under participant permutation:
/// the least permuted state in the derived `Ord` on [`HbState`].
pub fn canonical(s: &HbState) -> HbState {
    let n = s.resps.len();
    if n <= 1 {
        return s.clone();
    }
    permutations(n)
        .into_iter()
        .map(|p| permute(s, &p))
        .min()
        .expect("at least the identity permutation exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::{build_model, error_predicate, Requirement};
    use hb_core::{FixLevel, Params, Variant};
    use mck::symmetry::Symmetric;
    use mck::Checker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(n: usize) -> crate::model::HbModel {
        build_model(
            Variant::Static,
            Params::new(1, 3).unwrap(),
            FixLevel::Original,
            n,
            Requirement::R2,
        )
    }

    #[test]
    fn canonicalization_is_idempotent_and_permutation_invariant() {
        let m = model(2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let path = mck::sim::random_walk(&m, &mut rng, 50);
            for s in path.states() {
                let c = canonical(&s);
                assert_eq!(canonical(&c), c, "idempotent");
                let swapped = permute(&s, &[1, 0]);
                assert_eq!(canonical(&swapped), c, "orbit-invariant");
            }
        }
    }

    #[test]
    fn quotient_agrees_with_full_model_on_r2() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let pred = |s: &HbState| error_predicate(&m, Requirement::R2)(s);
        let full = Checker::new(&m).find_state(pred);
        let red = Checker::new(&sym).find_state(pred);
        assert_eq!(full.is_some(), red.is_some());
        if let (Some(f), Some(r)) = (full, red) {
            assert_eq!(f.len(), r.len(), "shortest violation depth must agree");
        }
    }

    #[test]
    fn quotient_is_strictly_smaller_with_two_participants() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let full = Checker::new(&m).check_invariant(|_| true).stats().states;
        let reduced = Checker::new(&sym).check_invariant(|_| true).stats().states;
        assert!(reduced < full, "no reduction: {reduced} vs {full} states");
    }

    #[test]
    fn symmetry_self_check_passes() {
        let m = model(2);
        let sym = Symmetric::new(&m, canonical);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(sym.verify_symmetric(&mut rng, 8, 30));
    }

    #[test]
    fn three_participant_quotient_shrinks_substantially() {
        let m = model(3);
        let sym = Symmetric::new(&m, canonical);
        let full = Checker::new(&m)
            .max_states(400_000)
            .check_invariant(|_| true);
        let reduced = Checker::new(&sym)
            .max_states(400_000)
            .check_invariant(|_| true);
        // With 3! = 6 permutations the quotient approaches a 6x saving on
        // the participant-distinguishing portion of the space.
        assert!(reduced.stats().states * 2 < full.stats().states.max(1) * 3);
    }
}
