//! Regeneration of the paper's counter-example figures (Figures 10–13).
//!
//! Each figure in the paper is one concrete violating schedule. We
//! regenerate them in two complementary ways:
//!
//! 1. **Replay** — the figure's exact schedule is written down as a script
//!    of model actions and replayed step-by-step against the composed
//!    model; every step must be an enabled transition, and the run must
//!    pass through the requirement's error state. This proves our model
//!    admits the *paper's* trace, not merely some violation.
//! 2. **Search** — BFS on the same configuration independently finds a
//!    shortest counterexample, whose length is reported alongside.
//!
//! | Figure | Scenario | Configuration |
//! |--------|----------|---------------|
//! | 10(a)  | R1 broken by reply-then-crash + halving chain | binary, `tmin=4, tmax=10` |
//! | 10(b)  | R1, the simple `2·tmin ≤ tmax` variant        | binary, `tmin=5, tmax=10` |
//! | 11     | R2 broken by beat/watchdog tie                | binary, `tmin=tmax=10` |
//! | 12     | R3 broken by reply/timeout tie                | binary, `tmin=tmax=10` |
//! | 13     | R2 broken by the join-phase window            | expanding, `tmin=5, tmax=10` |

use hb_core::trace::EventLog;
use hb_core::{FixLevel, Params, Pid, Variant};
use mck::{Checker, Model, Path};

use crate::model::{HbAction, HbModel, HbState};
use crate::render::path_to_log;
use crate::requirements::{build_model, error_predicate, Requirement};

/// The outcome of regenerating one figure.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure name, e.g. `"Figure 10(a)"`.
    pub name: &'static str,
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// The requirement the figure violates.
    pub requirement: Requirement,
    /// Whether every scripted step was an enabled transition.
    pub replay_valid: bool,
    /// Whether the replay passed through the requirement's error state.
    pub error_reached: bool,
    /// The replayed trace as an event log.
    pub log: EventLog,
    /// Length (transitions) of the shortest counterexample found by BFS on
    /// the same configuration.
    pub shortest_ce_len: Option<usize>,
}

impl FigureReport {
    /// Whether the figure fully regenerated (valid replay reaching the
    /// error, and BFS agrees the cell is violated).
    pub fn reproduced(&self) -> bool {
        self.replay_valid && self.error_reached && self.shortest_ce_len.is_some()
    }

    /// Render the report with the sequence chart.
    pub fn render(&self) -> String {
        format!(
            "{} — {} {} vs {}: replay {}, error {}, shortest BFS CE: {}\n{}",
            self.name,
            self.variant,
            self.params,
            self.requirement,
            if self.replay_valid {
                "valid"
            } else {
                "INVALID"
            },
            if self.error_reached {
                "reached"
            } else {
                "NOT reached"
            },
            self.shortest_ce_len
                .map(|n| n.to_string())
                .unwrap_or_else(|| "none (cell holds?)".into()),
            self.log.render_chart(1)
        )
    }
}

/// Step-by-step script runner against a composed model.
struct Runner<'a> {
    model: &'a HbModel,
    state: HbState,
    path: Path<HbModel>,
    ok: bool,
}

impl<'a> Runner<'a> {
    fn new(model: &'a HbModel) -> Self {
        let init = model.initial_states().remove(0);
        Self {
            model,
            state: init.clone(),
            path: Path::new(init),
            ok: true,
        }
    }

    /// Apply `action` if it is currently enabled; otherwise mark the replay
    /// invalid (and stop applying further steps).
    fn step(&mut self, action: HbAction) {
        if !self.ok {
            return;
        }
        let mut acts = Vec::new();
        self.model.actions(&self.state, &mut acts);
        if !acts.contains(&action) {
            self.ok = false;
            return;
        }
        match self.model.next_state(&self.state, &action) {
            Some(next) => {
                self.path.push(action, next.clone());
                self.state = next;
            }
            None => self.ok = false,
        }
    }

    fn tick(&mut self, n: u32) {
        for _ in 0..n {
            self.step(HbAction::Tick);
        }
    }

    /// Deliver the oldest (lowest remaining budget) in-flight message from
    /// `src`.
    fn deliver_from(&mut self, src: Pid) {
        if !self.ok {
            return;
        }
        let msg = self
            .state
            .channel
            .iter()
            .filter(|m| m.src == src)
            .min_by_key(|m| m.budget)
            .copied();
        let Some(msg) = msg else {
            self.ok = false;
            return;
        };
        self.step(HbAction::Deliver { msg, leave: false });
    }

    fn passed_error(&self, req: Requirement) -> bool {
        let pred = error_predicate(self.model, req);
        self.path.states().iter().any(pred)
    }
}

fn finish(
    name: &'static str,
    variant: Variant,
    params: Params,
    req: Requirement,
    runner: Runner<'_>,
    model: &HbModel,
) -> FigureReport {
    let shortest = Checker::new(model)
        .find_state(|s| error_predicate(model, req)(s))
        .map(|p| p.len());
    FigureReport {
        name,
        variant,
        params,
        requirement: req,
        replay_valid: runner.ok,
        error_reached: runner.ok && runner.passed_error(req),
        log: path_to_log(&runner.path),
        shortest_ce_len: shortest,
    }
}

/// Shared script for Figures 10(a)/10(b): `p[1]` replies once, crashes,
/// and `p[0]`'s halving chain stretches past the claimed `2·tmax` bound.
fn figure10(name: &'static str, tmin: u32) -> FigureReport {
    let params = Params::new(tmin, 10).expect("valid");
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R1,
    );
    let mut r = Runner::new(&model);
    r.tick(10);
    r.step(HbAction::CoordTimeout); // beat 1 out at t=10
    r.deliver_from(0); // delivered instantly; p[1] replies
    r.step(HbAction::Crash(1)); // p[1] crashes right after replying
    r.deliver_from(1); // reply reaches p[0] at t=10 (monitor resets here)
    r.tick(10);
    r.step(HbAction::CoordTimeout); // t=20: reply was received -> t stays tmax
    r.deliver_from(0); // beat to the crashed p[1]: consumed silently
    r.tick(10);
    r.step(HbAction::CoordTimeout); // t=30: silent round -> t = tmax/2 = 5
    r.deliver_from(0);
    r.tick(1); // t=31: since-last = 21 > 2*tmax = 20 -> monitor error
    r.tick(4);
    r.step(HbAction::CoordTimeout); // t=35: halve(5) < tmin -> p[0] NV-inactivates
    finish(name, Variant::Binary, params, Requirement::R1, r, &model)
}

/// Figure 10(a): R1 counter-example for `2·tmin < tmax` (`tmin = 4`).
pub fn figure10a() -> FigureReport {
    figure10("Figure 10(a)", 4)
}

/// Figure 10(b): R1 counter-example for `2·tmin = tmax` (`tmin = 5`).
pub fn figure10b() -> FigureReport {
    figure10("Figure 10(b)", 5)
}

/// Figure 11: R2 counter-example at `tmin = tmax` — `p[0]`'s first beat
/// consumes the whole delay budget and lands exactly on `p[1]`'s
/// `3·tmax − tmin` watchdog; the timeout wins the tie.
pub fn figure11() -> FigureReport {
    let params = Params::new(10, 10).expect("valid");
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    let mut r = Runner::new(&model);
    r.tick(10);
    r.step(HbAction::CoordTimeout); // beat out at t=10 with budget tmin=10
    r.tick(10); // in flight for the full budget: arrives due at t=20
    r.step(HbAction::RespWatchdog(1)); // tie resolved against p[1]
    finish(
        "Figure 11",
        Variant::Binary,
        params,
        Requirement::R2,
        r,
        &model,
    )
}

/// Figure 12: R3 counter-example at `tmin = tmax` — `p[1]` replies on
/// time, but the reply consumes the whole budget and lands exactly on
/// `p[0]`'s timeout; the timeout wins the tie and the halving bottoms out.
pub fn figure12() -> FigureReport {
    let params = Params::new(10, 10).expect("valid");
    let model = build_model(
        Variant::Binary,
        params,
        FixLevel::Original,
        1,
        Requirement::R3,
    );
    let mut r = Runner::new(&model);
    r.tick(10);
    r.step(HbAction::CoordTimeout); // beat out at t=10
    r.deliver_from(0); // delivered instantly; reply inherits budget 10
    r.tick(10); // reply rides its full budget: due at t=20
    r.step(HbAction::CoordTimeout); // tie: timeout first -> silent round -> 5 < 10
    finish(
        "Figure 12",
        Variant::Binary,
        params,
        Requirement::R3,
        r,
        &model,
    )
}

/// Figure 13: R2 counter-example for the expanding protocol when
/// `2·tmin ≥ tmax` — the join beat lands just after `p[0]`'s round
/// timeout, so the joining process only hears back after `2·tmax + tmin`,
/// past its `3·tmax − tmin` inactivation bound.
pub fn figure13() -> FigureReport {
    let params = Params::new(5, 10).expect("valid");
    let model = build_model(
        Variant::Expanding,
        params,
        FixLevel::Original,
        1,
        Requirement::R2,
    );
    let mut r = Runner::new(&model);
    r.tick(5);
    r.step(HbAction::JoinSend(1)); // join beat #1 at t=5, budget 5
    r.tick(5); // rides the full budget: due exactly at p[0]'s timeout t=10
    r.step(HbAction::CoordTimeout); // tie: timeout first — nobody joined yet
    r.step(HbAction::JoinSend(1)); // join beat #2 (resend cadence tmin)
    r.deliver_from(1); // now beat #1 lands: p[1] is joined — too late
    r.tick(5);
    r.deliver_from(1); // beat #2 lands at t=15
    r.step(HbAction::JoinSend(1)); // resend #3 at t=15
    r.tick(5);
    r.step(HbAction::CoordTimeout); // t=20: p[0] finally broadcasts to p[1]
    r.step(HbAction::JoinSend(1)); // resend #4 at t=20
    r.deliver_from(1); // beat #3 lands
    r.tick(5); // p[0]'s beat rides its full budget to t=25
    r.step(HbAction::RespWatchdog(1)); // 25 = 3*tmax - tmin: p[1] gives up
    finish(
        "Figure 13",
        Variant::Expanding,
        params,
        Requirement::R2,
        r,
        &model,
    )
}

/// All five counter-example figures.
pub fn all_figures() -> Vec<FigureReport> {
    vec![figure10a(), figure10b(), figure11(), figure12(), figure13()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure11_reproduces() {
        let f = figure11();
        assert!(f.replay_valid, "paper schedule must be a valid trace");
        assert!(f.error_reached);
        assert!(f.reproduced());
        // BFS can find nothing shorter than the direct starvation race:
        // 10 ticks, timeout, 10 ticks, watchdog = 22 transitions.
        assert_eq!(f.shortest_ce_len, Some(22));
    }

    #[test]
    fn figure12_reproduces() {
        let f = figure12();
        assert!(f.reproduced(), "{}", f.render());
        let text = f.log.to_string();
        assert!(text.contains("p[0] inactivated NON-VOLUNTARILY"));
        assert!(!text.contains("crash"));
    }

    #[test]
    fn figure13_reproduces() {
        let f = figure13();
        assert!(f.reproduced(), "{}", f.render());
        let text = f.log.to_string();
        assert!(text.contains("p[1] inactivated NON-VOLUNTARILY"));
    }

    #[test]
    fn figures_fail_on_fixed_protocols() {
        // Sanity: the same cells hold under the full fix, so no BFS CE.
        let params = Params::new(10, 10).unwrap();
        let model = build_model(Variant::Binary, params, FixLevel::Full, 1, Requirement::R2);
        let ce = Checker::new(&model).find_state(|s| error_predicate(&model, Requirement::R2)(s));
        assert!(ce.is_none());
    }
}
