//! Isolated-process transition systems (the paper's Figures 1 and 2).
//!
//! The paper presents the "reduced transition system" of `p[0]` (Figure 1,
//! for `tmax = 2, tmin = 1`) and the transition system of `p[1]`
//! (Figure 2) — each process composed with its stopwatch, with a *free*
//! environment (heartbeats may arrive at any time) and internal clock
//! bookkeeping hidden, reduced modulo weak-trace equivalence.
//!
//! This module rebuilds those systems from our coordinator/responder
//! semantics and exposes them as [`mck::lts::Lts`] values so the reduction
//! pipeline (`hide → determinize_weak → minimize_traces`) regenerates the
//! figures' shapes.

use hb_core::Params;
use mck::graph::StateGraph;
use mck::lts::Lts;
use mck::Model;

/// Action labels of the isolated `p[0]` (the mCRL2 names of Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum P0Label {
    /// Clock tick.
    Tick,
    /// A heartbeat from `p[1]` arrives (free environment).
    FromP1,
    /// Voluntary inactivation.
    InactivateV,
    /// The round timeout fires.
    Timeout,
    /// The heartbeat to `p[1]` goes out.
    ForP1,
    /// Non-voluntary inactivation (acceleration bottomed out).
    InactivateNv,
}

impl P0Label {
    /// The mCRL2 action name used in the paper's figure.
    pub fn name(self) -> &'static str {
        match self {
            P0Label::Tick => "tick p0",
            P0Label::FromP1 => "from p1(hb1)",
            P0Label::InactivateV => "inactivate v p0",
            P0Label::Timeout => "timeout at P0",
            P0Label::ForP1 => "for p1(hb0)",
            P0Label::InactivateNv => "inactivate nv p0",
        }
    }
}

/// What the isolated `p[0]` has committed to after its timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum P0Pending {
    /// Send the next beat and start a round of this length.
    Send(u32),
    /// Become non-voluntarily inactive.
    Inactivate,
}

/// State of the isolated `p[0]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct P0SoloState {
    active: bool,
    t: u32,
    elapsed: u32,
    rcvd: bool,
    pending: Option<P0Pending>,
}

/// The isolated coordinator of the binary protocol with a free
/// environment, mirroring the mCRL2 process `P0` of the paper §3.2.
#[derive(Clone, Copy, Debug)]
pub struct P0Solo {
    params: Params,
}

impl P0Solo {
    /// Isolated `p[0]` with the given timing parameters.
    pub fn new(params: Params) -> Self {
        Self { params }
    }
}

impl Model for P0Solo {
    type State = P0SoloState;
    type Action = P0Label;

    fn initial_states(&self) -> Vec<P0SoloState> {
        vec![P0SoloState {
            active: true,
            t: self.params.tmax(),
            elapsed: 0,
            rcvd: true,
            pending: None,
        }]
    }

    fn actions(&self, s: &P0SoloState, out: &mut Vec<P0Label>) {
        if let Some(p) = s.pending {
            // Committed location: resolve the timeout outcome first.
            out.push(match p {
                P0Pending::Send(_) => P0Label::ForP1,
                P0Pending::Inactivate => P0Label::InactivateNv,
            });
            return;
        }
        let timeout_due = s.active && s.elapsed >= s.t;
        if !timeout_due {
            out.push(P0Label::Tick);
        }
        out.push(P0Label::FromP1);
        if s.active {
            out.push(P0Label::InactivateV);
            if timeout_due {
                out.push(P0Label::Timeout);
            }
        }
    }

    fn next_state(&self, s: &P0SoloState, a: &P0Label) -> Option<P0SoloState> {
        let mut n = *s;
        match a {
            P0Label::Tick => {
                if s.active {
                    if s.elapsed >= s.t {
                        return None;
                    }
                    n.elapsed += 1;
                }
            }
            P0Label::FromP1 => {
                if s.active && s.pending.is_none() {
                    n.rcvd = true;
                } // inactive / committed: message consumed, no effect
            }
            P0Label::InactivateV => {
                if !s.active || s.pending.is_some() {
                    return None;
                }
                n.active = false;
            }
            P0Label::Timeout => {
                if !s.active || s.pending.is_some() || s.elapsed < s.t {
                    return None;
                }
                n.pending = Some(if s.rcvd {
                    P0Pending::Send(self.params.tmax())
                } else {
                    let half = Params::halve(s.t);
                    if half >= self.params.tmin() {
                        P0Pending::Send(half)
                    } else {
                        P0Pending::Inactivate
                    }
                });
            }
            P0Label::ForP1 => match s.pending {
                Some(P0Pending::Send(nt)) => {
                    n.t = nt;
                    n.elapsed = 0;
                    n.rcvd = false;
                    n.pending = None;
                }
                _ => return None,
            },
            P0Label::InactivateNv => match s.pending {
                Some(P0Pending::Inactivate) => {
                    n.active = false;
                    n.pending = None;
                }
                _ => return None,
            },
        }
        Some(n)
    }

    fn format_action(&self, a: &P0Label) -> String {
        a.name().to_string()
    }
}

/// Action labels of the isolated `p[1]` (Figure 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum P1Label {
    /// Clock tick.
    Tick,
    /// A heartbeat from `p[0]` arrives.
    FromP0,
    /// The reply heartbeat goes out.
    ForP0,
    /// The stopwatch reset message (internal; hidden in the reduction).
    SndResetSw,
    /// Voluntary inactivation.
    InactivateV,
    /// The `3·tmax − tmin` timeout fires.
    Timeout,
    /// Non-voluntary inactivation.
    InactivateNv,
}

impl P1Label {
    /// The mCRL2 action name used in the paper's figure.
    pub fn name(self) -> &'static str {
        match self {
            P1Label::Tick => "tick p1",
            P1Label::FromP0 => "from p0(hb0)",
            P1Label::ForP0 => "for p0(hb1)",
            P1Label::SndResetSw => "snd reset sw p1",
            P1Label::InactivateV => "inactivate v p1",
            P1Label::Timeout => "timeout at P1",
            P1Label::InactivateNv => "inactivate nv p1",
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum P1Pending {
    /// Received a beat; must reply.
    Reply,
    /// Replied; must reset the stopwatch.
    Reset,
    /// Timeout fired; must inactivate.
    Inactivate,
}

/// State of the isolated `p[1]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct P1SoloState {
    active: bool,
    waiting: u32,
    pending: Option<P1Pending>,
}

/// The isolated responder of the binary protocol with a free environment,
/// mirroring the mCRL2 process `P1` of the paper §3.2.
#[derive(Clone, Copy, Debug)]
pub struct P1Solo {
    params: Params,
}

impl P1Solo {
    /// Isolated `p[1]` with the given timing parameters.
    pub fn new(params: Params) -> Self {
        Self { params }
    }

    fn bound(&self) -> u32 {
        self.params.responder_bound_original()
    }
}

impl Model for P1Solo {
    type State = P1SoloState;
    type Action = P1Label;

    fn initial_states(&self) -> Vec<P1SoloState> {
        vec![P1SoloState {
            active: true,
            waiting: 0,
            pending: None,
        }]
    }

    fn actions(&self, s: &P1SoloState, out: &mut Vec<P1Label>) {
        if let Some(p) = s.pending {
            out.push(match p {
                P1Pending::Reply => P1Label::ForP0,
                P1Pending::Reset => P1Label::SndResetSw,
                P1Pending::Inactivate => P1Label::InactivateNv,
            });
            return;
        }
        let timeout_due = s.active && s.waiting >= self.bound();
        if !timeout_due {
            out.push(P1Label::Tick);
        }
        out.push(P1Label::FromP0);
        if s.active {
            out.push(P1Label::InactivateV);
            if timeout_due {
                out.push(P1Label::Timeout);
            }
        }
    }

    fn next_state(&self, s: &P1SoloState, a: &P1Label) -> Option<P1SoloState> {
        let mut n = *s;
        match a {
            P1Label::Tick => {
                if s.active {
                    if s.waiting >= self.bound() {
                        return None;
                    }
                    n.waiting += 1;
                }
            }
            P1Label::FromP0 => {
                if s.active && s.pending.is_none() {
                    n.pending = Some(P1Pending::Reply);
                }
            }
            P1Label::ForP0 => match s.pending {
                Some(P1Pending::Reply) => n.pending = Some(P1Pending::Reset),
                _ => return None,
            },
            P1Label::SndResetSw => match s.pending {
                Some(P1Pending::Reset) => {
                    n.pending = None;
                    n.waiting = 0;
                }
                _ => return None,
            },
            P1Label::InactivateV => {
                if !s.active || s.pending.is_some() {
                    return None;
                }
                n.active = false;
            }
            P1Label::Timeout => {
                if !s.active || s.pending.is_some() || s.waiting < self.bound() {
                    return None;
                }
                n.pending = Some(P1Pending::Inactivate);
            }
            P1Label::InactivateNv => match s.pending {
                Some(P1Pending::Inactivate) => {
                    n.active = false;
                    n.pending = None;
                }
                _ => return None,
            },
        }
        Some(n)
    }

    fn format_action(&self, a: &P1Label) -> String {
        a.name().to_string()
    }
}

/// Build the reduced LTS of the isolated `p[0]` as in Figure 1: explore,
/// hide ticks (the paper hides the internal `send ticking time`; ticks are
/// the equivalent clock bookkeeping here), determinize modulo weak traces
/// and minimize.
pub fn p0_reduced_lts(params: Params) -> Lts {
    let model = P0Solo::new(params);
    let graph = StateGraph::explore(&model, 1 << 20);
    let lts = Lts::from_graph(&graph, |a| a.name().to_string());
    lts.hide(&["tick p0"]).determinize_weak().minimize_traces()
}

/// The raw (unreduced) LTS of the isolated `p[0]`.
pub fn p0_raw_lts(params: Params) -> Lts {
    let model = P0Solo::new(params);
    let graph = StateGraph::explore(&model, 1 << 20);
    Lts::from_graph(&graph, |a| a.name().to_string())
}

/// Build the reduced LTS of the isolated `p[1]` as in Figure 2 (the
/// stopwatch-reset message and ticks are hidden).
pub fn p1_reduced_lts(params: Params) -> Lts {
    let model = P1Solo::new(params);
    let graph = StateGraph::explore(&model, 1 << 20);
    let lts = Lts::from_graph(&graph, |a| a.name().to_string());
    lts.hide(&["tick p1", "snd reset sw p1"])
        .determinize_weak()
        .minimize_traces()
}

/// The raw (unreduced) LTS of the isolated `p[1]`.
pub fn p1_raw_lts(params: Params) -> Lts {
    let model = P1Solo::new(params);
    let graph = StateGraph::explore(&model, 1 << 20);
    Lts::from_graph(&graph, |a| a.name().to_string())
}

/// The figure-faithful reduction of `p[0]`: the paper's Figure 1 keeps
/// clock ticks *visible* (only the internal stopwatch communication was
/// hidden, and our encoding has no separate stopwatch process), so this
/// reduces modulo weak traces without hiding anything.
pub fn p0_figure_lts(params: Params) -> Lts {
    p0_raw_lts(params).determinize_weak().minimize_traces()
}

/// The figure-faithful reduction of `p[1]` (Figure 2): ticks stay
/// visible; only the stopwatch-reset message is hidden.
pub fn p1_figure_lts(params: Params) -> Lts {
    p1_raw_lts(params)
        .hide(&["snd reset sw p1"])
        .determinize_weak()
        .minimize_traces()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig_params() -> Params {
        Params::new(1, 2).unwrap() // the figures use tmax = 2, tmin = 1
    }

    #[test]
    fn p0_alphabet_matches_figure1() {
        let lts = p0_reduced_lts(fig_params());
        let alphabet = lts.alphabet();
        for name in [
            "from p1(hb1)",
            "inactivate v p0",
            "timeout at P0",
            "for p1(hb0)",
            "inactivate nv p0",
        ] {
            assert!(alphabet.contains(name), "missing {name}: {alphabet:?}");
        }
        assert!(!alphabet.contains("tick p0"), "ticks must be hidden");
    }

    #[test]
    fn p0_reduced_is_small_and_deterministic() {
        let lts = p0_reduced_lts(fig_params());
        // Figure 1 is a single-digit-state diagram; our reduction must land
        // in the same regime.
        assert!(lts.num_states <= 16, "too large: {}", lts.num_states);
        assert!(lts.num_states >= 4);
        // deterministic: no duplicate (src, label) pairs
        let mut seen = std::collections::HashSet::new();
        for (s, l, _) in &lts.transitions {
            assert!(
                seen.insert((*s, l.clone())),
                "nondeterminism after subset construction"
            );
        }
    }

    #[test]
    fn p0_admits_the_paper_traces() {
        let lts = p0_reduced_lts(fig_params());
        // Steady-state round: timeout, beat out, receive reply, repeat.
        assert!(lts.accepts_weak_trace(&[
            "timeout at P0",
            "for p1(hb0)",
            "from p1(hb1)",
            "timeout at P0",
            "for p1(hb0)",
        ]));
        // Silent decay to non-voluntary inactivation (tmax=2: one halving).
        assert!(lts.accepts_weak_trace(&[
            "timeout at P0",
            "for p1(hb0)",
            "timeout at P0",
            "for p1(hb0)",
            "timeout at P0",
            "inactivate nv p0",
        ]));
        // Voluntary inactivation is always available while active.
        assert!(lts.accepts_weak_trace(&["inactivate v p0"]));
        // But no beat can follow non-voluntary inactivation.
        assert!(!lts.accepts_weak_trace(&[
            "timeout at P0",
            "for p1(hb0)",
            "timeout at P0",
            "for p1(hb0)",
            "timeout at P0",
            "inactivate nv p0",
            "for p1(hb0)",
        ]));
    }

    #[test]
    fn p1_alphabet_matches_figure2() {
        let lts = p1_reduced_lts(fig_params());
        let alphabet = lts.alphabet();
        for name in [
            "from p0(hb0)",
            "for p0(hb1)",
            "inactivate v p1",
            "timeout at P1",
            "inactivate nv p1",
        ] {
            assert!(alphabet.contains(name), "missing {name}: {alphabet:?}");
        }
    }

    #[test]
    fn p1_replies_then_can_time_out() {
        let lts = p1_reduced_lts(fig_params());
        assert!(lts.accepts_weak_trace(&["from p0(hb0)", "for p0(hb1)"]));
        assert!(lts.accepts_weak_trace(&["timeout at P1", "inactivate nv p1"]));
        // After non-voluntary inactivation p1 never replies again.
        assert!(!lts.accepts_weak_trace(&[
            "timeout at P1",
            "inactivate nv p1",
            "from p0(hb0)",
            "for p0(hb1)",
        ]));
    }

    #[test]
    fn figure_faithful_reductions_keep_ticks() {
        let p0 = p0_figure_lts(fig_params());
        assert!(p0.alphabet().contains("tick p0"));
        // Figure 1 is a small diagram; the tick-visible reduction must
        // stay in the same single-digit regime.
        assert!(p0.num_states <= 24, "{}", p0.num_states);
        // the timed steady-state loop of Figure 1: wait two ticks, beat,
        // receive the reply, wait again
        assert!(p0.accepts_weak_trace(&[
            "tick p0",
            "tick p0",
            "timeout at P0",
            "for p1(hb0)",
            "from p1(hb1)",
            "tick p0",
        ]));
        let p1 = p1_figure_lts(fig_params());
        assert!(p1.alphabet().contains("tick p1"));
        assert!(!p1.alphabet().contains("snd reset sw p1"));
    }

    #[test]
    fn raw_systems_are_finite_and_larger_than_reduced() {
        let raw = p0_raw_lts(fig_params());
        let red = p0_reduced_lts(fig_params());
        assert!(raw.num_states > red.num_states);
        let raw1 = p1_raw_lts(fig_params());
        let red1 = p1_reduced_lts(fig_params());
        assert!(raw1.num_states > red1.num_states);
    }
}
