//! Conversion of model-checker paths into protocol event logs.
//!
//! Counterexamples come out of the checker as sequences of
//! [`crate::model::HbAction`] values; this module reconstructs
//! wall-clock timestamps (by counting `Tick`s) and message sends (by
//! diffing channel contents across steps) to produce an
//! [`hb_core::trace::EventLog`] rendering as the paper-style
//! sequence charts.

use hb_core::trace::{Event, EventLog};
use hb_core::Status;
use mck::Path;

use crate::model::{HbAction, HbModel, HbState, Msg};

/// Messages present in `after` but not in `before` (multiset difference;
/// both are sorted).
fn added_msgs(before: &[Msg], after: &[Msg]) -> Vec<Msg> {
    let mut remaining = before.to_vec();
    let mut added = Vec::new();
    for m in after {
        if let Some(pos) = remaining.iter().position(|x| x == m) {
            remaining.remove(pos);
        } else {
            added.push(*m);
        }
    }
    added
}

/// Convert a checker path into a timestamped event log.
pub fn path_to_log(path: &Path<HbModel>) -> EventLog {
    let mut log = EventLog::new();
    let mut now: u64 = 0;
    let mut prev: &HbState = path.initial_state();
    for (action, state) in path.steps() {
        match action {
            HbAction::Tick => now += 1,
            HbAction::CoordTimeout => {
                log.push(Event::Timeout { at: now, pid: 0 });
                if state.coord.status == Status::NvInactive {
                    log.push(Event::NvInactivate { at: now, pid: 0 });
                } else {
                    for m in added_msgs(&prev.channel, &state.channel) {
                        log.push(Event::Send {
                            at: now,
                            from: 0,
                            to: m.dst,
                            hb: m.hb,
                        });
                    }
                }
            }
            HbAction::RespWatchdog(pid) => {
                log.push(Event::NvInactivate { at: now, pid: *pid });
            }
            HbAction::JoinSend(pid) => {
                log.push(Event::Send {
                    at: now,
                    from: *pid,
                    to: 0,
                    hb: hb_core::Heartbeat::plain(),
                });
            }
            HbAction::Deliver { msg, leave } => {
                log.push(Event::Deliver {
                    at: now,
                    from: msg.src,
                    to: msg.dst,
                    hb: msg.hb,
                });
                for m in added_msgs(&prev.channel, &state.channel) {
                    log.push(Event::Send {
                        at: now,
                        from: m.src,
                        to: m.dst,
                        hb: m.hb,
                    });
                }
                if *leave {
                    log.push(Event::Leave {
                        at: now,
                        pid: msg.dst,
                    });
                }
            }
            HbAction::Lose(msg) => {
                log.push(Event::Lose {
                    at: now,
                    from: msg.src,
                    to: msg.dst,
                });
            }
            HbAction::Crash(pid) => {
                log.push(Event::Crash { at: now, pid: *pid });
            }
        }
        prev = state;
    }
    log
}

/// Total duration (in time units) of a path: the number of `Tick`s.
pub fn path_duration(path: &Path<HbModel>) -> u64 {
    path.actions()
        .iter()
        .filter(|a| matches!(a, HbAction::Tick))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::{build_model, error_predicate, Requirement};
    use hb_core::{FixLevel, Params, Variant};
    use mck::Checker;

    #[test]
    fn fig12_style_counterexample_renders() {
        // R3 on the original binary protocol at tmin=tmax: the CE must show
        // p[0] NV-inactivating while p[1] never crashed.
        let params = Params::new(3, 3).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R3,
        );
        let path = Checker::new(&model)
            .find_state(|s| error_predicate(&model, Requirement::R3)(s))
            .expect("R3 violated at tmin=tmax");
        let log = path_to_log(&path);
        assert!(!log.is_empty());
        let text = log.to_string();
        assert!(text.contains("timeout at p[0]"));
        assert!(text.contains("p[0] inactivated NON-VOLUNTARILY"));
        assert!(!text.contains("crash"), "premise excludes crashes: {text}");
        assert!(!text.contains("loses"), "premise excludes loss: {text}");
        // The chart renders one line per event plus two header lines.
        let chart = log.render_chart(1);
        assert_eq!(chart.lines().count(), log.len() + 2);
    }

    #[test]
    fn timestamps_count_ticks() {
        let params = Params::new(2, 2).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R3,
        );
        let path = Checker::new(&model)
            .find_state(|s| error_predicate(&model, Requirement::R3)(s))
            .expect("violated");
        let log = path_to_log(&path);
        let last_at = log.events().last().unwrap().at();
        assert_eq!(last_at, path_duration(&path));
        // Events are time-ordered.
        assert!(log.events().windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn sends_are_reconstructed_from_channel_diffs() {
        let params = Params::new(2, 4).unwrap();
        let model = build_model(
            Variant::Binary,
            params,
            FixLevel::Original,
            1,
            Requirement::R2,
        );
        let path = Checker::new(&model)
            .find_state(|s| !s.channel.is_empty())
            .expect("some message is sent");
        let log = path_to_log(&path);
        assert!(log
            .events()
            .iter()
            .any(|e| matches!(e, Event::Send { from: 0, to: 1, .. })));
    }
}
