//! Regeneration of the paper's verification tables.
//!
//! * [`table1`] — Table 1: (revised) binary, two-phase and static
//!   protocols on the five data sets `tmin ∈ {1,4,5,9,10}`, `tmax = 10`.
//! * [`table2`] — Table 2: expanding and dynamic protocols, same data
//!   sets.
//! * [`table_fixed`] — the §6 result: every variant at
//!   [`FixLevel::Full`] satisfies every requirement on every data set.
//!
//! Each report carries the paper's expected verdicts next to the measured
//! ones and renders as the same `T`/`F` grid the paper prints.

use std::fmt::Write as _;

use hb_core::params::PAPER_DATASETS;
use hb_core::{FixLevel, Params, Variant};

use crate::requirements::{verify_with_n, Requirement, Verdict};

/// The paper's Table 1 verdicts (rows R1, R2, R3 × the five data sets).
pub const TABLE1_EXPECTED: [[bool; 5]; 3] = [
    [false, false, false, true, true], // R1
    [true, true, true, true, false],   // R2
    [true, true, true, true, false],   // R3
];

/// The paper's Table 2 verdicts.
pub const TABLE2_EXPECTED: [[bool; 5]; 3] = [
    [false, false, false, true, true], // R1
    [true, true, false, false, false], // R2
    [true, true, true, true, false],   // R3
];

/// The §6 expectation for the fully fixed protocols: everything holds.
pub const FIXED_EXPECTED: [[bool; 5]; 3] = [[true; 5]; 3];

/// One row of a table report: a (variant, requirement) pair swept over the
/// data sets.
#[derive(Clone, Debug)]
pub struct RowReport {
    /// The protocol variant of this row.
    pub variant: Variant,
    /// The requirement of this row.
    pub requirement: Requirement,
    /// One verdict per data set.
    pub verdicts: Vec<Verdict>,
    /// The paper's expected truth values for this row.
    pub expected: Vec<bool>,
}

impl RowReport {
    /// Whether every measured verdict matches the paper.
    pub fn matches(&self) -> bool {
        self.verdicts.len() == self.expected.len()
            && self
                .verdicts
                .iter()
                .zip(&self.expected)
                .all(|(v, e)| v.holds == *e)
    }
}

/// A regenerated verification table.
#[derive(Clone, Debug)]
pub struct TableReport {
    /// Table caption.
    pub title: String,
    /// The data sets (columns).
    pub datasets: Vec<Params>,
    /// Rows, grouped by variant then requirement.
    pub rows: Vec<RowReport>,
}

impl TableReport {
    /// Whether every cell matches the paper's verdict.
    pub fn matches_expected(&self) -> bool {
        self.rows.iter().all(RowReport::matches)
    }

    /// Total states explored across all cells.
    pub fn total_states(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.verdicts)
            .map(|v| v.stats.states)
            .sum()
    }

    /// Render the table in the paper's format, with a `paper:` line under
    /// each measured row and a trailing match summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<24}", "tmin");
        for p in &self.datasets {
            let _ = write!(out, "{:>4}", p.tmin());
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<24}", "tmax");
        for p in &self.datasets {
            let _ = write!(out, "{:>4}", p.tmax());
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(24 + 4 * self.datasets.len() + 22));
        let mut last_variant = None;
        for row in &self.rows {
            if last_variant != Some(row.variant) {
                let _ = writeln!(out, "[{}]", row.variant);
                last_variant = Some(row.variant);
            }
            let _ = write!(out, "  {:<22}", row.requirement.name());
            for v in &row.verdicts {
                let _ = write!(out, "{:>4}", v.symbol());
            }
            let _ = write!(out, "   paper:");
            for e in &row.expected {
                let _ = write!(out, " {}", if *e { "T" } else { "F" });
            }
            let _ = writeln!(
                out,
                "  {}",
                if row.matches() {
                    "MATCH"
                } else {
                    "** MISMATCH **"
                }
            );
        }
        let _ = writeln!(
            out,
            "overall: {} ({} states explored)",
            if self.matches_expected() {
                "all cells match the paper"
            } else {
                "MISMATCHES PRESENT"
            },
            self.total_states()
        );
        out
    }
}

/// The five `tmax = 10` data sets of the paper as validated [`Params`].
pub fn paper_params() -> Vec<Params> {
    PAPER_DATASETS
        .iter()
        .map(|&(tmin, tmax)| Params::new(tmin, tmax).expect("paper data sets are valid"))
        .collect()
}

fn run_table(
    title: &str,
    variants: &[Variant],
    fix: FixLevel,
    datasets: &[Params],
    expected: &[[bool; 5]; 3],
) -> TableReport {
    let mut rows = Vec::new();
    for &variant in variants {
        for (ri, req) in Requirement::ALL.into_iter().enumerate() {
            let verdicts = datasets
                .iter()
                .map(|&p| verify_with_n(variant, p, fix, req, 1))
                .collect();
            rows.push(RowReport {
                variant,
                requirement: req,
                verdicts,
                expected: expected[ri].to_vec(),
            });
        }
    }
    TableReport {
        title: title.to_string(),
        datasets: datasets.to_vec(),
        rows,
    }
}

/// Regenerate the paper's **Table 1** (verification results for the
/// (revised) binary, two-phase and static protocols).
///
/// Explores a few hundred thousand states; order of seconds in release
/// mode.
pub fn table1() -> TableReport {
    run_table(
        "Table 1: verification results for (revised) binary, two-phase and static protocols",
        &Variant::TABLE1,
        FixLevel::Original,
        &paper_params(),
        &TABLE1_EXPECTED,
    )
}

/// Regenerate the paper's **Table 2** (verification results for the
/// expanding and dynamic protocols).
pub fn table2() -> TableReport {
    run_table(
        "Table 2: verification results for expanding and dynamic protocols",
        &Variant::TABLE2,
        FixLevel::Original,
        &paper_params(),
        &TABLE2_EXPECTED,
    )
}

/// Regenerate the §6 result: all six variants at [`FixLevel::Full`] pass
/// every requirement on every data set.
pub fn table_fixed() -> TableReport {
    run_table(
        "Fixed protocols (receive priority + corrected bounds): all requirements hold",
        &Variant::ALL,
        FixLevel::Full,
        &paper_params(),
        &FIXED_EXPECTED,
    )
}

/// Sweep a single variant at a given fix level over arbitrary data sets,
/// with no paper expectation attached (the `expected` column repeats the
/// measurement). Used by the ablation bench to show what each of the two
/// fixes repairs on its own.
pub fn sweep_variant(variant: Variant, fix: FixLevel, datasets: &[Params]) -> TableReport {
    let rows = Requirement::ALL
        .into_iter()
        .map(|req| {
            let verdicts: Vec<Verdict> = datasets
                .iter()
                .map(|&p| verify_with_n(variant, p, fix, req, 1))
                .collect();
            let expected = verdicts.iter().map(|v| v.holds).collect();
            RowReport {
                variant,
                requirement: req,
                verdicts,
                expected,
            }
        })
        .collect();
    TableReport {
        title: format!("{variant} at fix level {fix}"),
        datasets: datasets.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full tmax=10 campaigns run in the integration tests and benches;
    // here we exercise the report plumbing on miniature parameters.

    #[test]
    fn expected_grids_have_paper_shape() {
        assert_eq!(TABLE1_EXPECTED[0], [false, false, false, true, true]);
        assert_eq!(TABLE2_EXPECTED[1], [true, true, false, false, false]);
        assert!(FIXED_EXPECTED.iter().flatten().all(|&b| b));
    }

    #[test]
    fn paper_params_match_constants() {
        let ps = paper_params();
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0].tmin(), 1);
        assert!(ps.iter().all(|p| p.tmax() == 10));
    }

    #[test]
    fn render_contains_headers_and_verdicts() {
        let datasets = vec![Params::new(2, 4).unwrap()];
        let report = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        let text = report.render();
        assert!(text.contains("binary"));
        assert!(text.contains("tmin"));
        assert!(text.contains("R2"));
        assert!(report.total_states() > 0);
        assert!(report.matches_expected(), "self-expectation always matches");
    }

    #[test]
    fn mismatch_is_reported() {
        let datasets = vec![Params::new(2, 4).unwrap()];
        let mut report = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        report.rows[0].expected = vec![!report.rows[0].verdicts[0].holds];
        assert!(!report.matches_expected());
        assert!(report.render().contains("MISMATCH"));
    }

    #[test]
    fn miniature_table_matches_itself_across_fixes() {
        // Tiny end-to-end: binary at (2,4) original has R1 violated,
        // fixed has it satisfied — visible through the table API.
        let datasets = vec![Params::new(1, 4).unwrap()];
        let orig = sweep_variant(Variant::Binary, FixLevel::Original, &datasets);
        let full = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        let r1_orig = &orig.rows[0].verdicts[0];
        let r1_full = &full.rows[0].verdicts[0];
        assert!(!r1_orig.holds);
        assert!(r1_full.holds);
    }
}
