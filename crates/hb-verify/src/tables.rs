//! Regeneration of the paper's verification tables.
//!
//! * [`table1`] — Table 1: (revised) binary, two-phase and static
//!   protocols on the five data sets `tmin ∈ {1,4,5,9,10}`, `tmax = 10`.
//! * [`table2`] — Table 2: expanding and dynamic protocols, same data
//!   sets.
//! * [`table_fixed`] — the §6 result: every variant at
//!   [`FixLevel::Full`] satisfies every requirement on every data set.
//!
//! Each report carries the paper's expected verdicts next to the measured
//! ones and renders as the same `T`/`F` grid the paper prints.
//!
//! Beyond the paper's `n = 1` grids, the **scale campaign**
//! ([`scale_grid`]) sweeps the multi-party protocols at `n ∈ {2, 4, 8}`
//! with staggered starts (and leaves, for the dynamic variant) under
//! four reduction stacks — unreduced, certificate-gated symmetry,
//! symmetry × partial-order reduction, and the same pair on the
//! bit-packed store — reporting state counts, memory and verdicts side
//! by side so the reductions can be cross-checked against each other
//! and against the unreduced checker on every affordable cell.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use hb_core::params::PAPER_DATASETS;
use hb_core::{FixLevel, Params, Variant};
use mck::bfs::Stats;
use mck::packed::PackedChecker;
use mck::symmetry::Symmetric;
use mck::{CheckOutcome, Checker, Model, Reduced};

use crate::model::HbState;
use crate::packed::HbCodec;
use crate::por::HbAmpleOracle;
use crate::requirements::{build_model, error_predicate, verify_with_n, Requirement, Verdict};
use crate::symmetry::certified_canonical;

/// The paper's Table 1 verdicts (rows R1, R2, R3 × the five data sets).
pub const TABLE1_EXPECTED: [[bool; 5]; 3] = [
    [false, false, false, true, true], // R1
    [true, true, true, true, false],   // R2
    [true, true, true, true, false],   // R3
];

/// The paper's Table 2 verdicts.
pub const TABLE2_EXPECTED: [[bool; 5]; 3] = [
    [false, false, false, true, true], // R1
    [true, true, false, false, false], // R2
    [true, true, true, true, false],   // R3
];

/// The §6 expectation for the fully fixed protocols: everything holds.
pub const FIXED_EXPECTED: [[bool; 5]; 3] = [[true; 5]; 3];

/// One row of a table report: a (variant, requirement) pair swept over the
/// data sets.
#[derive(Clone, Debug)]
pub struct RowReport {
    /// The protocol variant of this row.
    pub variant: Variant,
    /// The requirement of this row.
    pub requirement: Requirement,
    /// One verdict per data set.
    pub verdicts: Vec<Verdict>,
    /// The paper's expected truth values for this row.
    pub expected: Vec<bool>,
}

impl RowReport {
    /// Whether every measured verdict matches the paper.
    pub fn matches(&self) -> bool {
        self.verdicts.len() == self.expected.len()
            && self
                .verdicts
                .iter()
                .zip(&self.expected)
                .all(|(v, e)| v.holds == *e)
    }
}

/// A regenerated verification table.
#[derive(Clone, Debug)]
pub struct TableReport {
    /// Table caption.
    pub title: String,
    /// The data sets (columns).
    pub datasets: Vec<Params>,
    /// Rows, grouped by variant then requirement.
    pub rows: Vec<RowReport>,
}

impl TableReport {
    /// Whether every cell matches the paper's verdict.
    pub fn matches_expected(&self) -> bool {
        self.rows.iter().all(RowReport::matches)
    }

    /// Total states explored across all cells.
    pub fn total_states(&self) -> usize {
        self.rows
            .iter()
            .flat_map(|r| &r.verdicts)
            .map(|v| v.stats.states)
            .sum()
    }

    /// Render the table in the paper's format, with a `paper:` line under
    /// each measured row and a trailing match summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        let _ = write!(out, "{:<24}", "tmin");
        for p in &self.datasets {
            let _ = write!(out, "{:>4}", p.tmin());
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:<24}", "tmax");
        for p in &self.datasets {
            let _ = write!(out, "{:>4}", p.tmax());
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(24 + 4 * self.datasets.len() + 22));
        let mut last_variant = None;
        for row in &self.rows {
            if last_variant != Some(row.variant) {
                let _ = writeln!(out, "[{}]", row.variant);
                last_variant = Some(row.variant);
            }
            let _ = write!(out, "  {:<22}", row.requirement.name());
            for v in &row.verdicts {
                let _ = write!(out, "{:>4}", v.symbol());
            }
            let _ = write!(out, "   paper:");
            for e in &row.expected {
                let _ = write!(out, " {}", if *e { "T" } else { "F" });
            }
            let _ = writeln!(
                out,
                "  {}",
                if row.matches() {
                    "MATCH"
                } else {
                    "** MISMATCH **"
                }
            );
        }
        let _ = writeln!(
            out,
            "overall: {} ({} states explored)",
            if self.matches_expected() {
                "all cells match the paper"
            } else {
                "MISMATCHES PRESENT"
            },
            self.total_states()
        );
        out
    }
}

/// The five `tmax = 10` data sets of the paper as validated [`Params`].
pub fn paper_params() -> Vec<Params> {
    PAPER_DATASETS
        .iter()
        .map(|&(tmin, tmax)| Params::new(tmin, tmax).expect("paper data sets are valid"))
        .collect()
}

fn run_table(
    title: &str,
    variants: &[Variant],
    fix: FixLevel,
    datasets: &[Params],
    expected: &[[bool; 5]; 3],
) -> TableReport {
    let mut rows = Vec::new();
    for &variant in variants {
        for (ri, req) in Requirement::ALL.into_iter().enumerate() {
            let verdicts = datasets
                .iter()
                .map(|&p| verify_with_n(variant, p, fix, req, 1))
                .collect();
            rows.push(RowReport {
                variant,
                requirement: req,
                verdicts,
                expected: expected[ri].to_vec(),
            });
        }
    }
    TableReport {
        title: title.to_string(),
        datasets: datasets.to_vec(),
        rows,
    }
}

/// Regenerate the paper's **Table 1** (verification results for the
/// (revised) binary, two-phase and static protocols).
///
/// Explores a few hundred thousand states; order of seconds in release
/// mode.
pub fn table1() -> TableReport {
    run_table(
        "Table 1: verification results for (revised) binary, two-phase and static protocols",
        &Variant::TABLE1,
        FixLevel::Original,
        &paper_params(),
        &TABLE1_EXPECTED,
    )
}

/// Regenerate the paper's **Table 2** (verification results for the
/// expanding and dynamic protocols).
pub fn table2() -> TableReport {
    run_table(
        "Table 2: verification results for expanding and dynamic protocols",
        &Variant::TABLE2,
        FixLevel::Original,
        &paper_params(),
        &TABLE2_EXPECTED,
    )
}

/// Regenerate the §6 result: all six variants at [`FixLevel::Full`] pass
/// every requirement on every data set.
pub fn table_fixed() -> TableReport {
    run_table(
        "Fixed protocols (receive priority + corrected bounds): all requirements hold",
        &Variant::ALL,
        FixLevel::Full,
        &paper_params(),
        &FIXED_EXPECTED,
    )
}

/// Sweep a single variant at a given fix level over arbitrary data sets,
/// with no paper expectation attached (the `expected` column repeats the
/// measurement). Used by the ablation bench to show what each of the two
/// fixes repairs on its own.
pub fn sweep_variant(variant: Variant, fix: FixLevel, datasets: &[Params]) -> TableReport {
    let rows = Requirement::ALL
        .into_iter()
        .map(|req| {
            let verdicts: Vec<Verdict> = datasets
                .iter()
                .map(|&p| verify_with_n(variant, p, fix, req, 1))
                .collect();
            let expected = verdicts.iter().map(|v| v.holds).collect();
            RowReport {
                variant,
                requirement: req,
                verdicts,
                expected,
            }
        })
        .collect();
    TableReport {
        title: format!("{variant} at fix level {fix}"),
        datasets: datasets.to_vec(),
        rows,
    }
}

/// The reduction stack applied to one scale-campaign cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Plain BFS over the unreduced composed model.
    Full,
    /// Certificate-gated symmetry quotient (sort-key canonicalization).
    Sym,
    /// Symmetry quotient over the ample-set-reduced model.
    SymPor,
    /// [`Reduction::SymPor`] explored on the bit-packed store with
    /// dataflow-proven field widths.
    SymPorPacked,
}

impl Reduction {
    /// All stacks, weakest first.
    pub const ALL: [Reduction; 4] = [
        Reduction::Full,
        Reduction::Sym,
        Reduction::SymPor,
        Reduction::SymPorPacked,
    ];

    /// Short name for report columns.
    pub fn name(self) -> &'static str {
        match self {
            Reduction::Full => "full",
            Reduction::Sym => "sym",
            Reduction::SymPor => "sym+por",
            Reduction::SymPorPacked => "sym+por+packed",
        }
    }
}

impl std::fmt::Display for Reduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exploration budget for one scale cell. A cell that exhausts either
/// limit reports [`ScaleOutcome::Exhausted`] instead of a verdict —
/// that *is* the measurement for the unreduced baselines.
#[derive(Clone, Copy, Debug)]
pub struct ScaleLimits {
    /// Stop after interning this many states.
    pub max_states: usize,
    /// Stop after this much wall-clock time.
    pub time_budget: Duration,
}

impl Default for ScaleLimits {
    fn default() -> Self {
        Self {
            max_states: 2_000_000,
            time_budget: Duration::from_secs(30),
        }
    }
}

/// What a scale cell concluded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScaleOutcome {
    /// The requirement holds (exhaustively, within this reduction).
    Holds,
    /// Violated, with the depth of the found counterexample.
    Violated {
        /// Length of the counterexample path.
        depth: usize,
    },
    /// The state or time budget ran out first.
    Exhausted,
    /// The symmetry certificate refused the quotient (rendered reason).
    Refused(String),
}

impl ScaleOutcome {
    /// Report symbol: `T`, `F`, `—` (exhausted) or `refused`.
    pub fn symbol(&self) -> &'static str {
        match self {
            ScaleOutcome::Holds => "T",
            ScaleOutcome::Violated { .. } => "F",
            ScaleOutcome::Exhausted => "—",
            ScaleOutcome::Refused(_) => "refused",
        }
    }
}

/// One measured cell of the scale campaign.
#[derive(Clone, Debug)]
pub struct ScaleCell {
    /// Protocol variant.
    pub variant: Variant,
    /// Requirement checked.
    pub requirement: Requirement,
    /// Participant count.
    pub n: usize,
    /// Reduction stack used.
    pub reduction: Reduction,
    /// Verdict or exhaustion.
    pub outcome: ScaleOutcome,
    /// States interned before finishing (or giving up).
    pub states: usize,
    /// Transitions traversed.
    pub transitions: usize,
    /// Peak bytes of the packed store (packed runs only).
    pub peak_bytes: Option<usize>,
    /// Wall-clock milliseconds.
    pub millis: u128,
}

fn scale_outcome<M: Model>(o: &CheckOutcome<M>) -> (ScaleOutcome, Stats) {
    match o {
        CheckOutcome::Holds(st) => (ScaleOutcome::Holds, *st),
        CheckOutcome::Violated { path, stats } => {
            (ScaleOutcome::Violated { depth: path.len() }, *stats)
        }
        CheckOutcome::Incomplete(st) => (ScaleOutcome::Exhausted, *st),
    }
}

/// Measure one scale-campaign cell.
///
/// The model is built exactly as the paper cells are
/// ([`build_model`]) plus staggered starts; the dynamic variant keeps
/// its voluntary leaves. The `Sym*` stacks go through
/// [`certified_canonical`], so an uncertified machine yields
/// [`ScaleOutcome::Refused`] instead of an unsound quotient.
pub fn scale_cell(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    req: Requirement,
    n: usize,
    reduction: Reduction,
    limits: ScaleLimits,
) -> ScaleCell {
    let model = build_model(variant, params, fix, n, req).stagger_starts(true);
    let pred = |s: &HbState| !error_predicate(&model, req)(s);
    let start = Instant::now();
    let mut peak_bytes = None;
    let (outcome, stats) = match reduction {
        Reduction::Full => {
            let out = Checker::new(&model)
                .max_states(limits.max_states)
                .time_budget(limits.time_budget)
                .check_invariant(pred);
            scale_outcome(&out)
        }
        Reduction::Sym | Reduction::SymPor | Reduction::SymPorPacked => {
            match certified_canonical(&model) {
                Err(refusal) => (ScaleOutcome::Refused(refusal.to_string()), Stats::default()),
                Ok(canon) => match reduction {
                    Reduction::Sym => {
                        let sym = Symmetric::new(&model, canon);
                        let out = Checker::new(&sym)
                            .max_states(limits.max_states)
                            .time_budget(limits.time_budget)
                            .check_invariant(pred);
                        scale_outcome(&out)
                    }
                    Reduction::SymPor => {
                        let red = Reduced::new(&model, HbAmpleOracle::new(&model, req));
                        let sym = Symmetric::new(&red, canon);
                        let out = Checker::new(&sym)
                            .max_states(limits.max_states)
                            .time_budget(limits.time_budget)
                            .check_invariant(pred);
                        scale_outcome(&out)
                    }
                    _ => {
                        let red = Reduced::new(&model, HbAmpleOracle::new(&model, req));
                        let sym = Symmetric::new(&red, canon);
                        let run = PackedChecker::new(&sym, HbCodec::for_model(&model))
                            .max_states(limits.max_states)
                            .time_budget(limits.time_budget)
                            .check_invariant(pred);
                        peak_bytes = Some(run.mem.total());
                        scale_outcome(&run.outcome)
                    }
                },
            }
        }
    };
    ScaleCell {
        variant,
        requirement: req,
        n,
        reduction,
        outcome,
        states: stats.states,
        transitions: stats.transitions,
        peak_bytes,
        millis: start.elapsed().as_millis(),
    }
}

/// The multi-party scale campaign: static/expanding/dynamic × `ns` ×
/// `reqs` × all four reduction stacks, at [`FixLevel::Full`]-style
/// `fix`. Cells run weakest stack first so a budget-limited sweep still
/// yields the baseline numbers.
pub fn scale_grid(
    params: Params,
    fix: FixLevel,
    ns: &[usize],
    reqs: &[Requirement],
    limits: ScaleLimits,
) -> Vec<ScaleCell> {
    let mut cells = Vec::new();
    for &variant in &[Variant::Static, Variant::Expanding, Variant::Dynamic] {
        for &n in ns {
            for &req in reqs {
                for reduction in Reduction::ALL {
                    cells.push(scale_cell(variant, params, fix, req, n, reduction, limits));
                }
            }
        }
    }
    cells
}

/// Cross-check a scale sweep: within each (variant, requirement, n)
/// group, every cell that finished (no exhaustion/refusal) must agree
/// on the verdict. Returns the disagreeing groups, empty when sound.
pub fn scale_disagreements(cells: &[ScaleCell]) -> Vec<String> {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, Requirement, usize), Vec<&ScaleCell>> = BTreeMap::new();
    for c in cells {
        groups
            .entry((c.variant.to_string(), c.requirement, c.n))
            .or_default()
            .push(c);
    }
    let mut bad = Vec::new();
    for ((v, req, n), group) in groups {
        let verdicts: Vec<&str> = group
            .iter()
            .filter(|c| {
                matches!(
                    c.outcome,
                    ScaleOutcome::Holds | ScaleOutcome::Violated { .. }
                )
            })
            .map(|c| c.outcome.symbol())
            .collect();
        if verdicts.windows(2).any(|w| w[0] != w[1]) {
            bad.push(format!("{v}/{req}/n={n}: {verdicts:?}"));
        }
    }
    bad
}

/// Render a scale sweep as an aligned text table.
pub fn render_scale(cells: &[ScaleCell]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:>3} {:<3} {:<15} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "variant", "req", "n", "reduction", "verdict", "states", "transitions", "peak-bytes", "ms"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    for c in cells {
        let peak = c
            .peak_bytes
            .map(|b| b.to_string())
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{:<10} {:>3} {:<3} {:<15} {:>8} {:>10} {:>12} {:>12} {:>8}",
            c.variant.to_string(),
            c.requirement.name(),
            c.n,
            c.reduction.name(),
            c.outcome.symbol(),
            c.states,
            c.transitions,
            peak,
            c.millis
        );
    }
    let bad = scale_disagreements(cells);
    let _ = writeln!(
        out,
        "cross-check: {}",
        if bad.is_empty() {
            "all finished stacks agree".to_string()
        } else {
            format!("DISAGREEMENTS: {bad:?}")
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full tmax=10 campaigns run in the integration tests and benches;
    // here we exercise the report plumbing on miniature parameters.

    #[test]
    fn expected_grids_have_paper_shape() {
        assert_eq!(TABLE1_EXPECTED[0], [false, false, false, true, true]);
        assert_eq!(TABLE2_EXPECTED[1], [true, true, false, false, false]);
        assert!(FIXED_EXPECTED.iter().flatten().all(|&b| b));
    }

    #[test]
    fn paper_params_match_constants() {
        let ps = paper_params();
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0].tmin(), 1);
        assert!(ps.iter().all(|p| p.tmax() == 10));
    }

    #[test]
    fn render_contains_headers_and_verdicts() {
        let datasets = vec![Params::new(2, 4).unwrap()];
        let report = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        let text = report.render();
        assert!(text.contains("binary"));
        assert!(text.contains("tmin"));
        assert!(text.contains("R2"));
        assert!(report.total_states() > 0);
        assert!(report.matches_expected(), "self-expectation always matches");
    }

    #[test]
    fn mismatch_is_reported() {
        let datasets = vec![Params::new(2, 4).unwrap()];
        let mut report = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        report.rows[0].expected = vec![!report.rows[0].verdicts[0].holds];
        assert!(!report.matches_expected());
        assert!(report.render().contains("MISMATCH"));
    }

    #[test]
    fn scale_cell_stacks_agree_on_a_small_static_cell() {
        let p = Params::new(1, 3).unwrap();
        let limits = ScaleLimits::default();
        let cells: Vec<ScaleCell> = Reduction::ALL
            .into_iter()
            .map(|r| {
                scale_cell(
                    Variant::Static,
                    p,
                    FixLevel::Original,
                    Requirement::R2,
                    2,
                    r,
                    limits,
                )
            })
            .collect();
        assert!(scale_disagreements(&cells).is_empty());
        assert!(cells.iter().all(|c| c.outcome == ScaleOutcome::Holds));
        let full = cells[0].states;
        let sym = cells[1].states;
        let sym_por = cells[2].states;
        let packed = cells[3].states;
        assert!(sym < full, "symmetry must shrink: {sym} vs {full}");
        assert!(sym_por <= sym, "por must not grow: {sym_por} vs {sym}");
        assert_eq!(packed, sym_por, "packed explores the same graph");
        assert!(cells[3].peak_bytes.unwrap() > 0);
        let rendered = render_scale(&cells);
        assert!(rendered.contains("sym+por+packed"));
        assert!(rendered.contains("all finished stacks agree"));
    }

    #[test]
    fn scale_cell_reports_exhaustion_within_budget() {
        let p = Params::new(2, 8).unwrap();
        let limits = ScaleLimits {
            max_states: 500,
            time_budget: Duration::from_secs(5),
        };
        let c = scale_cell(
            Variant::Static,
            p,
            FixLevel::Full,
            Requirement::R2,
            4,
            Reduction::Full,
            limits,
        );
        assert_eq!(c.outcome, ScaleOutcome::Exhausted);
        assert!(c.states <= 501);
        assert_eq!(c.outcome.symbol(), "—");
    }

    #[test]
    fn scale_grid_covers_the_campaign_shape() {
        let p = Params::new(1, 2).unwrap();
        let limits = ScaleLimits {
            max_states: 20_000,
            time_budget: Duration::from_secs(10),
        };
        let cells = scale_grid(p, FixLevel::Full, &[2], &[Requirement::R3], limits);
        // 3 variants × 1 n × 1 req × 4 stacks.
        assert_eq!(cells.len(), 12);
        assert!(scale_disagreements(&cells).is_empty());
        assert!(cells
            .iter()
            .filter(|c| c.reduction == Reduction::SymPorPacked)
            .all(|c| c.peak_bytes.is_some()));
    }

    #[test]
    fn miniature_table_matches_itself_across_fixes() {
        // Tiny end-to-end: binary at (2,4) original has R1 violated,
        // fixed has it satisfied — visible through the table API.
        let datasets = vec![Params::new(1, 4).unwrap()];
        let orig = sweep_variant(Variant::Binary, FixLevel::Original, &datasets);
        let full = sweep_variant(Variant::Binary, FixLevel::Full, &datasets);
        let r1_orig = &orig.rows[0].verdicts[0];
        let r1_full = &full.rows[0].verdicts[0];
        assert!(!r1_orig.holds);
        assert!(r1_full.holds);
    }
}
