//! `hb-verify` — formal verification of the accelerated heartbeat
//! protocols, reproducing the analysis of Atif & Mousavi (2009).
//!
//! The crate composes the pure protocol machines of `hb-core` with lossy
//! bounded-delay channels and requirement monitors into finite
//! discrete-time transition systems ([`model::HbModel`]), then model-checks
//! the three requirements of the paper with the `mck` explicit-state
//! checker:
//!
//! * **R1** — if `p[0]` stops receiving heartbeats from a (joined)
//!   participant, it becomes inactive within a bound (`2·tmax` as claimed
//!   by the original paper; the corrected per-variant bound under the §6.2
//!   fix).
//! * **R2** — with no crashes and no message loss, no *participant* is
//!   ever inactivated non-voluntarily.
//! * **R3** — with no crashes and no message loss, the *coordinator* is
//!   never inactivated non-voluntarily.
//!
//! [`verify`] checks one (variant, params, fix, requirement) cell;
//! [`tables`] regenerates the paper's Tables 1 and 2 and the all-pass table
//! for the fixed protocols; [`figures`] replays and shape-checks the
//! counter-examples of Figures 10–13; [`solo`] builds the isolated-process
//! transition systems of Figures 1–2. Beyond the paper, [`liveness`]
//! checks the original GM98 eventuality guarantee, [`symmetry`] provides
//! participant-permutation reduction for multi-party models, and
//! [`rejoin_model`] verifies the future-work rejoin extension.
//!
//! # Example
//!
//! ```
//! use hb_core::{Params, Variant, FixLevel};
//! use hb_verify::{verify, Requirement};
//!
//! // Figure 11 scenario: tmin = tmax makes R2 fail in the original
//! // binary protocol...
//! let p = Params::new(10, 10).unwrap();
//! assert!(!verify(Variant::Binary, p, FixLevel::Original, Requirement::R2).holds);
//! // ...and the full fix repairs it.
//! assert!(verify(Variant::Binary, p, FixLevel::Full, Requirement::R2).holds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod liveness;
pub mod model;
pub mod monitor;
pub mod packed;
pub mod por;
pub mod rejoin_model;
pub mod render;
pub mod requirements;
pub mod solo;
pub mod symmetry;
pub mod tables;

pub use model::{HbAction, HbModel, HbState, Msg};
pub use monitor::{monitor_defs, reference_verdicts, MonitorDef, ReferenceVerdicts, Violation};
pub use packed::HbCodec;
pub use por::{verify_with_n_por, HbAmpleOracle};
pub use requirements::{verify, verify_with_n, Requirement, Verdict};
pub use symmetry::{canonical_sorted, certified_canonical, SymmetryRefusal};
pub use tables::{
    render_scale, scale_cell, scale_disagreements, scale_grid, table1, table2, table_fixed,
    Reduction, ScaleCell, ScaleLimits, ScaleOutcome, TableReport,
};
