//! The original paper's *liveness* guarantee, checked as a genuine
//! leads-to property.
//!
//! GM98 (p. 2): *"if one or more processes ever choose to become
//! inactive, then all processes in the network eventually become
//! inactive."*
//!
//! Requirement R1 is the *bounded-time* refinement of this statement (and
//! is violated by the original protocols because the claimed bound is
//! wrong); the **unbounded** eventuality itself holds for every variant,
//! original or fixed — the halving chain always bottoms out. This module
//! checks it with the [`mck::liveness`] lasso search:
//!
//! * **trigger** — some process in the network crashed: the coordinator,
//!   or a participant that had joined and not left (a crash of a process
//!   that never joined, or that left first, is outside the network and
//!   obligates nobody);
//! * **goal** — every network member is inactive: the coordinator, and
//!   every participant that has not left.
//!
//! Both predicates are absorbing (crashes, inactivations, joins and
//! leaves are all permanent), as the lasso checker requires.

use hb_core::{FixLevel, Params, Status, Variant};
use mck::liveness::{check_leads_to, LeadsToOutcome};

use crate::model::{HbModel, HbState};

/// The trigger: a network member crashed.
pub fn network_crash(s: &HbState) -> bool {
    s.coord.status == Status::Crashed
        || s.resps
            .iter()
            .any(|r| r.status == Status::Crashed && r.joined && !r.left)
}

/// The goal: every network member is inactive (left participants are out
/// of the network and may stay alive).
pub fn network_down(s: &HbState) -> bool {
    s.coord.status.is_inactive() && s.resps.iter().all(|r| r.status.is_inactive() || r.left)
}

/// Check GM98's eventual-inactivation guarantee on one configuration.
///
/// All fault actions (crash, loss) stay enabled: the property must hold
/// under arbitrary additional faults.
pub fn check_eventual_inactivation(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    n: usize,
    max_states: usize,
) -> LeadsToOutcome<HbModel> {
    let model = HbModel::new(variant, params, n, fix);
    check_leads_to(&model, network_crash, network_down, max_states)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: usize = 4_000_000;

    #[test]
    fn eventual_inactivation_holds_for_originals() {
        // The liveness core of GM98 is sound even where the *timed*
        // requirement R1 fails: eventually everything dies.
        for variant in Variant::ALL {
            let params = Params::new(1, 4).unwrap();
            let out = check_eventual_inactivation(variant, params, FixLevel::Original, 1, CAP);
            assert!(out.holds(), "{variant}: {:?}", out.stem().map(|p| p.len()));
        }
    }

    #[test]
    fn eventual_inactivation_holds_for_fixed() {
        for variant in Variant::ALL {
            let params = Params::new(2, 4).unwrap();
            let out = check_eventual_inactivation(variant, params, FixLevel::Full, 1, CAP);
            assert!(out.holds(), "{variant}");
        }
    }

    #[test]
    fn eventual_inactivation_holds_at_tmin_eq_tmax() {
        // Even in the race-prone tmin = tmax regime the *eventual*
        // guarantee survives (the races only make inactivation spurious,
        // never avoidable).
        let params = Params::new(3, 3).unwrap();
        let out = check_eventual_inactivation(Variant::Binary, params, FixLevel::Original, 1, CAP);
        assert!(out.holds());
    }

    #[test]
    fn a_broken_variant_would_be_caught() {
        // Sanity for the harness: against an *unreachable* goal the lasso
        // search must produce a violation (the protocol runs forever).
        let params = Params::new(2, 4).unwrap();
        let model = HbModel::new(Variant::Binary, params, 1, FixLevel::Original);
        let out = check_leads_to(&model, network_crash, |_| false, CAP);
        assert!(!out.holds());
    }

    #[test]
    fn dynamic_leave_then_crash_obligates_nobody() {
        // A participant that left and then "crashed" is outside the
        // network: the trigger must not fire for it, so the system may
        // legitimately run forever.
        let params = Params::new(2, 4).unwrap();
        let out = check_eventual_inactivation(Variant::Dynamic, params, FixLevel::Full, 1, CAP);
        assert!(out.holds());
    }
}
