//! The R1–R3 requirement monitors as *data*, plus a reference replay.
//!
//! The model checker evaluates the requirements as ghost monitors woven
//! into [`HbModel`](crate::model::HbModel): R1 is a per-participant
//! watchdog (armed on an admitted heartbeat, error when the silence
//! exceeds the inactivation bound while the coordinator is still active),
//! R2/R3 are reachability properties under a fault-free premise. This
//! module exposes those monitors declaratively — [`MonitorDef`] describes
//! each requirement automaton in terms of the PR 4 `describe` IR
//! vocabulary ([`Trigger`]/[`Atom`] guards), so a runtime-verification
//! layer (`hb-monitor`) can *compile* them into streaming checkers instead
//! of hand-fusing requirement logic into the runtimes.
//!
//! [`reference_verdicts`] is the executable semantics of the definitions:
//! a tick-stepped replay over a recorded event stream that mirrors the
//! model's ghost monitors action for action (ghost counters advance on the
//! tick *before* the tick's events are processed, exactly like the model's
//! `Tick` interleaving). The streaming checkers in `hb-monitor` implement
//! the same semantics with deadline arithmetic instead of per-tick
//! counters; `tests/monitor_agreement.rs` proves the two agree on random
//! fault traces.
//!
//! One deliberate strengthening relative to the *naive* coordinator: the
//! monitor ignores a heartbeat iff the participant's slot is latched
//! (`left`) **or** the beat's epoch is behind the registered bar — at
//! every fix level. At `FixLevel::Full` this coincides with the model's
//! epoch rule (the latch is never set under rejoin), and on epoch-free
//! traces it coincides with the latch rule; on epoch-tagged traces under a
//! naive fix it is strictly stronger than what the naive coordinator
//! implements, which is the point — the monitor judges the implementation
//! against the *spec*, making the stale-beat-admit R1 hazard visible as a
//! violation instead of silently extending the deadline.

use hb_core::coordinator::{CoordSpec, CoordState};
use hb_core::describe::{satisfiable, Atom, Trigger};
use hb_core::serial::serial_lt;
use hb_core::trace::Event;
use hb_core::{FixLevel, Params, Pid, Variant};

use crate::requirements::{r1_bound, Requirement};

/// One requirement monitor, described declaratively.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MonitorDef {
    /// The requirement this monitor checks.
    pub requirement: Requirement,
    /// The timing bound the monitor enforces (`None` for the untimed
    /// requirements R2/R3). For R1 this is the claimed `2·tmax` bound
    /// below `FixLevel::CorrectedBounds` and the corrected per-variant
    /// bound at or above it — the same [`r1_bound`] the model checks.
    pub bound: Option<u32>,
    /// Whether the per-participant watchdog starts armed (non-join
    /// variants: every participant is expected to beat from t = 0).
    pub arm_at_start: bool,
    /// Whether the verdict is gated on a fault-free trace (R2/R3: the
    /// premise "no crashes and no loss" is over the *whole* run).
    pub fault_premise: bool,
    /// What feeds the automaton, in the `describe` IR vocabulary.
    pub trigger: Trigger,
    /// Guard (IR atoms) under which the triggering event *resets* the
    /// monitor rather than advancing it towards a violation.
    pub reset_guard: Vec<Atom>,
}

impl MonitorDef {
    /// One-line human-readable description of the automaton.
    pub fn describe(&self) -> String {
        match self.requirement {
            Requirement::R1 => format!(
                "watchdog per participant: armed on an admitted heartbeat \
                 (guard {:?}), violation when silence exceeds {} ticks while \
                 p[0] is active; O(n) counters",
                self.reset_guard,
                self.bound.unwrap_or(0),
            ),
            Requirement::R2 => "latch: a participant nv-inactivation in a fault-free run \
                 is a violation; O(n) status bits"
                .to_string(),
            Requirement::R3 => "latch: a coordinator nv-inactivation in a fault-free run \
                 with every participant active is a violation; O(n) status bits"
                .to_string(),
        }
    }
}

/// The three requirement monitors for one protocol cell, as data.
///
/// This is the compilation *source* for the streaming checkers: the R1
/// bound, arming discipline and reset guard all come from here, so the
/// runtime monitors cannot drift from what the model checker verifies.
pub fn monitor_defs(variant: Variant, params: Params, fix: FixLevel) -> Vec<MonitorDef> {
    let reset_guard = vec![Atom::Active, Atom::MessageFlag(true), Atom::EpochFresh];
    debug_assert!(satisfiable(&reset_guard));
    vec![
        MonitorDef {
            requirement: Requirement::R1,
            bound: Some(r1_bound(variant, params, fix)),
            arm_at_start: !variant.has_join_phase(),
            fault_premise: false,
            trigger: Trigger::Receive,
            reset_guard,
        },
        MonitorDef {
            requirement: Requirement::R2,
            bound: None,
            arm_at_start: true,
            fault_premise: true,
            trigger: Trigger::Internal,
            reset_guard: vec![],
        },
        MonitorDef {
            requirement: Requirement::R3,
            bound: None,
            arm_at_start: true,
            fault_premise: true,
            trigger: Trigger::Internal,
            reset_guard: vec![],
        },
    ]
}

/// The first violation of one requirement: which process broke it, when,
/// and against which bound (0 for the untimed R2/R3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// The violated requirement.
    pub requirement: Requirement,
    /// The process the violation is attributed to: the silent participant
    /// for R1, the inactivated process for R2/R3.
    pub pid: Pid,
    /// The tick at which the requirement first failed.
    pub at: u64,
    /// The offending bound (R1 only; 0 otherwise).
    pub bound: u32,
}

/// Verdicts of the reference replay: first violation per requirement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReferenceVerdicts {
    /// First R1 violation, if any.
    pub r1: Option<Violation>,
    /// First R2 violation, if any.
    pub r2: Option<Violation>,
    /// First R3 violation, if any.
    pub r3: Option<Violation>,
}

impl ReferenceVerdicts {
    /// Whether no monitor fired.
    pub fn clean(&self) -> bool {
        self.r1.is_none() && self.r2.is_none() && self.r3.is_none()
    }
}

/// Replay a recorded event stream through the model-side ghost monitors.
///
/// `events` must be sorted by timestamp (any single-source log already
/// is; merge per-node live logs first). Ticks `0..=horizon` are stepped
/// explicitly: at each tick the armed R1 counters advance and are checked
/// *before* the tick's events apply, matching the model's rule that a
/// `Tick` action may precede the same-instant deliveries — a violation
/// whose deadline coincides with a rescuing beat (or with the
/// coordinator's own inactivation) is still a violation, because the
/// model reaches the error state on at least one interleaving.
///
/// The R2/R3 fault-free premise is evaluated over the whole trace, like
/// the model's `allow_loss(false).allow_crashes(false)` restriction: a
/// loss *after* an inactivation still discharges the premise.
pub fn reference_verdicts(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    n: usize,
    events: &[Event],
    horizon: u64,
) -> ReferenceVerdicts {
    let bound = r1_bound(variant, params, fix);
    let cap = bound + 1;
    let spec = CoordSpec::new(variant, params, n, fix);
    let mut mirror: CoordState = spec.init_state();
    let mut armed = vec![!variant.has_join_phase(); n];
    let mut since = vec![0u32; n];
    let mut coord_active = true;
    let mut resp_active = vec![true; n];
    let mut any_fault = false;
    let (mut r1, mut r2, mut r3) = (None, None, None);

    let mut idx = 0;
    for t in 0..=horizon {
        if t > 0 {
            for i in 0..n {
                if armed[i] {
                    since[i] = (since[i] + 1).min(cap);
                }
            }
            if coord_active && r1.is_none() {
                if let Some(i) = (0..n).find(|&i| armed[i] && since[i] > bound) {
                    r1 = Some(Violation {
                        requirement: Requirement::R1,
                        pid: i + 1,
                        at: t,
                        bound,
                    });
                }
            }
        }
        while idx < events.len() && events[idx].at() == t {
            match events[idx] {
                Event::Deliver {
                    from, to: 0, hb, ..
                } if (1..=n).contains(&from) => {
                    let i = from - 1;
                    let ignored = mirror.left[i] || serial_lt(hb.epoch, mirror.min_epoch[i]);
                    if !hb.flag {
                        armed[i] = false;
                    } else if !ignored {
                        armed[i] = true;
                        since[i] = 0;
                    }
                    spec.on_heartbeat(&mut mirror, from, hb);
                }
                Event::Crash { pid: 0, .. } => {
                    coord_active = false;
                    any_fault = true;
                }
                Event::Crash { pid, .. } => {
                    any_fault = true;
                    resp_active[pid - 1] = false;
                }
                Event::NvInactivate { pid: 0, at } => {
                    if coord_active && r3.is_none() && resp_active.iter().all(|&a| a) {
                        r3 = Some(Violation {
                            requirement: Requirement::R3,
                            pid: 0,
                            at,
                            bound: 0,
                        });
                    }
                    coord_active = false;
                }
                Event::NvInactivate { pid, at } => {
                    if r2.is_none() {
                        r2 = Some(Violation {
                            requirement: Requirement::R2,
                            pid,
                            at,
                            bound: 0,
                        });
                    }
                    resp_active[pid - 1] = false;
                }
                Event::Revive { pid, .. } => resp_active[pid - 1] = true,
                Event::Lose { .. } => any_fault = true,
                _ => {}
            }
            idx += 1;
        }
    }
    ReferenceVerdicts {
        r1,
        r2: if any_fault { None } else { r2 },
        r3: if any_fault { None } else { r3 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Heartbeat;

    const P: (u32, u32) = (2, 8);

    fn params() -> Params {
        Params::new(P.0, P.1).unwrap()
    }

    #[test]
    fn defs_carry_the_model_checked_bounds() {
        let naive = monitor_defs(Variant::Binary, params(), FixLevel::Original);
        assert_eq!(naive[0].bound, Some(params().p0_bound_claimed()));
        assert!(naive[0].arm_at_start);
        let fixed = monitor_defs(Variant::Binary, params(), FixLevel::Full);
        assert_eq!(
            fixed[0].bound,
            Some(params().p0_bound_corrected(Variant::Binary))
        );
        let join = monitor_defs(Variant::Expanding, params(), FixLevel::Full);
        assert!(!join[0].arm_at_start, "join variants arm on first beat");
        for def in &naive {
            assert!(satisfiable(&def.reset_guard));
            assert!(!def.describe().is_empty());
        }
        assert!(!naive[0].fault_premise && naive[1].fault_premise && naive[2].fault_premise);
    }

    #[test]
    fn silence_past_the_bound_fires_r1_at_the_deadline() {
        // One beat admitted at t = 5, then silence. The counter resets at
        // 5, so the first tick with since > bound is 5 + bound + 1.
        let bound = r1_bound(Variant::Binary, params(), FixLevel::Original);
        let events = [Event::Deliver {
            at: 5,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        }];
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &events,
            200,
        );
        let r1 = v.r1.expect("must fire");
        assert_eq!(r1.at, 5 + u64::from(bound) + 1);
        assert_eq!((r1.pid, r1.bound), (1, bound));
    }

    #[test]
    fn a_beat_on_the_deadline_tick_does_not_rescue() {
        // The model may schedule the tick (reaching since = bound + 1)
        // before the same-instant delivery: still a violation.
        let bound = u64::from(r1_bound(Variant::Binary, params(), FixLevel::Original));
        let beat = |at| Event::Deliver {
            at,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(),
        };
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5), beat(5 + bound + 1)],
            200,
        );
        assert_eq!(v.r1.expect("tick-first interleaving").at, 5 + bound + 1);
        // One tick earlier the beat wins: since only reaches the bound.
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[beat(5), beat(5 + bound)],
            5 + bound, // horizon before the next deadline
        );
        assert!(v.r1.is_none());
    }

    #[test]
    fn coordinator_death_stops_the_r1_clock() {
        // p0 inactivates *before* the deadline: no violation (R1 only
        // constrains an active coordinator).
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[
                Event::Deliver {
                    at: 5,
                    from: 1,
                    to: 0,
                    hb: Heartbeat::plain(),
                },
                Event::NvInactivate { at: 10, pid: 0 },
            ],
            200,
        );
        assert!(v.r1.is_none());
    }

    #[test]
    fn r2_r3_need_a_fault_free_trace() {
        let nv = Event::NvInactivate { at: 50, pid: 1 };
        let v = reference_verdicts(Variant::Binary, params(), FixLevel::Original, 1, &[nv], 60);
        assert_eq!(v.r2.expect("fault-free nv is a violation").pid, 1);
        // A loss anywhere in the trace — even later — voids the premise.
        let lose = Event::Lose {
            at: 55,
            from: 0,
            to: 1,
        };
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[nv, lose],
            60,
        );
        assert!(v.r2.is_none());
        // R3: coordinator inactivation with every participant active
        // (before the R1 deadline, so only R3 fires).
        let nv0 = Event::NvInactivate { at: 10, pid: 0 };
        let v = reference_verdicts(Variant::Binary, params(), FixLevel::Original, 1, &[nv0], 60);
        assert_eq!(v.r3.expect("R3 fires").pid, 0);
        assert!(v.r1.is_none(), "monitor stops with the coordinator");
    }

    #[test]
    fn stale_beats_do_not_reset_the_monitor() {
        // Register incarnation 1, then replay an epoch-0 leftover: the
        // monitor must keep counting from the *fresh* beat. Naive fix:
        // the coordinator itself would admit the leftover.
        let bound = u64::from(r1_bound(Variant::Binary, params(), FixLevel::Original));
        let fresh = Event::Deliver {
            at: 5,
            from: 1,
            to: 0,
            hb: Heartbeat::plain().with_epoch(1),
        };
        let stale = Event::Deliver {
            at: 9,
            from: 1,
            to: 0,
            hb: Heartbeat::plain(), // epoch 0 < bar 1
        };
        let v = reference_verdicts(
            Variant::Binary,
            params(),
            FixLevel::Original,
            1,
            &[fresh, stale],
            200,
        );
        assert_eq!(v.r1.expect("stale beat must not rescue").at, 5 + bound + 1);
    }
}
