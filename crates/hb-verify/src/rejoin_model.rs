//! Verification model for the rejoinable dynamic protocol (the papers'
//! future-work extension, `hb_core::rejoin`).
//!
//! Composition mirrors [`crate::model::HbModel`] — digital clocks,
//! round-trip delay budgets, receive-priority (the extension builds on
//! the *fixed* base protocol) — with two new ingredients:
//!
//! * participants may (re)start a join phase whenever they are out of
//!   the protocol ([`RejoinAction::StartJoin`]), up to a configurable
//!   incarnation cap (finiteness);
//! * messages carry the incarnation number
//!   ([`hb_core::rejoin::EpochBeat`]).
//!
//! The headline results (`rejoin_results` and the integration tests):
//! with **naive rejoin** the coordinator can be starved into non-
//! voluntary inactivation *without any fault* — a stale join beat from a
//! dead incarnation re-enrols a departed participant; with **epoch
//! filtering** the fault-free model satisfies both safety properties.

use hb_core::rejoin::{
    EpochBeat, RejoinCoordReaction, RejoinCoordSpec, RejoinCoordState, RejoinRespSpec,
    RejoinRespState, RejoinTimeoutOutcome,
};
use hb_core::{Params, Pid, Status};
use mck::Model;

/// An in-flight epoch-tagged message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RejoinMsg {
    /// Sender (`0` = coordinator).
    pub src: Pid,
    /// Destination.
    pub dst: Pid,
    /// Payload.
    pub beat: EpochBeat,
    /// Remaining delay budget.
    pub budget: u32,
}

/// Global state of the rejoin composition.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RejoinState {
    /// Coordinator.
    pub coord: RejoinCoordState,
    /// Participants.
    pub resps: Vec<RejoinRespState>,
    /// In-flight messages (sorted canonical form).
    pub channel: Vec<RejoinMsg>,
}

/// Transitions of the rejoin composition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RejoinAction {
    /// Time passes everywhere.
    Tick,
    /// Coordinator round timeout.
    CoordTimeout,
    /// Participant watchdog (non-voluntary inactivation).
    Watchdog(Pid),
    /// Participant starts a (re)join phase.
    StartJoin(Pid),
    /// Participant sends a join beat.
    JoinSend(Pid),
    /// Deliver a message; if `leave`, an enrolled participant replies
    /// with a leave beat.
    Deliver {
        /// The message.
        msg: RejoinMsg,
        /// Reply with a leave.
        leave: bool,
    },
}

/// The composed fault-free rejoin model.
#[derive(Clone, Debug)]
pub struct RejoinModel {
    coord: RejoinCoordSpec,
    resp: RejoinRespSpec,
    n: usize,
}

impl RejoinModel {
    /// A model with `n` participants, each allowed `max_epoch`
    /// incarnations; `epochs` selects naive vs epoch-tagged rejoin.
    pub fn new(params: Params, n: usize, epochs: bool, max_epoch: u8) -> Self {
        Self {
            coord: RejoinCoordSpec::new(params, n, epochs),
            resp: RejoinRespSpec::new(params, epochs, max_epoch),
            n,
        }
    }

    /// The timing parameters.
    pub fn params(&self) -> Params {
        self.coord.params()
    }

    fn any_urgent_delivery(&self, s: &RejoinState) -> bool {
        s.channel.iter().any(|m| m.budget == 0)
    }

    /// Whether time may pass (no urgent event).
    pub fn may_tick(&self, s: &RejoinState) -> bool {
        self.coord.may_tick(&s.coord)
            && s.resps.iter().all(|r| self.resp.may_tick(r))
            && s.channel.iter().all(|m| m.budget > 0)
    }

    fn push(channel: &mut Vec<RejoinMsg>, m: RejoinMsg) {
        channel.push(m);
        channel.sort_unstable();
    }

    fn remove(channel: &mut Vec<RejoinMsg>, m: &RejoinMsg) -> bool {
        if let Some(pos) = channel.iter().position(|x| x == m) {
            channel.remove(pos);
            true
        } else {
            false
        }
    }

    /// Safety predicate 1 (the fault-free R2 analogue): no participant is
    /// ever NV-inactivated.
    pub fn some_participant_nv(s: &RejoinState) -> bool {
        s.resps.iter().any(|r| r.status == Status::NvInactive)
    }

    /// Safety predicate 2 (the fault-free R3 analogue): the coordinator
    /// is NV-inactivated while every participant is healthy.
    pub fn coordinator_nv(s: &RejoinState) -> bool {
        s.coord.status == Status::NvInactive && s.resps.iter().all(|r| r.status.is_active())
    }
}

impl Model for RejoinModel {
    type State = RejoinState;
    type Action = RejoinAction;

    fn initial_states(&self) -> Vec<RejoinState> {
        vec![RejoinState {
            coord: self.coord.init_state(),
            resps: (0..self.n).map(|_| self.resp.init_state()).collect(),
            channel: Vec::new(),
        }]
    }

    fn actions(&self, s: &RejoinState, out: &mut Vec<RejoinAction>) {
        // The extension builds on the fixed base protocol: receive
        // priority is always on.
        let defer_timeouts = self.any_urgent_delivery(s);
        if self.coord.timeout_due(&s.coord) && !defer_timeouts {
            out.push(RejoinAction::CoordTimeout);
        }
        for (i, r) in s.resps.iter().enumerate() {
            let pid = i + 1;
            if self.resp.watchdog_due(r) && !defer_timeouts {
                out.push(RejoinAction::Watchdog(pid));
            }
            if self.resp.join_send_due(r) {
                out.push(RejoinAction::JoinSend(pid));
            }
            if self.resp.may_join(r) {
                out.push(RejoinAction::StartJoin(pid));
            }
        }
        let mut seen: Option<&RejoinMsg> = None;
        for m in &s.channel {
            if seen == Some(m) {
                continue;
            }
            seen = Some(m);
            out.push(RejoinAction::Deliver {
                msg: *m,
                leave: false,
            });
            if m.dst != 0 && m.beat.flag {
                out.push(RejoinAction::Deliver {
                    msg: *m,
                    leave: true,
                });
            }
        }
        if self.may_tick(s) {
            out.push(RejoinAction::Tick);
        }
    }

    fn next_state(&self, s: &RejoinState, action: &RejoinAction) -> Option<RejoinState> {
        let mut next = s.clone();
        match action {
            RejoinAction::Tick => {
                if !self.may_tick(s) {
                    return None;
                }
                self.coord.tick(&mut next.coord);
                for r in &mut next.resps {
                    self.resp.tick(r);
                }
                for m in &mut next.channel {
                    m.budget -= 1;
                }
            }
            RejoinAction::CoordTimeout => {
                if !self.coord.timeout_due(&s.coord) {
                    return None;
                }
                match self.coord.on_timeout(&mut next.coord) {
                    RejoinTimeoutOutcome::Inactivated => {}
                    RejoinTimeoutOutcome::Beat(beats) => {
                        for (pid, beat) in beats {
                            Self::push(
                                &mut next.channel,
                                RejoinMsg {
                                    src: 0,
                                    dst: pid,
                                    beat,
                                    budget: self.params().tmin(),
                                },
                            );
                        }
                    }
                }
            }
            RejoinAction::Watchdog(pid) => {
                let r = &mut next.resps[pid - 1];
                if !self.resp.watchdog_due(r) {
                    return None;
                }
                self.resp.on_watchdog(r);
            }
            RejoinAction::StartJoin(pid) => {
                let r = &mut next.resps[pid - 1];
                if !self.resp.may_join(r) {
                    return None;
                }
                self.resp.start_join(r);
            }
            RejoinAction::JoinSend(pid) => {
                let r = &mut next.resps[pid - 1];
                if !self.resp.join_send_due(r) {
                    return None;
                }
                let beat = self.resp.on_join_send(r);
                Self::push(
                    &mut next.channel,
                    RejoinMsg {
                        src: *pid,
                        dst: 0,
                        beat,
                        budget: self.params().tmin(),
                    },
                );
            }
            RejoinAction::Deliver { msg, leave } => {
                if !Self::remove(&mut next.channel, msg) {
                    return None;
                }
                if msg.dst == 0 {
                    match self.coord.on_heartbeat(&mut next.coord, msg.src, msg.beat) {
                        RejoinCoordReaction::None => {}
                        RejoinCoordReaction::LeaveAck(pid, ack) => {
                            Self::push(
                                &mut next.channel,
                                RejoinMsg {
                                    src: 0,
                                    dst: pid,
                                    beat: ack,
                                    budget: self.params().tmin(),
                                },
                            );
                        }
                    }
                } else {
                    let r = &mut next.resps[msg.dst - 1];
                    if let Some(reply) = self.resp.on_beat(r, msg.beat, *leave) {
                        Self::push(
                            &mut next.channel,
                            RejoinMsg {
                                src: msg.dst,
                                dst: 0,
                                beat: reply,
                                budget: msg.budget,
                            },
                        );
                    }
                }
            }
        }
        Some(next)
    }

    fn format_action(&self, a: &RejoinAction) -> String {
        match a {
            RejoinAction::Tick => "tick".into(),
            RejoinAction::CoordTimeout => "timeout at p[0]".into(),
            RejoinAction::Watchdog(p) => format!("nv-inactivate p[{p}]"),
            RejoinAction::StartJoin(p) => format!("p[{p}] starts (re)join"),
            RejoinAction::JoinSend(p) => format!("p[{p}] sends join beat"),
            RejoinAction::Deliver { msg, leave } => format!(
                "deliver e{}{} p[{}]->p[{}] (budget {}){}",
                msg.beat.epoch,
                if msg.beat.flag { "" } else { "(leave)" },
                msg.src,
                msg.dst,
                msg.budget,
                if *leave { " (replies leave)" } else { "" },
            ),
        }
    }
}

/// Verdicts for the two rejoin flavours on both safety predicates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinResults {
    /// Naive rejoin: no participant ever NV-inactivated?
    pub naive_participant_safe: bool,
    /// Naive rejoin: coordinator never NV-inactivated with healthy
    /// participants?
    pub naive_coordinator_safe: bool,
    /// Epoch-tagged rejoin: participant safety.
    pub epoch_participant_safe: bool,
    /// Epoch-tagged rejoin: coordinator safety.
    pub epoch_coordinator_safe: bool,
}

/// Check all four cells exhaustively (fault-free, `n = 1`,
/// two incarnations).
pub fn rejoin_results(params: Params) -> RejoinResults {
    use mck::Checker;
    let run = |epochs: bool, pred: fn(&RejoinState) -> bool| {
        let model = RejoinModel::new(params, 1, epochs, 2);
        Checker::new(&model).check_invariant(|s| !pred(s)).holds()
    };
    RejoinResults {
        naive_participant_safe: run(false, RejoinModel::some_participant_nv),
        naive_coordinator_safe: run(false, RejoinModel::coordinator_nv),
        epoch_participant_safe: run(true, RejoinModel::some_participant_nv),
        epoch_coordinator_safe: run(true, RejoinModel::coordinator_nv),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mck::Checker;

    fn params() -> Params {
        Params::new(2, 4).unwrap()
    }

    #[test]
    fn naive_rejoin_kills_the_coordinator_without_faults() {
        let model = RejoinModel::new(params(), 1, false, 2);
        let ce = Checker::new(&model).find_state(RejoinModel::coordinator_nv);
        let path = ce.expect("the stale-join race must be reachable");
        // The witness must contain a leave followed by a straggler join
        // delivery — i.e. a genuine rejoin artefact, not a plain timeout.
        let labels: Vec<String> = path
            .actions()
            .iter()
            .map(|a| model.format_action(a))
            .collect();
        assert!(
            labels.iter().any(|l| l.contains("replies leave")),
            "{labels:?}"
        );
    }

    #[test]
    fn epoch_rejoin_is_coordinator_safe() {
        let model = RejoinModel::new(params(), 1, true, 2);
        let out = Checker::new(&model).check_invariant(|s| !RejoinModel::coordinator_nv(s));
        assert!(out.holds(), "{:?}", out.stats());
    }

    #[test]
    fn epoch_rejoin_is_participant_safe() {
        let model = RejoinModel::new(params(), 1, true, 2);
        let out = Checker::new(&model).check_invariant(|s| !RejoinModel::some_participant_nv(s));
        assert!(out.holds(), "{:?}", out.stats());
    }

    #[test]
    fn full_result_grid() {
        let r = rejoin_results(params());
        assert!(!r.naive_coordinator_safe, "naive rejoin must be broken");
        assert!(r.epoch_participant_safe);
        assert!(r.epoch_coordinator_safe);
    }

    #[test]
    fn single_incarnation_epoch_model_matches_the_fixed_dynamic_protocol() {
        // With max_epoch = 1, the epoch flavour reduces to the fixed
        // dynamic protocol (leave raises the bar, like that protocol's
        // "never rejoin" latch) and is safe.
        let model = RejoinModel::new(params(), 1, true, 1);
        let out = Checker::new(&model).check_invariant(|s| {
            !RejoinModel::coordinator_nv(s) && !RejoinModel::some_participant_nv(s)
        });
        assert!(out.holds(), "{:?}", out.stats());
    }

    #[test]
    fn naive_model_is_broken_even_without_rejoining() {
        // An instructive corollary: dropping the dynamic protocol's
        // "never rejoin" latch is *already* unsafe with a single
        // incarnation — a straggler join resend delivered after the leave
        // re-enrols the departed participant. The latch (or its
        // generalization, epochs) is load-bearing, not merely a
        // restriction.
        let model = RejoinModel::new(params(), 1, false, 1);
        let ce = Checker::new(&model).find_state(RejoinModel::coordinator_nv);
        assert!(ce.is_some(), "the straggler-join race must be reachable");
    }

    #[test]
    fn epoch_rejoin_safe_even_at_tmin_eq_tmax() {
        // The regime that exposed the phase-dependence of the §6.2 join
        // bound: at tmin = tmax an arbitrary-phase rejoin needs
        // tmax + 3*tmin, not 2*tmax + tmin.
        let p = Params::new(2, 2).unwrap();
        let model = RejoinModel::new(p, 1, true, 2);
        let out = Checker::new(&model).check_invariant(|s| {
            !RejoinModel::some_participant_nv(s) && !RejoinModel::coordinator_nv(s)
        });
        assert!(out.holds(), "{:?}", out.stats());
    }

    #[test]
    fn rejoin_watchdog_bound_is_saturated() {
        // The arbitrary-phase bound is tight: some reachable state has the
        // joining participant waiting exactly the bound (one unit less and
        // the watchdog would fire spuriously).
        let p = Params::new(2, 2).unwrap();
        let model = RejoinModel::new(p, 1, true, 2);
        let bound = hb_core::rejoin::RejoinRespSpec::new(p, true, 2).watchdog_bound();
        let hit =
            Checker::new(&model).find_state(|s| s.resps.iter().any(|r| r.waiting + 1 >= bound));
        assert!(
            hit.is_some(),
            "bound {bound} is never approached: too loose"
        );
    }

    #[test]
    fn model_is_finite_and_deadlock_free() {
        let model = RejoinModel::new(params(), 1, true, 2);
        let graph = mck::graph::StateGraph::explore(&model, 2_000_000);
        assert!(!graph.truncated, "blow-up: {} states", graph.states.len());
        assert_eq!(graph.stats().deadlocks, 0);
    }
}
