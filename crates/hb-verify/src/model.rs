//! The composed timed transition system: coordinator + participants +
//! lossy bounded-delay channels + ghost monitors.
//!
//! # Semantics (see DESIGN.md for the full rationale)
//!
//! * **Digital clocks.** A single [`HbAction::Tick`] advances every clock
//!   by one unit. `Tick` is disabled while any *urgent* event is pending:
//!   a due coordinator timeout, a due participant watchdog or join-send, or
//!   an in-flight message whose delay budget is exhausted.
//! * **Round-trip budget.** `tmin` bounds the `p[0] → p[i] → p[0]` round
//!   trip: an outbound beat starts with budget `tmin`; the instant reply
//!   inherits whatever budget is left at delivery. Join beats and leave
//!   acks are one-way messages with a fresh `tmin` budget.
//! * **Interleaving.** Simultaneous events interleave in every order —
//!   this is what makes the paper's Figure 11/12/13 races reachable. The
//!   §6.1 *receive-priority* fix disables due timeouts while any message
//!   is urgent (budget 0), forcing same-instant deliveries to win ties.
//! * **Faults.** Active processes may crash at any time (monotone, no
//!   recovery); the channel may lose any in-flight message, latching the
//!   ghost `lost` flag. Both fault classes can be disabled to encode the
//!   premises of requirements R2/R3.
//! * **R1 monitor.** A ghost saturating counter per participant tracks the
//!   time since `p[0]` last received a beat from that participant. It arms
//!   on the first such delivery (participants of non-join variants arm at
//!   start) and disarms when `p[0]` receives a leave beat. The error
//!   predicate is `armed ∧ p[0] active ∧ counter > bound`.

use hb_core::coordinator::{CoordReaction, CoordSpec, CoordState, TimeoutOutcome};
use hb_core::responder::{LeaveDecision, RespSpec, RespState};
use hb_core::{FixLevel, Heartbeat, Params, Pid, Variant};
use mck::Model;

/// An in-flight heartbeat message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Msg {
    /// Sender pid (`0` = coordinator).
    pub src: Pid,
    /// Destination pid.
    pub dst: Pid,
    /// The heartbeat carried.
    pub hb: Heartbeat,
    /// Remaining delay budget; delivery is urgent at `0`.
    pub budget: u32,
}

/// A global configuration of the composed system.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HbState {
    /// Coordinator state.
    pub coord: CoordState,
    /// Participant states (index `i` is pid `i + 1`).
    pub resps: Vec<RespState>,
    /// In-flight messages, kept sorted (canonical form for hashing).
    pub channel: Vec<Msg>,
    /// Ghost: has any message ever been lost?
    pub lost: bool,
    /// Ghost R1 monitors, one per participant (empty when monitoring is
    /// off).
    pub monitors: Vec<MonitorState>,
}

/// Ghost R1 watchdog for one participant (the paper's Figure 9 monitor
/// automaton).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonitorState {
    /// Whether `p[0]` currently expects beats from this participant.
    pub armed: bool,
    /// Time since the last beat from this participant was delivered to
    /// `p[0]` (saturating at `bound + 1`).
    pub since_last: u32,
}

/// A transition of the composed system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HbAction {
    /// One unit of time passes everywhere.
    Tick,
    /// The coordinator's round timeout fires.
    CoordTimeout,
    /// Participant `pid`'s watchdog fires (non-voluntary inactivation).
    RespWatchdog(Pid),
    /// Participant `pid` sends a join heartbeat.
    JoinSend(Pid),
    /// The channel delivers `msg`; a dynamic-protocol participant replies
    /// with a leave beat iff `leave`.
    Deliver {
        /// The message being delivered.
        msg: Msg,
        /// Dynamic protocol: reply with a leave beat.
        leave: bool,
    },
    /// The channel loses `msg`.
    Lose(Msg),
    /// Process `pid` crashes (voluntary inactivation).
    Crash(Pid),
}

/// The composed model. Construct with [`HbModel::new`] and configure fault
/// switches and monitoring before checking.
#[derive(Clone, Debug)]
pub struct HbModel {
    coord: CoordSpec,
    resp: RespSpec,
    n: usize,
    allow_loss: bool,
    crashable: Vec<bool>,
    allow_leave: bool,
    monitor_bound: Option<u32>,
    stagger: bool,
}

impl HbModel {
    /// A model of `variant` with `n` participants at the given fix level,
    /// with all faults enabled, leaves enabled (dynamic only) and no R1
    /// monitor.
    pub fn new(variant: Variant, params: Params, n: usize, fix: FixLevel) -> Self {
        Self {
            coord: CoordSpec::new(variant, params, n, fix),
            resp: RespSpec::new(variant, params, fix),
            n,
            allow_loss: true,
            crashable: vec![true; n + 1],
            allow_leave: variant.supports_leave(),
            monitor_bound: None,
            stagger: false,
        }
    }

    /// Stagger the participants' initial clocks: participant `i` starts
    /// with its watchdog (or join timer) advanced by `i` modulo the
    /// firing bound, so the group does not move in lockstep. Staggering
    /// breaks the *initial-state* symmetry only — the transition
    /// relation still treats participants interchangeably, which is all
    /// the quotient construction needs (canonicalization is an
    /// automorphism of the transition system regardless of where the
    /// run starts).
    pub fn stagger_starts(mut self, yes: bool) -> Self {
        self.stagger = yes;
        self
    }

    /// Enable/disable message loss.
    pub fn allow_loss(mut self, yes: bool) -> Self {
        self.allow_loss = yes;
        self
    }

    /// Enable/disable crashes for every process at once.
    pub fn allow_crashes(mut self, yes: bool) -> Self {
        self.crashable = vec![yes; self.n + 1];
        self
    }

    /// Enable/disable the crash of one process.
    pub fn crashable(mut self, pid: Pid, yes: bool) -> Self {
        self.crashable[pid] = yes;
        self
    }

    /// Enable/disable voluntary leaves (meaningful for the dynamic variant
    /// only).
    pub fn allow_leave(mut self, yes: bool) -> Self {
        self.allow_leave = yes && self.coord.variant().supports_leave();
        self
    }

    /// Attach R1 ghost monitors with the given bound.
    pub fn monitor_bound(mut self, bound: u32) -> Self {
        self.monitor_bound = Some(bound);
        self
    }

    /// The coordinator spec.
    pub fn coord_spec(&self) -> &CoordSpec {
        &self.coord
    }

    /// The participant spec.
    pub fn resp_spec(&self) -> &RespSpec {
        &self.resp
    }

    /// Number of participants.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The R1 monitor bound, if monitoring is on.
    pub fn monitor_bound_value(&self) -> Option<u32> {
        self.monitor_bound
    }

    /// Whether message loss is enabled.
    pub fn loss_allowed(&self) -> bool {
        self.allow_loss
    }

    /// Whether voluntary leaves are enabled.
    pub fn leave_allowed(&self) -> bool {
        self.allow_leave
    }

    /// Whether every *participant* has the same crash switch — part of
    /// the symmetry soundness obligation (the coordinator's switch is
    /// irrelevant: permutations never touch `p[0]`).
    pub fn participant_faults_uniform(&self) -> bool {
        self.crashable[1..].windows(2).all(|w| w[0] == w[1])
    }

    /// The protocol variant.
    pub fn variant(&self) -> Variant {
        self.coord.variant()
    }

    /// The timing parameters.
    pub fn params(&self) -> Params {
        self.coord.params()
    }

    fn monitor_cap(&self) -> u32 {
        self.monitor_bound.map(|b| b + 1).unwrap_or(0)
    }

    /// Whether any in-flight message is urgent (budget exhausted) — the
    /// receive-priority test.
    ///
    /// The §6.1 fix is *global* action priority: every same-instant
    /// delivery (urgent message) is processed before any timeout fires.
    /// Per-destination priority would not be enough — at `tmin = tmax` the
    /// cascade "beat delivered to `p[i]`, instant reply, reply delivered to
    /// `p[0]`" happens entirely at the instant of `p[0]`'s timeout, and the
    /// first message of the cascade is addressed to `p[i]`, not `p[0]`.
    fn any_urgent_delivery(&self, s: &HbState) -> bool {
        s.channel.iter().any(|m| m.budget == 0)
    }

    fn receive_priority(&self) -> bool {
        self.coord.fix().receive_priority()
    }

    /// Whether time may pass in `s` (no urgent event anywhere).
    pub fn may_tick(&self, s: &HbState) -> bool {
        self.coord.may_tick(&s.coord)
            && s.resps.iter().all(|r| self.resp.may_tick(r))
            && s.channel.iter().all(|m| m.budget > 0)
    }

    /// The R1 error predicate on a state: some armed monitor exceeded the
    /// bound while the coordinator is still active.
    pub fn monitor_error(&self, s: &HbState) -> bool {
        let Some(bound) = self.monitor_bound else {
            return false;
        };
        s.coord.status.is_active() && s.monitors.iter().any(|m| m.armed && m.since_last > bound)
    }

    fn push_msg(channel: &mut Vec<Msg>, msg: Msg) {
        channel.push(msg);
        channel.sort_unstable();
    }

    fn remove_msg(channel: &mut Vec<Msg>, msg: &Msg) -> bool {
        if let Some(pos) = channel.iter().position(|m| m == msg) {
            channel.remove(pos);
            true
        } else {
            false
        }
    }
}

impl Model for HbModel {
    type State = HbState;
    type Action = HbAction;

    fn initial_states(&self) -> Vec<HbState> {
        let monitors = if self.monitor_bound.is_some() {
            // Non-join variants expect every participant from the start;
            // join variants arm on the first delivered beat.
            let armed = !self.variant().has_join_phase();
            vec![
                MonitorState {
                    armed,
                    since_last: 0,
                };
                self.n
            ]
        } else {
            Vec::new()
        };
        let resps = (0..self.n)
            .map(|i| {
                let mut r = self.resp.init_state();
                if self.stagger {
                    // Advance each participant's governing timer by its
                    // index — values inside the dataflow ranges, so the
                    // packed codec needs no special case. The watchdog
                    // offset must stay below the protocol's own margin:
                    // fault-free beats are at most tmax (round) + tmin
                    // (delivery) apart, so an initial offset under
                    // bound − (tmax + tmin) can never cause a spurious
                    // firing, while anything larger injects a premise
                    // violation the requirements would rightly flag.
                    if self.variant().has_join_phase() {
                        r.join_elapsed = (i as u32) % self.params().tmin().max(1);
                    } else {
                        let slack = self
                            .resp
                            .watchdog_bound()
                            .saturating_sub(self.params().tmax() + self.params().tmin());
                        r.waiting = (i as u32) % slack.max(1);
                    }
                }
                r
            })
            .collect();
        vec![HbState {
            coord: self.coord.init_state(),
            resps,
            channel: Vec::new(),
            lost: false,
            monitors,
        }]
    }

    fn actions(&self, s: &HbState, out: &mut Vec<HbAction>) {
        // Crashes.
        if self.crashable[0] && s.coord.status.is_active() {
            out.push(HbAction::Crash(0));
        }
        for (i, r) in s.resps.iter().enumerate() {
            if self.crashable[i + 1] && r.status.is_active() && !r.left {
                out.push(HbAction::Crash(i + 1));
            }
        }
        // Urgent process events (receive-priority may defer timeouts to
        // urgent deliveries).
        let defer_timeouts = self.receive_priority() && self.any_urgent_delivery(s);
        if self.coord.timeout_due(&s.coord) && !defer_timeouts {
            out.push(HbAction::CoordTimeout);
        }
        for (i, r) in s.resps.iter().enumerate() {
            let pid = i + 1;
            if self.resp.watchdog_due(r) && !defer_timeouts {
                out.push(HbAction::RespWatchdog(pid));
            }
            if self.resp.join_send_due(r) {
                out.push(HbAction::JoinSend(pid));
            }
        }
        // Channel: each distinct in-flight message may be delivered (with
        // either leave decision in the dynamic protocol) or lost.
        let mut seen: Option<&Msg> = None;
        for m in &s.channel {
            if seen == Some(m) {
                continue; // duplicate message: identical actions
            }
            seen = Some(m);
            out.push(HbAction::Deliver {
                msg: *m,
                leave: false,
            });
            if self.allow_leave && m.dst != 0 && m.hb.flag {
                let r = &s.resps[m.dst - 1];
                if r.status.is_active() && !r.left {
                    out.push(HbAction::Deliver {
                        msg: *m,
                        leave: true,
                    });
                }
            }
            if self.allow_loss {
                out.push(HbAction::Lose(*m));
            }
        }
        // Time.
        if self.may_tick(s) {
            out.push(HbAction::Tick);
        }
    }

    fn next_state(&self, s: &HbState, action: &HbAction) -> Option<HbState> {
        let mut next = s.clone();
        match action {
            HbAction::Tick => {
                if !self.may_tick(s) {
                    return None;
                }
                self.coord.tick(&mut next.coord);
                for r in &mut next.resps {
                    self.resp.tick(r);
                }
                for m in &mut next.channel {
                    m.budget -= 1;
                }
                let cap = self.monitor_cap();
                for m in &mut next.monitors {
                    if m.armed {
                        m.since_last = (m.since_last + 1).min(cap);
                    }
                }
            }
            HbAction::CoordTimeout => {
                if !self.coord.timeout_due(&s.coord) {
                    return None;
                }
                match self.coord.on_timeout(&mut next.coord) {
                    TimeoutOutcome::Inactivated => {}
                    TimeoutOutcome::Beat => {
                        // `on_timeout` never changes `jnd`, so reading the
                        // recipients off the post-state is exact.
                        for pid in self.coord.recipients(&next.coord) {
                            Self::push_msg(
                                &mut next.channel,
                                Msg {
                                    src: 0,
                                    dst: pid,
                                    hb: Heartbeat::plain(),
                                    budget: self.params().tmin(),
                                },
                            );
                        }
                    }
                }
            }
            HbAction::RespWatchdog(pid) => {
                let r = &mut next.resps[pid - 1];
                if !self.resp.watchdog_due(r) {
                    return None;
                }
                self.resp.on_watchdog(r);
            }
            HbAction::JoinSend(pid) => {
                let r = &mut next.resps[pid - 1];
                if !self.resp.join_send_due(r) {
                    return None;
                }
                let hb = self.resp.on_join_send(r);
                Self::push_msg(
                    &mut next.channel,
                    Msg {
                        src: *pid,
                        dst: 0,
                        hb,
                        budget: self.params().tmin(),
                    },
                );
            }
            HbAction::Deliver { msg, leave } => {
                if !Self::remove_msg(&mut next.channel, msg) {
                    return None;
                }
                if msg.dst == 0 {
                    // Beat from participant `msg.src` arrives at p[0].
                    if !next.monitors.is_empty() {
                        let m = &mut next.monitors[msg.src - 1];
                        // A stale join/stay beat overtaken by a leave must
                        // not re-arm the monitor: p[0] ignores it (via the
                        // `left` latch, or the epoch bar under the §7
                        // rejoin fix), so it expects nothing more from
                        // this incarnation.
                        let ignored = if self.coord.fix().epoch_rejoin() {
                            hb_core::serial::serial_lt(
                                msg.hb.epoch,
                                next.coord.min_epoch[msg.src - 1],
                            )
                        } else {
                            next.coord.left[msg.src - 1]
                        };
                        if !msg.hb.flag {
                            m.armed = false;
                        } else if !ignored {
                            m.armed = true;
                            m.since_last = 0;
                        }
                    }
                    match self.coord.on_heartbeat(&mut next.coord, msg.src, msg.hb) {
                        CoordReaction::None => {}
                        CoordReaction::LeaveAck(pid, ack) => {
                            Self::push_msg(
                                &mut next.channel,
                                Msg {
                                    src: 0,
                                    dst: pid,
                                    hb: ack,
                                    budget: self.params().tmin(),
                                },
                            );
                        }
                    }
                } else {
                    let decision = if *leave {
                        LeaveDecision::Leave
                    } else {
                        LeaveDecision::Stay
                    };
                    let r = &mut next.resps[msg.dst - 1];
                    if let Some(reply) = self.resp.on_beat(r, msg.hb, decision) {
                        // The reply continues the round-trip budget.
                        Self::push_msg(
                            &mut next.channel,
                            Msg {
                                src: msg.dst,
                                dst: 0,
                                hb: reply,
                                budget: msg.budget,
                            },
                        );
                    }
                }
            }
            HbAction::Lose(msg) => {
                if !Self::remove_msg(&mut next.channel, msg) {
                    return None;
                }
                next.lost = true;
            }
            HbAction::Crash(pid) => {
                if *pid == 0 {
                    if !s.coord.status.is_active() {
                        return None;
                    }
                    self.coord.crash(&mut next.coord);
                } else {
                    let r = &mut next.resps[pid - 1];
                    if !r.status.is_active() {
                        return None;
                    }
                    self.resp.crash(r);
                }
            }
        }
        Some(next)
    }

    fn format_action(&self, action: &HbAction) -> String {
        match action {
            HbAction::Tick => "tick".into(),
            HbAction::CoordTimeout => "timeout at p[0]".into(),
            HbAction::RespWatchdog(pid) => format!("nv-inactivate p[{pid}]"),
            HbAction::JoinSend(pid) => format!("p[{pid}] sends join beat"),
            HbAction::Deliver { msg, leave } => {
                let extra = if *leave { " (replies leave)" } else { "" };
                format!(
                    "deliver {} p[{}]->p[{}] (budget {}){}",
                    msg.hb, msg.src, msg.dst, msg.budget, extra
                )
            }
            HbAction::Lose(msg) => format!("lose {} p[{}]->p[{}]", msg.hb, msg.src, msg.dst),
            HbAction::Crash(pid) => format!("crash p[{pid}]"),
        }
    }

    fn format_state(&self, s: &HbState) -> String {
        let resp_s: Vec<String> = s
            .resps
            .iter()
            .map(|r| {
                format!(
                    "{:?}(w={},j={},l={})",
                    r.status, r.waiting, r.joined, r.left
                )
            })
            .collect();
        format!(
            "p0={:?}(t={},e={}) resps=[{}] chan={} lost={}",
            s.coord.status,
            s.coord.t,
            s.coord.elapsed,
            resp_s.join(", "),
            s.channel.len(),
            s.lost
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_core::Status;
    use mck::Checker;

    fn binary(tmin: u32, tmax: u32, fix: FixLevel) -> HbModel {
        HbModel::new(Variant::Binary, Params::new(tmin, tmax).unwrap(), 1, fix)
    }

    #[test]
    fn initial_state_is_quiet() {
        let m = binary(1, 4, FixLevel::Original);
        let init = &m.initial_states()[0];
        assert!(init.channel.is_empty());
        assert!(!init.lost);
        assert_eq!(init.coord.status, Status::Active);
    }

    #[test]
    fn no_deadlocks_small_binary() {
        let m = binary(1, 3, FixLevel::Original);
        let out = Checker::new(&m).check_invariant(|_| true);
        assert!(out.holds());
        // every state must have a successor (tick at minimum)
        let m2 = binary(1, 2, FixLevel::Original);
        let out2 = Checker::new(&m2).check_reachability(|s| {
            let mut acts = Vec::new();
            m2.actions(s, &mut acts);
            acts.iter().all(|a| m2.next_state(s, a).is_none())
        });
        assert!(out2.unreachable(), "deadlock found");
    }

    #[test]
    fn ticks_are_blocked_by_urgency() {
        let m = binary(2, 4, FixLevel::Original);
        let mut s = m.initial_states().remove(0);
        // advance to the coordinator timeout
        for _ in 0..4 {
            assert!(m.may_tick(&s));
            s = m.next_state(&s, &HbAction::Tick).unwrap();
        }
        assert!(!m.may_tick(&s), "due timeout must block ticking");
        let mut acts = Vec::new();
        m.actions(&s, &mut acts);
        assert!(!acts.contains(&HbAction::Tick));
        assert!(acts.contains(&HbAction::CoordTimeout));
    }

    #[test]
    fn beat_exchange_round_trip() {
        let m = binary(2, 4, FixLevel::Original)
            .allow_loss(false)
            .allow_crashes(false);
        let mut s = m.initial_states().remove(0);
        for _ in 0..4 {
            s = m.next_state(&s, &HbAction::Tick).unwrap();
        }
        s = m.next_state(&s, &HbAction::CoordTimeout).unwrap();
        assert_eq!(s.channel.len(), 1);
        let msg = s.channel[0];
        assert_eq!((msg.src, msg.dst, msg.budget), (0, 1, 2));
        // deliver immediately: p1 replies with the remaining budget
        s = m
            .next_state(&s, &HbAction::Deliver { msg, leave: false })
            .unwrap();
        assert_eq!(s.channel.len(), 1);
        let reply = s.channel[0];
        assert_eq!((reply.src, reply.dst, reply.budget), (1, 0, 2));
        assert_eq!(s.resps[0].waiting, 0);
        // deliver the reply: p0 records the receipt
        s = m
            .next_state(
                &s,
                &HbAction::Deliver {
                    msg: reply,
                    leave: false,
                },
            )
            .unwrap();
        assert!(s.coord.rcvd[0]);
        assert!(s.channel.is_empty());
    }

    #[test]
    fn budget_decrements_and_forces_delivery() {
        let m = binary(2, 4, FixLevel::Original)
            .allow_loss(false)
            .allow_crashes(false);
        let mut s = m.initial_states().remove(0);
        for _ in 0..4 {
            s = m.next_state(&s, &HbAction::Tick).unwrap();
        }
        s = m.next_state(&s, &HbAction::CoordTimeout).unwrap();
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        assert_eq!(s.channel[0].budget, 0);
        assert!(!m.may_tick(&s), "exhausted budget must force delivery");
    }

    #[test]
    fn lose_sets_ghost_flag() {
        let m = binary(2, 4, FixLevel::Original);
        let mut s = m.initial_states().remove(0);
        for _ in 0..4 {
            s = m.next_state(&s, &HbAction::Tick).unwrap();
        }
        s = m.next_state(&s, &HbAction::CoordTimeout).unwrap();
        let msg = s.channel[0];
        s = m.next_state(&s, &HbAction::Lose(msg)).unwrap();
        assert!(s.lost);
        assert!(s.channel.is_empty());
    }

    #[test]
    fn crash_action_is_monotone() {
        let m = binary(1, 2, FixLevel::Original);
        let s = m.initial_states().remove(0);
        let s = m.next_state(&s, &HbAction::Crash(0)).unwrap();
        assert_eq!(s.coord.status, Status::Crashed);
        assert!(m.next_state(&s, &HbAction::Crash(0)).is_none());
    }

    #[test]
    fn receive_priority_defers_timeout_to_urgent_delivery() {
        // tmin = tmax = 2: the Figure 11/12 tie in miniature.
        let orig = binary(2, 2, FixLevel::Original)
            .allow_loss(false)
            .allow_crashes(false);
        let fixed = binary(2, 2, FixLevel::Full)
            .allow_loss(false)
            .allow_crashes(false);
        // Drive both to a state where a message with budget 0 is queued for
        // p[0] while p[0]'s timeout is due: in `orig` both actions are
        // enabled; in `fixed` only the delivery.
        for (m, expect_timeout) in [(&orig, true), (&fixed, false)] {
            let mut s = m.initial_states().remove(0);
            // round 1: wait 2, beat out, deliver instantly, reply queued
            for _ in 0..2 {
                s = m.next_state(&s, &HbAction::Tick).unwrap();
            }
            s = m.next_state(&s, &HbAction::CoordTimeout).unwrap();
            let beat = s.channel[0];
            s = m
                .next_state(
                    &s,
                    &HbAction::Deliver {
                        msg: beat,
                        leave: false,
                    },
                )
                .unwrap();
            // let the reply ride for its full budget: 2 ticks to the next
            // coordinator timeout
            for _ in 0..2 {
                s = m.next_state(&s, &HbAction::Tick).unwrap();
            }
            assert!(m.coord_spec().timeout_due(&s.coord));
            assert_eq!(s.channel[0].budget, 0);
            let mut acts = Vec::new();
            m.actions(&s, &mut acts);
            assert_eq!(
                acts.contains(&HbAction::CoordTimeout),
                expect_timeout,
                "receive-priority mismatch"
            );
        }
    }

    #[test]
    fn join_beats_flow_in_expanding() {
        let m = HbModel::new(
            Variant::Expanding,
            Params::new(2, 4).unwrap(),
            1,
            FixLevel::Original,
        )
        .allow_loss(false)
        .allow_crashes(false);
        let mut s = m.initial_states().remove(0);
        // First join send due at tmin = 2.
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        let mut acts = Vec::new();
        m.actions(&s, &mut acts);
        assert!(acts.contains(&HbAction::JoinSend(1)));
        assert!(!acts.contains(&HbAction::Tick), "join send is urgent");
        s = m.next_state(&s, &HbAction::JoinSend(1)).unwrap();
        let join = s.channel[0];
        assert_eq!((join.src, join.dst), (1, 0));
        s = m
            .next_state(
                &s,
                &HbAction::Deliver {
                    msg: join,
                    leave: false,
                },
            )
            .unwrap();
        assert!(s.coord.jnd[0], "join beat must register at p[0]");
        assert!(s.coord.rcvd[0]);
    }

    #[test]
    fn dynamic_leave_round_trip() {
        let m = HbModel::new(
            Variant::Dynamic,
            Params::new(2, 4).unwrap(),
            1,
            FixLevel::Original,
        )
        .allow_loss(false)
        .allow_crashes(false)
        .monitor_bound(8);
        let mut s = m.initial_states().remove(0);
        assert!(!s.monitors[0].armed, "join variants arm on first delivery");
        // join
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::JoinSend(1)).unwrap();
        let join = s.channel[0];
        s = m
            .next_state(
                &s,
                &HbAction::Deliver {
                    msg: join,
                    leave: false,
                },
            )
            .unwrap();
        assert!(s.monitors[0].armed);
        // p0 timeout broadcasts at t=4
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::Tick).unwrap();
        s = m.next_state(&s, &HbAction::CoordTimeout).unwrap();
        let beat = s.channel[0];
        // participant replies with a leave
        s = m
            .next_state(
                &s,
                &HbAction::Deliver {
                    msg: beat,
                    leave: true,
                },
            )
            .unwrap();
        assert!(s.resps[0].left);
        let reply = s.channel[0];
        assert!(!reply.hb.flag);
        // p0 receives the leave: unjoins, acks, disarms the monitor
        s = m
            .next_state(
                &s,
                &HbAction::Deliver {
                    msg: reply,
                    leave: false,
                },
            )
            .unwrap();
        assert!(!s.coord.jnd[0]);
        assert!(!s.monitors[0].armed);
        assert_eq!(s.channel.len(), 1, "leave ack in flight");
        assert!(!s.channel[0].hb.flag);
    }

    #[test]
    fn monitor_counts_and_saturates() {
        let m = binary(1, 2, FixLevel::Original)
            .monitor_bound(4)
            .allow_loss(false);
        let mut s = m.initial_states().remove(0);
        assert!(s.monitors[0].armed, "binary monitors arm at start");
        // crash p1 so nothing ever resets the monitor
        s = m.next_state(&s, &HbAction::Crash(1)).unwrap();
        let mut guard = 0;
        while !m.monitor_error(&s) {
            let mut acts = Vec::new();
            m.actions(&s, &mut acts);
            // pick tick if possible, else the first urgent action
            let a = if acts.contains(&HbAction::Tick) {
                HbAction::Tick
            } else {
                acts.into_iter()
                    .find(|a| !matches!(a, HbAction::Crash(_)))
                    .expect("must have an urgent action")
            };
            // p0 inactivating would end the run; in this tiny instance the
            // monitor errors first (bound 4 < chain start 2+2)
            s = m.next_state(&s, &a).unwrap();
            guard += 1;
            assert!(guard < 50, "monitor never errored");
        }
        assert_eq!(s.monitors[0].since_last, 5); // bound + 1 saturation
    }

    #[test]
    fn channel_stays_sorted_and_bounded() {
        let m = binary(1, 3, FixLevel::Original);
        let out = Checker::new(&m).check_invariant(|s| {
            s.channel.windows(2).all(|w| w[0] <= w[1]) && s.channel.len() <= 4
        });
        assert!(out.holds(), "{:?}", out.stats());
    }
}
