//! Independence-driven partial-order reduction for [`HbModel`].
//!
//! The composed heartbeat model interleaves deliveries, losses, timeouts
//! and ticks; most of those interleavings are equivalent up to
//! commutation. This module instantiates the generic ample-set wrapper
//! of [`mck::por`] with an oracle whose independence relation is
//! *derived from the machines' own transition-system IR*
//! ([`hb_core::describe`]): which transition classes send, and to whom,
//! comes from [`SendProfile`], not from hand-maintained tables.
//!
//! # The ample-set rules
//!
//! **Rule 0 — absorbed-predicate chains.** Each requirement predicate
//! has a *sticky-false* region: a set of states closed under all
//! transitions in which the predicate is false and can never become
//! true again. Under R1 that is any state whose coordinator is inactive
//! (the checker model has no revive action, so `coord.status` never
//! returns to `Active` and `monitor_error` — which conjoins
//! coordinator liveness — is permanently false), and any state in which
//! every ghost monitor is disarmed while its responder is dead and no
//! re-arming beat (a `flag = true` message from that responder to
//! `p[0]`) is in flight: dead responders never send, and arming happens
//! only on such a delivery. Under R3 it is any state with an inactive
//! responder, which permanently falsifies the "all participants still
//! active" premise. No full-model path through a sticky-false region
//! reaches a violation (the region is closed), so the standard
//! ample-set construction never needs to preserve interleavings inside
//! it: the oracle explores a single arbitrary successor per state,
//! collapsing the whole subtree to a chain. This is where the bulk of
//! the R1 state mass goes — everything downstream of a coordinator
//! crash — and most of the R3 mass of the expanding/dynamic variants,
//! downstream of a spurious participant self-inactivation.
//!
//! **Rule 1 — dead-destination groups.** The IR proves that a beat
//! delivered to an inactive or departed responder, and a leave
//! acknowledgement delivered to any responder, have an *empty write
//! footprint*: `on_beat` refuses them all without touching local state,
//! no reply is sent, and the checker model has no revive action, so a
//! down responder never acts again. Resolving such a message — any of
//! its deliveries, or its loss — therefore writes nothing but the
//! channel itself and the ghost `lost` flag, neither of which any
//! requirement predicate reads. The whole group commutes with every
//! other action *including the global tick*, so it is ample in any
//! state where it is enabled: the entire (in-flight × time) product of
//! a message bound for a dead process collapses to immediate
//! resolution. This is where the bulk of the R1 state mass goes — the
//! post-crash tail in which the coordinator keeps (re-)broadcasting to
//! a crashed participant.
//!
//! **Rule 2 — urgent delivery groups**: all enabled
//! actions on one in-flight message `m` with `budget == 0` (its
//! [`Deliver`](HbAction::Deliver) actions, plus [`Lose`](HbAction::Lose)
//! when loss is on). Such a group is the ample set iff every *other*
//! enabled action `β` is independent of it:
//!
//! * `β` does not run on `m.dst` (process-disjointness), and
//! * `β` cannot send a message to `m.dst` (so no action dependent on
//!   the group can fire before it — condition C1; the send targets come
//!   from the IR's [`SendProfile`]), and
//! * the group is invisible to the checked predicate (C2): deliveries
//!   never write a status field, and deliveries to the coordinator are
//!   excluded whenever ghost R1 monitors are attached.
//!
//! Soundness of C1 leans on urgency: while `m` has budget 0 the global
//! tick is disabled, so no *new* timer can fire before the group
//! resolves, and any message created after the candidate state is
//! causally behind the group. The cycle proviso (C3) holds because
//! zero-time action cycles are impossible (every delivery chain within
//! an instant is finite, timeouts re-arm only across ticks), so every
//! cycle of the graph crosses a tick — and tick-enabled states have no
//! urgent message, hence are always fully expanded.
//!
//! These arguments are checked empirically: `hb-analyze` re-runs every
//! Table 1/Table 2 cell with and without reduction and insists on
//! identical verdicts (`por_cross_check`), and a workspace proptest does
//! the same on random small parameters.

use hb_core::describe::{DescribeMachine, SendProfile};
use mck::por::AmpleOracle;
use mck::{CheckOutcome, Checker, Path};

use crate::model::{HbAction, HbModel, HbState, Msg};
use crate::requirements::{build_model, error_predicate, Requirement, Verdict};

/// Ample-set oracle for the composed heartbeat model.
pub struct HbAmpleOracle {
    /// The requirement being checked — fixes which states are
    /// sticky-false (Rule 0) and what the predicate observes (C2).
    requirement: Requirement,
    /// R1 monitors observe deliveries to `p[0]`; when attached, those
    /// deliveries are visible and never form an ample set.
    observes_monitors: bool,
    coord: SendProfile,
    resp: SendProfile,
}

impl HbAmpleOracle {
    /// Build the oracle for `model`, deriving the send footprints from
    /// the machines' IR.
    pub fn new(model: &HbModel, requirement: Requirement) -> Self {
        Self {
            requirement,
            observes_monitors: model.monitor_bound_value().is_some(),
            coord: model.coord_spec().describe().send_profile(),
            resp: model.resp_spec().describe().send_profile(),
        }
    }

    /// Rule 0: whether `state` lies in the requirement's sticky-false
    /// region — the predicate is false here and in every state reachable
    /// from here, so the subtree needs no interleaving coverage at all.
    fn predicate_absorbed(&self, state: &HbState) -> bool {
        match self.requirement {
            Requirement::R1 => {
                if !self.observes_monitors {
                    return false;
                }
                if !state.coord.status.is_active() {
                    return true; // no revive: coord liveness is sticky
                }
                state.monitors.iter().enumerate().all(|(i, m)| {
                    !m.armed
                        && !state.resps[i].status.is_active()
                        && !state
                            .channel
                            .iter()
                            .any(|msg| msg.dst == 0 && msg.src == i + 1 && msg.hb.flag)
                })
            }
            // NvInactive is both the violation and absorbing, so a
            // sticky-false region would have to exclude every future
            // self-inactivation — not a static condition. R2 cells are
            // tiny; leave them fully expanded.
            Requirement::R2 => false,
            Requirement::R3 => state.resps.iter().any(|r| !r.status.is_active()),
        }
    }

    /// Whether enabled action `β` is independent of the delivery group
    /// on message `m` (same-message actions are inside the group and
    /// never reach here).
    fn independent_of_group(&self, beta: &HbAction, m: &Msg) -> bool {
        match beta {
            // A reduced state must not let time pass ahead of an urgent
            // delivery; urgency already disables Tick, but stay safe.
            HbAction::Tick => false,
            // Runs on p[0]; and its broadcast targets every participant.
            HbAction::CoordTimeout => m.dst != 0 && !self.coord.time_sends,
            // Runs on p; sends nothing.
            HbAction::RespWatchdog(p) | HbAction::Crash(p) => *p != m.dst,
            // Runs on p; its join beat targets p[0].
            HbAction::JoinSend(p) => *p != m.dst && !(self.resp.time_sends && m.dst == 0),
            // Another message's delivery: disjoint destination, and its
            // follow-up send (reply to p[0], or leave-ack back to the
            // leaver) must not target m.dst.
            HbAction::Deliver { msg: m2, .. } => {
                if m2.dst == m.dst {
                    return false;
                }
                let followup_hits_dst = if m2.dst == 0 {
                    !m2.hb.flag && self.coord.receive_false_sends && m2.src == m.dst
                } else {
                    m2.hb.flag && self.resp.receive_true_sends && m.dst == 0
                };
                !followup_hits_dst
            }
            // Loss of another message only writes the ghost `lost` flag.
            HbAction::Lose(_) => true,
        }
    }
}

impl HbAmpleOracle {
    /// Whether resolving `m` is statically a no-op on its recipient:
    /// the destination responder is inactive (and the checker model has
    /// no revive action) or has left (the `left` latch is sticky), or
    /// the message is a leave acknowledgement (`flag == false`), which
    /// `on_beat` discards unconditionally. In the IR these are exactly
    /// the receive transitions with an empty write footprint.
    fn dead_on_arrival(state: &HbState, m: &Msg) -> bool {
        if m.dst == 0 {
            return false; // deliveries at p[0] drive the R1 monitors
        }
        let r = &state.resps[m.dst - 1];
        !r.status.is_active() || r.left || !m.hb.flag
    }
}

impl AmpleOracle<HbModel> for HbAmpleOracle {
    fn ample(&self, state: &HbState, enabled: &[HbAction]) -> Option<Vec<usize>> {
        if enabled.len() < 2 {
            return None;
        }
        // Rule 0: inside a sticky-false region any single successor
        // represents the subtree — explore it as a chain.
        if self.predicate_absorbed(state) {
            return Some(vec![0]);
        }
        // Try each message as a candidate, in enabled order
        // (deterministic: the model emits deliveries in channel order).
        for (i, a) in enabled.iter().enumerate() {
            let HbAction::Deliver { msg, leave: false } = a else {
                continue;
            };
            // The group: every enabled action on this exact message.
            let in_group = |b: &HbAction| match b {
                HbAction::Deliver { msg: m2, .. } => m2 == msg,
                HbAction::Lose(m2) => m2 == msg,
                _ => false,
            };
            let group: Vec<usize> = (i..enabled.len())
                .filter(|&j| in_group(&enabled[j]))
                .collect();
            if group.len() == enabled.len() {
                continue; // not a proper subset — nothing to defer
            }
            // Rule 1: a message bound for a dead recipient commutes with
            // everything, tick included — always ample.
            if Self::dead_on_arrival(state, msg) {
                return Some(group);
            }
            // Rule 2: an urgent message whose group every outside action
            // is independent of.
            if msg.budget != 0 {
                continue;
            }
            if msg.dst == 0 && self.observes_monitors {
                continue; // visible to the R1 monitors (C2)
            }
            if enabled
                .iter()
                .enumerate()
                .filter(|&(j, _)| !group.contains(&j))
                .all(|(_, b)| self.independent_of_group(b, msg))
            {
                return Some(group);
            }
        }
        None
    }
}

/// [`crate::requirements::verify_with_n`] under ample-set reduction.
///
/// Explores the reduced graph instead of the full one; the verdict is
/// guaranteed equal by the C0–C3 argument above and double-checked by
/// `hb-analyze`'s cross-check gate. Stats report the *reduced*
/// exploration, which is the point: compare against the full run to
/// measure the savings.
pub fn verify_with_n_por(
    variant: hb_core::Variant,
    params: hb_core::Params,
    fix: hb_core::FixLevel,
    req: Requirement,
    n: usize,
) -> Verdict {
    let model = build_model(variant, params, fix, n, req);
    let reduced = mck::por::Reduced::new(&model, HbAmpleOracle::new(&model, req));
    let outcome = Checker::new(&reduced).check_invariant(|s| !error_predicate(&model, req)(s));
    let (holds, counterexample, stats) = match outcome {
        CheckOutcome::Holds(stats) => (true, None, stats),
        CheckOutcome::Violated { path, stats } => {
            // Re-key the path from the wrapper to the inner model (same
            // state and action types).
            let path =
                Path::<HbModel>::from_steps(path.initial_state().clone(), path.steps().to_vec());
            (false, Some(path), stats)
        }
        CheckOutcome::Incomplete(stats) => {
            unreachable!("unbounded check cannot be incomplete: {stats:?}")
        }
    };
    Verdict {
        variant,
        params,
        fix,
        requirement: req,
        holds,
        counterexample,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::verify_with_n;
    use hb_core::{FixLevel, Params, Variant};

    #[test]
    fn por_agrees_with_full_exploration_on_spot_cells() {
        let cells = [
            (Variant::Binary, 4, 10, FixLevel::Original, Requirement::R2),
            (Variant::Binary, 10, 10, FixLevel::Original, Requirement::R2),
            (Variant::Binary, 4, 10, FixLevel::Full, Requirement::R1),
            (
                Variant::Expanding,
                5,
                10,
                FixLevel::Original,
                Requirement::R3,
            ),
            (Variant::Dynamic, 4, 10, FixLevel::Full, Requirement::R2),
        ];
        for (v, tmin, tmax, fix, req) in cells {
            let p = Params::new(tmin, tmax).unwrap();
            let full = verify_with_n(v, p, fix, req, 1);
            let por = verify_with_n_por(v, p, fix, req, 1);
            assert_eq!(full.holds, por.holds, "{v:?}/{tmin}-{tmax}/{fix:?}/{req:?}");
            assert!(
                por.stats.states <= full.stats.states,
                "reduction must not grow the graph"
            );
        }
    }

    #[test]
    fn reduction_shrinks_a_fault_free_multi_participant_cell() {
        // With one participant the channel never holds two messages, so
        // there is nothing to commute; from two participants on, the
        // broadcast beats and their replies race, and the ample rule
        // collapses those interleavings.
        let p = Params::new(4, 10).unwrap();
        let full = verify_with_n(Variant::Static, p, FixLevel::Original, Requirement::R2, 2);
        let por = verify_with_n_por(Variant::Static, p, FixLevel::Original, Requirement::R2, 2);
        assert_eq!(full.holds, por.holds);
        assert!(
            por.stats.states < full.stats.states,
            "expected real reduction: full={} por={}",
            full.stats.states,
            por.stats.states
        );
    }
}
