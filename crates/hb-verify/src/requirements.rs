//! The requirements R1–R3 and the per-cell verification driver.
//!
//! | Req | Informal statement | Encoding |
//! |-----|--------------------|----------|
//! | R1  | if `p[0]` receives no beat from a joined `p[i]` for a bound, it becomes inactive | ghost watchdog monitors ([`crate::model::MonitorState`]), faults enabled |
//! | R2  | no crashes ∧ no loss ⇒ no participant is NV-inactivated | fault actions pruned; error = some participant `NvInactive` |
//! | R3  | no crashes ∧ no loss ⇒ the coordinator is never NV-inactivated | fault actions pruned; error = coordinator `NvInactive` |
//!
//! The R1 bound is the original paper's claimed `2·tmax` at
//! [`FixLevel::Original`]/[`FixLevel::ReceivePriority`], and the §6.2
//! corrected per-variant bound once `corrected_bounds` is on.

use hb_core::{FixLevel, Params, Status, Variant};
use mck::bfs::Stats;
use mck::{CheckOutcome, Checker, Path};

use crate::model::{HbModel, HbState};

/// The three requirements of the paper (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Requirement {
    /// Coordinator progress: starvation from `p[i]` inactivates `p[0]`
    /// within the bound.
    R1,
    /// Participant safety: no spurious participant inactivation without
    /// faults.
    R2,
    /// Coordinator safety: no spurious coordinator inactivation without
    /// faults.
    R3,
}

impl Requirement {
    /// All requirements in order.
    pub const ALL: [Requirement; 3] = [Requirement::R1, Requirement::R2, Requirement::R3];

    /// Short name ("R1" …).
    pub fn name(self) -> &'static str {
        match self {
            Requirement::R1 => "R1",
            Requirement::R2 => "R2",
            Requirement::R3 => "R3",
        }
    }
}

impl std::fmt::Display for Requirement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of checking one requirement on one protocol configuration.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The variant checked.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level.
    pub fix: FixLevel,
    /// Requirement checked.
    pub requirement: Requirement,
    /// Whether the requirement holds (exhaustively verified).
    pub holds: bool,
    /// A shortest counterexample when it does not.
    pub counterexample: Option<Path<HbModel>>,
    /// Exploration statistics.
    pub stats: Stats,
}

impl Verdict {
    /// `"T"` / `"F"`, as printed in the paper's tables.
    pub fn symbol(&self) -> &'static str {
        if self.holds {
            "T"
        } else {
            "F"
        }
    }
}

/// Build the composed model appropriate for checking `req`:
///
/// * R1 keeps all fault actions (the requirement has no fault premise) and
///   attaches ghost monitors with the claimed (original) or corrected
///   (fixed) bound;
/// * R2/R3 prune crash and loss actions at generation time — sound because
///   their premises are trace-global ("no message is *ever* lost …"), so
///   premise-satisfying traces are exactly the traces of the pruned model.
pub fn build_model(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    n: usize,
    req: Requirement,
) -> HbModel {
    let model = HbModel::new(variant, params, n, fix);
    match req {
        Requirement::R1 => model.monitor_bound(r1_bound(variant, params, fix)),
        Requirement::R2 | Requirement::R3 => model.allow_loss(false).allow_crashes(false),
    }
}

/// The R1 detection bound in effect at a fix level: the original paper's
/// claimed `2·tmax`, or the corrected per-variant bound of §6.2.
pub fn r1_bound(variant: Variant, params: Params, fix: FixLevel) -> u32 {
    if fix.corrected_bounds() {
        params.p0_bound_corrected(variant)
    } else {
        params.p0_bound_claimed()
    }
}

/// The error predicate for `req` over composed states.
pub fn error_predicate(model: &HbModel, req: Requirement) -> impl Fn(&HbState) -> bool + '_ {
    move |s: &HbState| match req {
        Requirement::R1 => model.monitor_error(s),
        Requirement::R2 => s.resps.iter().any(|r| r.status == Status::NvInactive),
        // R3's premise excludes prior inactivation of the participants
        // (voluntary or not): a coordinator death *caused* by a
        // participant's earlier spurious inactivation is an R2 failure
        // cascading, not an independent R3 failure — this is the reading
        // under which the paper's Table 2 reports R3 = T while R2 = F on
        // the same data sets. Inactivation is absorbing, so "no
        // participant was inactivated earlier" is a predicate on the
        // violating state itself.
        Requirement::R3 => {
            s.coord.status == Status::NvInactive && s.resps.iter().all(|r| r.status.is_active())
        }
    }
}

/// Model-check one requirement on one protocol configuration with `n`
/// participants. Exhaustive (no state or depth bound); BFS returns a
/// shortest counterexample on failure.
pub fn verify_with_n(
    variant: Variant,
    params: Params,
    fix: FixLevel,
    req: Requirement,
    n: usize,
) -> Verdict {
    let model = build_model(variant, params, fix, n, req);
    let outcome = Checker::new(&model).check_invariant(|s| !error_predicate(&model, req)(s));
    let (holds, counterexample, stats) = match outcome {
        CheckOutcome::Holds(stats) => (true, None, stats),
        CheckOutcome::Violated { path, stats } => (false, Some(path), stats),
        CheckOutcome::Incomplete(stats) => {
            unreachable!("unbounded check cannot be incomplete: {stats:?}")
        }
    };
    Verdict {
        variant,
        params,
        fix,
        requirement: req,
        holds,
        counterexample,
        stats,
    }
}

/// [`verify_with_n`] with the default participant count used throughout
/// the paper-table reproduction: the two-process protocols are fixed at
/// one participant, and the multi-party protocols are also checked with
/// one participant (larger `n` only enlarges the state space without
/// changing any verdict — spot-checked with `n = 2` in the slow
/// integration tests).
pub fn verify(variant: Variant, params: Params, fix: FixLevel, req: Requirement) -> Verdict {
    verify_with_n(variant, params, fix, req, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(tmin: u32, tmax: u32) -> Params {
        Params::new(tmin, tmax).unwrap()
    }

    // Small-constant sanity checks; the full paper datasets run in the
    // integration tests and benches.

    #[test]
    fn r2_r3_hold_when_tmin_below_tmax_binary() {
        for req in [Requirement::R2, Requirement::R3] {
            let v = verify(Variant::Binary, p(2, 4), FixLevel::Original, req);
            assert!(v.holds, "{req} should hold for tmin<tmax: {:?}", v.stats);
            assert!(v.counterexample.is_none());
        }
    }

    #[test]
    fn r2_r3_fail_at_tmin_eq_tmax_binary_original() {
        for req in [Requirement::R2, Requirement::R3] {
            let v = verify(Variant::Binary, p(3, 3), FixLevel::Original, req);
            assert!(!v.holds, "{req} must fail at tmin=tmax (Fig 11/12 races)");
            assert!(v.counterexample.is_some());
        }
    }

    #[test]
    fn full_fix_repairs_r2_r3_at_tmin_eq_tmax() {
        for req in [Requirement::R2, Requirement::R3] {
            let v = verify(Variant::Binary, p(3, 3), FixLevel::Full, req);
            assert!(v.holds, "{req} must hold after the full fix");
        }
    }

    #[test]
    fn receive_priority_alone_repairs_binary_r2_r3() {
        // For the binary protocol the §6.1 priority alone removes the
        // Fig 11/12 races (the §6.2 bounds matter for R1 and the join
        // variants).
        for req in [Requirement::R2, Requirement::R3] {
            let v = verify(Variant::Binary, p(3, 3), FixLevel::ReceivePriority, req);
            assert!(v.holds, "{req} must hold with receive priority");
        }
    }

    #[test]
    fn r1_fails_with_small_tmin_original() {
        // 2*tmin <= tmax: the claimed 2*tmax bound is wrong (Fig 10).
        let v = verify(
            Variant::Binary,
            p(1, 4),
            FixLevel::Original,
            Requirement::R1,
        );
        assert!(!v.holds);
    }

    #[test]
    fn r1_holds_with_large_tmin_original() {
        // 2*tmin > tmax: the claimed bound is correct.
        let v = verify(
            Variant::Binary,
            p(3, 4),
            FixLevel::Original,
            Requirement::R1,
        );
        assert!(v.holds, "{:?}", v.stats);
    }

    #[test]
    fn r1_holds_with_corrected_bound() {
        let v = verify(Variant::Binary, p(1, 4), FixLevel::Full, Requirement::R1);
        assert!(v.holds, "{:?}", v.stats);
    }

    #[test]
    fn r1_corrected_bound_is_tight_binary() {
        // One unit below the corrected bound must be violated — the §6.2
        // bound is exact, not just safe.
        let params = p(2, 4); // corrected bound = 2*tmax = 8 (2*tmin = tmax)
        let bound = r1_bound(Variant::Binary, params, FixLevel::Full);
        let model =
            HbModel::new(Variant::Binary, params, 1, FixLevel::Full).monitor_bound(bound - 1);
        let out = Checker::new(&model).check_invariant(|s| !model.monitor_error(s));
        assert!(!out.holds(), "corrected bound should be tight");
    }

    #[test]
    fn verdict_symbols() {
        let v = verify(
            Variant::Binary,
            p(2, 4),
            FixLevel::Original,
            Requirement::R2,
        );
        assert_eq!(v.symbol(), "T");
    }

    #[test]
    fn expanding_r2_fails_when_two_tmin_ge_tmax() {
        // Figure 13 in miniature: tmin=2, tmax=4, 2*tmin >= tmax.
        let v = verify(
            Variant::Expanding,
            p(2, 4),
            FixLevel::Original,
            Requirement::R2,
        );
        assert!(!v.holds);
    }

    #[test]
    fn expanding_r2_holds_when_two_tmin_lt_tmax() {
        let v = verify(
            Variant::Expanding,
            p(1, 4),
            FixLevel::Original,
            Requirement::R2,
        );
        assert!(v.holds, "{:?}", v.stats);
    }

    #[test]
    fn expanding_r2_fixed() {
        let v = verify(Variant::Expanding, p(2, 4), FixLevel::Full, Requirement::R2);
        assert!(v.holds, "{:?}", v.stats);
    }

    #[test]
    fn dynamic_matches_expanding_on_r2() {
        for (fix, expect) in [(FixLevel::Original, false), (FixLevel::Full, true)] {
            let v = verify(Variant::Dynamic, p(2, 4), fix, Requirement::R2);
            assert_eq!(v.holds, expect, "dynamic R2 at {fix}");
        }
    }
}
