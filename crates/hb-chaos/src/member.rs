//! Running fault plans on the `hb-member` group-membership layer.
//!
//! A [`FaultPlan`] whose [`ProtoSpec::membership`] flag is set executes
//! here instead of on the plain detector runtimes: the plan's protocol
//! cell becomes a [`MemberConfig`], its `crash`/`revive` faults become
//! the engine's process-fault schedule (the coordinator, pid 0, is a
//! legal victim — failover replaces inactivation), and the compiled
//! [`FaultPipeline`] is installed as the membership engine's
//! [`FaultHook`] so the *same* message adversary — loss, partitions,
//! duplication, reordering, delay spikes — hits the membership traffic.
//!
//! The membership engine is substrate-symmetric by construction, so the
//! sim and live backends produce byte-identical event streams and
//! summaries (modulo the `source` field); [`run_failover_campaign`]
//! exploits that for the checked-in `artifacts/failover_{sim,live}.json`
//! pair, the CI gate for coordinator failover: crash the coordinator
//! mid-run, watch the successor install a view excluding it, revive it,
//! and require demotion-not-split plus the two-sided re-convergence
//! metric ([`RunSummary::reconv_detect`] / [`reconv_stable`]) with clean
//! R1–R3 monitors.
//!
//! [`reconv_stable`]: RunSummary::reconv_stable

use std::sync::{Arc, Mutex};

use hb_core::events::SharedTap;
use hb_core::trace::Event;
use hb_core::{FixLevel, Params, Pid, Status, Variant};
use hb_member::{
    run_live, run_sim, FaultKind, MemberConfig, MemberFault, MemberReport, MemberSpec, RoleKind,
};
use hb_monitor::MonitorSet;
use hb_sim::channel::{FaultHook, LossModel, SendFate, Time};
use hb_sim::schema::RunSummary;

use crate::pipeline::{FaultPipeline, PipelineStats};
use crate::plan::{FaultPlan, FaultSpec, Link, ProtoSpec, Window};
use crate::Backend;

/// Map a membership plan onto the engine's run configuration.
///
/// The group is the plan's `n` participants plus the coordinator; the
/// mesh itself runs lossless (`Bernoulli(0.0)`) because the compiled
/// fault pipeline is the sole drop authority, exactly as on the plain
/// chaos backends. `crash`/`revive` faults become the process-fault
/// schedule; every message-level fault stays in the pipeline.
pub fn member_config(plan: &FaultPlan) -> MemberConfig {
    let mut faults: Vec<MemberFault> = plan
        .faults
        .iter()
        .filter_map(|f| match f {
            FaultSpec::Crash { pid, at } => Some(MemberFault {
                at: *at,
                kind: FaultKind::Crash,
                pid: *pid,
            }),
            FaultSpec::Revive { pid, at } => Some(MemberFault {
                at: *at,
                kind: FaultKind::Revive,
                pid: *pid,
            }),
            _ => None,
        })
        .collect();
    faults.sort_by_key(|f| f.at);
    MemberConfig {
        spec: MemberSpec::new(plan.proto.variant, plan.proto.params, plan.proto.fix),
        group: plan.proto.n + 1,
        seed: plan.seed,
        duration: plan.proto.duration,
        loss: LossModel::Bernoulli(0.0),
        faults,
    }
}

/// A [`FaultPipeline`] behind a shared handle, so its decision counters
/// stay readable after the pipeline is boxed into the engine as its
/// [`FaultHook`].
#[derive(Clone, Debug)]
pub struct SharedPipeline(Arc<Mutex<FaultPipeline>>);

impl SharedPipeline {
    /// Compile `plan` into a shareable pipeline.
    pub fn new(plan: &FaultPlan) -> Self {
        SharedPipeline(Arc::new(Mutex::new(FaultPipeline::new(plan))))
    }

    /// Decision counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.0.lock().expect("pipeline poisoned").stats()
    }
}

impl FaultHook for SharedPipeline {
    fn fate(&mut self, now: Time, src: Pid, dst: Pid) -> SendFate {
        self.0
            .lock()
            .expect("pipeline poisoned")
            .decide(now, src, dst)
    }
}

/// The outcome of one membership run: the shared summary schema plus the
/// full membership report (views, roles, event stream, raw samples) for
/// gates that look deeper than the summary.
#[derive(Debug)]
pub struct MemberRun {
    /// The run in the shared [`RunSummary`] schema.
    pub summary: RunSummary,
    /// The underlying membership report.
    pub report: MemberReport,
}

/// Distill a membership report into the shared summary schema.
///
/// Crashes, revives and (never expected) non-voluntary inactivations are
/// read back off the event stream; `reconv_detect` / `reconv_stable` are
/// the worst resolved two-sided sample deltas across *all* scheduled
/// faults — for a crash, detection is the first superseding view
/// excluding the victim and stability is group-wide exclusion; for a
/// revive, detection is the fresh epoch registered and stability the
/// victim back inside its own installed view. Message counters mirror
/// the plain backends: pipeline drops count as sent and lost.
fn summarize(backend: Backend, plan: &FaultPlan, report: &MemberReport) -> RunSummary {
    let mut crashes = Vec::new();
    let mut revives = Vec::new();
    let mut nv_inactivations = Vec::new();
    let mut leaves = Vec::new();
    let mut lose = 0u64;
    for e in report.events.events() {
        match e {
            Event::Crash { at, pid } => crashes.push((*pid, *at)),
            Event::Revive { at, pid } => revives.push((*pid, *at)),
            Event::NvInactivate { at, pid } => nv_inactivations.push((*pid, *at)),
            Event::Leave { at, pid } => leaves.push((*pid, *at)),
            Event::Lose { .. } => lose += 1,
            _ => {}
        }
    }
    let mut reconv_detect = None;
    let mut reconv_stable = None;
    for s in &report.reconv {
        if let Some(d) = s.detect.map(|t| t - s.at) {
            reconv_detect = Some(reconv_detect.map_or(d, |m: Time| m.max(d)));
        }
        if let Some(d) = s.stable.map(|t| t - s.at) {
            reconv_stable = Some(reconv_stable.map_or(d, |m: Time| m.max(d)));
        }
    }
    RunSummary {
        source: backend.name(),
        duration: plan.proto.duration,
        messages_sent: report.stats.sent + lose,
        messages_delivered: report.stats.delivered,
        messages_lost: report.stats.lost + lose,
        crashes,
        nv_inactivations,
        leaves,
        revives,
        reconv_detect,
        reconv_stable,
        stale_beats_admitted: 0,
        stale_beats_filtered: 0,
        detection_delay: None,
        false_inactivations: 0,
        monitor: None,
        final_status: report
            .roles
            .iter()
            .map(|r| {
                if *r == RoleKind::Down {
                    Status::Crashed
                } else {
                    Status::Active
                }
            })
            .collect(),
    }
}

fn run_member(plan: &FaultPlan, backend: Backend, taps: Vec<SharedTap>) -> MemberRun {
    let cfg = member_config(plan);
    let hook: Box<dyn FaultHook> = Box::new(SharedPipeline::new(plan));
    let report = match backend {
        Backend::Sim => run_sim(cfg, Some(hook), taps),
        Backend::Live => run_live(cfg, Some(hook), taps),
    };
    MemberRun {
        summary: summarize(backend, plan, &report),
        report,
    }
}

/// Run a membership plan on the chosen backend.
pub fn run_plan_member(plan: &FaultPlan, backend: Backend) -> MemberRun {
    run_member(plan, backend, Vec::new())
}

/// Run a membership plan with a streaming R1–R3 [`MonitorSet`] tapping
/// the engine's event stream, and record its verdicts in the summary.
///
/// The membership events ride the same `hb_core` trace the plain
/// runtimes emit, so the monitors work unchanged: a coordinator crash
/// retires R1 (no coordinator, no acceleration obligation) and failover
/// never non-voluntarily inactivates anybody, so a healthy failover run
/// must come back clean.
pub fn run_plan_member_monitored(plan: &FaultPlan, backend: Backend) -> MemberRun {
    let monitor = MonitorSet::shared(
        plan.proto.variant,
        plan.proto.params,
        plan.proto.fix,
        plan.proto.n,
    );
    let tap: SharedTap = monitor.clone();
    let mut run = run_member(plan, backend, vec![tap]);
    let mut mon = monitor.lock().expect("monitor poisoned");
    mon.finish(run.summary.duration);
    run.summary.monitor = Some(mon.verdicts());
    run
}

/// Tick at which the failover campaign crashes the coordinator.
pub const FAILOVER_CRASH_AT: Time = 300;

/// Tick at which the crashed ex-coordinator revives (and must come back
/// demoted, not splitting the group).
pub const FAILOVER_REVIVE_AT: Time = 600;

/// Participants per failover cell (group of four with the coordinator).
pub const FAILOVER_N: usize = 3;

/// Seeds swept per loss rate.
pub const FAILOVER_SEEDS: [u64; 3] = [1, 2, 3];

/// Pipeline loss rates swept by the campaign.
pub const FAILOVER_LOSSES: [f64; 2] = [0.0, 0.05];

/// The golden coordinator-crash plan of one campaign cell: dynamic
/// variant at the full fix (state-transfer bars need §7 epochs), the
/// coordinator crashed mid-run and revived after the successor's view
/// has settled, under an optional Bernoulli loss pipeline.
pub fn failover_plan(loss: f64, seed: u64) -> FaultPlan {
    let proto = ProtoSpec {
        variant: Variant::Dynamic,
        params: Params::new(2, 8).unwrap(),
        fix: FixLevel::Full,
        n: FAILOVER_N,
        duration: 900,
        membership: true,
    };
    let mut plan = FaultPlan::new(format!("failover/p{loss}/s{seed}"), seed, proto);
    if loss > 0.0 {
        plan = plan.with(FaultSpec::Loss {
            window: Window::always(),
            link: Link::any(),
            model: LossModel::Bernoulli(loss),
        });
    }
    plan.with(FaultSpec::Crash {
        pid: 0,
        at: FAILOVER_CRASH_AT,
    })
    .with(FaultSpec::Revive {
        pid: 0,
        at: FAILOVER_REVIVE_AT,
    })
}

/// One failover campaign cell: the monitored run plus the failover
/// verdicts the gate cares about.
#[derive(Clone, Debug)]
pub struct FailoverCell {
    /// Bernoulli loss rate of the cell's pipeline.
    pub loss: f64,
    /// The cell's seed.
    pub seed: u64,
    /// The coordinator of the survivors' final view.
    pub coordinator: Pid,
    /// Whether the revived ex-coordinator ended as a *participant* of a
    /// view it does not coordinate (demotion, not a split).
    pub demoted: bool,
    /// Whether every up node agreed on one final view.
    pub agreed: bool,
    /// Whether every scheduled fault resolved both sample sides
    /// (detection *and* stability) within the run.
    pub converged: bool,
    /// Whether re-running the cell reproduced the summary byte-for-byte.
    pub replay_identical: bool,
    /// The monitored run summary.
    pub summary: RunSummary,
}

impl FailoverCell {
    /// The gate: demoted, agreed, two-sided convergence, deterministic
    /// replay, a real (non-zero) successor, and clean R1–R3 monitors.
    pub fn healthy(&self) -> bool {
        self.demoted
            && self.agreed
            && self.converged
            && self.replay_identical
            && self.coordinator != 0
            && self.summary.monitor.is_some_and(|m| m.clean())
    }

    /// The cell as a single-line JSON object (embedding its plan).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"loss\":{:.3},\"seed\":{},\"coordinator\":{},\"demoted\":{},\
             \"agreed\":{},\"converged\":{},\"replay_identical\":{},\"healthy\":{},\
             \"plan\":{},\"summary\":{}}}",
            self.loss,
            self.seed,
            self.coordinator,
            self.demoted,
            self.agreed,
            self.converged,
            self.replay_identical,
            self.healthy(),
            failover_plan(self.loss, self.seed).to_json(),
            self.summary.to_json(),
        )
    }
}

/// The failover campaign on one backend: the checked-in
/// `artifacts/failover_{sim,live}.json` record.
#[derive(Clone, Debug)]
pub struct FailoverReport {
    /// The backend that executed every cell.
    pub backend: Backend,
    /// One cell per `loss × seed` point.
    pub cells: Vec<FailoverCell>,
}

impl FailoverReport {
    /// Whether every cell passed its gate.
    pub fn passes(&self) -> bool {
        !self.cells.is_empty() && self.cells.iter().all(FailoverCell::healthy)
    }

    /// The campaign as a single-line JSON artifact.
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(FailoverCell::to_json).collect();
        format!(
            "{{\"record\":\"failover_campaign\",\"backend\":\"{}\",\
             \"crash_at\":{FAILOVER_CRASH_AT},\"revive_at\":{FAILOVER_REVIVE_AT},\
             \"passes\":{},\"cells\":[{}]}}",
            self.backend.name(),
            self.passes(),
            cells.join(","),
        )
    }
}

/// Run the coordinator-failover campaign grid (`loss × seed`) on one
/// backend, replaying every cell to check seeded determinism.
pub fn run_failover_campaign(backend: Backend) -> FailoverReport {
    let mut cells = Vec::new();
    for &loss in &FAILOVER_LOSSES {
        for &seed in &FAILOVER_SEEDS {
            let plan = failover_plan(loss, seed);
            let run = run_plan_member_monitored(&plan, backend);
            let again = run_plan_member_monitored(&plan, backend);
            let report = &run.report;
            cells.push(FailoverCell {
                loss,
                seed,
                coordinator: report.views[1].coordinator,
                demoted: report.roles[0] == RoleKind::Participant
                    && report.views[0].coordinator != 0,
                agreed: report.agreed(),
                converged: report
                    .reconv
                    .iter()
                    .all(|s| s.detect.is_some() && s.stable.is_some()),
                replay_identical: run.summary.to_json() == again.summary.to_json(),
                summary: run.summary,
            });
        }
    }
    FailoverReport { backend, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_plans_map_to_member_configs() {
        let plan = failover_plan(0.05, 7);
        plan.validate().expect("failover plan must validate");
        let cfg = member_config(&plan);
        assert_eq!(cfg.group, FAILOVER_N + 1);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.duration, 900);
        assert_eq!(cfg.loss, LossModel::Bernoulli(0.0), "pipeline owns drops");
        assert_eq!(
            cfg.faults,
            vec![
                MemberFault {
                    at: FAILOVER_CRASH_AT,
                    kind: FaultKind::Crash,
                    pid: 0
                },
                MemberFault {
                    at: FAILOVER_REVIVE_AT,
                    kind: FaultKind::Revive,
                    pid: 0
                },
            ]
        );
    }

    #[test]
    fn a_membership_plan_runs_identically_on_both_backends() {
        let plan = failover_plan(0.05, 1);
        let sim = run_plan_member(&plan, Backend::Sim);
        let live = run_plan_member(&plan, Backend::Live);
        assert_eq!(sim.summary.source, "sim");
        assert_eq!(live.summary.source, "live");
        assert_eq!(
            sim.summary.to_json().replace("\"source\":\"sim\"", ""),
            live.summary.to_json().replace("\"source\":\"live\"", ""),
        );
        assert_eq!(sim.summary.crashes, vec![(0, FAILOVER_CRASH_AT)]);
        assert_eq!(sim.summary.revives, vec![(0, FAILOVER_REVIVE_AT)]);
        assert!(sim.summary.nv_inactivations.is_empty(), "failover, not NV");
        assert!(sim.summary.reconv_detect.is_some());
        assert!(sim.summary.reconv_stable.is_some());
        assert!(sim.summary.messages_lost > 0, "the pipeline must bite");
        assert_eq!(
            sim.summary.messages_sent - sim.summary.messages_lost,
            sim.summary.messages_delivered
        );
    }

    #[test]
    fn the_failover_campaign_passes_on_sim() {
        let report = run_failover_campaign(Backend::Sim);
        assert_eq!(
            report.cells.len(),
            FAILOVER_LOSSES.len() * FAILOVER_SEEDS.len()
        );
        for cell in &report.cells {
            assert!(
                cell.healthy(),
                "unhealthy cell loss={} seed={}: {cell:?}",
                cell.loss,
                cell.seed
            );
        }
        assert!(report.passes());
        let json = report.to_json();
        assert!(json.contains("\"record\":\"failover_campaign\""), "{json}");
        assert!(json.contains("\"passes\":true"), "{json}");
        assert!(json.contains("\"membership\":true"), "{json}");
    }
}
