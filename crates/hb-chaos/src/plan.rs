//! The declarative fault plan: a seed-deterministic schedule of faults
//! over time and topology, serializable to a small JSON spec so chaos
//! scenarios are shareable artifacts.
//!
//! A [`FaultPlan`] bundles the protocol under test ([`ProtoSpec`]) with a
//! list of [`FaultSpec`]s. The same plan runs unchanged against the
//! discrete-event simulator and the live loopback/virtual-time runtime
//! (see [`crate::run_plan`]); all fault randomness derives from the
//! plan's `seed`, so replaying a plan is byte-identical.

use std::fmt;

use hb_core::{FixLevel, Params, Pid, Variant};
use hb_sim::channel::Time;
use hb_sim::LossModel;

use crate::json::{escape, JsonError, Value};

/// A half-open activity window `[from, to)`; `to = None` means "until
/// the end of the run".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Window {
    /// First tick the fault is active.
    pub from: Time,
    /// First tick the fault is inactive again (`None` = forever).
    pub to: Option<Time>,
}

impl Window {
    /// A window covering the whole run.
    pub fn always() -> Self {
        Window { from: 0, to: None }
    }

    /// The window `[from, to)`.
    pub fn between(from: Time, to: Time) -> Self {
        Window { from, to: Some(to) }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.from && self.to.is_none_or(|to| t < to)
    }
}

/// Which directed links a fault applies to. `None` matches any endpoint,
/// so `Link::any()` is the whole network and `{src: Some(0), dst: None}`
/// is everything the coordinator sends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Matching sender (`None` = any).
    pub src: Option<Pid>,
    /// Matching receiver (`None` = any).
    pub dst: Option<Pid>,
}

impl Link {
    /// Every directed link.
    pub fn any() -> Self {
        Link {
            src: None,
            dst: None,
        }
    }

    /// Only messages from `src` to `dst`.
    pub fn between(src: Pid, dst: Pid) -> Self {
        Link {
            src: Some(src),
            dst: Some(dst),
        }
    }

    /// Whether a message `src -> dst` matches.
    pub fn matches(&self, src: Pid, dst: Pid) -> bool {
        self.src.is_none_or(|s| s == src) && self.dst.is_none_or(|d| d == dst)
    }
}

/// One fault in a plan.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// Probabilistic loss on matching links (Bernoulli or Gilbert–Elliott
    /// burst). Each `Loss` fault keeps its own burst-chain state.
    Loss {
        /// When the fault is active.
        window: Window,
        /// Which links it covers.
        link: Link,
        /// The loss law.
        model: LossModel,
    },
    /// A full partition into groups: messages between different groups
    /// are dropped, messages within a group pass. Pids not listed in any
    /// group are unaffected.
    Partition {
        /// When the partition holds.
        window: Window,
        /// The disjoint groups.
        groups: Vec<Vec<Pid>>,
    },
    /// A one-way partition: messages from any pid in `src` to any pid in
    /// `dst` are dropped (the reverse direction is untouched) — the
    /// asymmetric link failure of AM09's adversarial schedules.
    OneWay {
        /// When the cut holds.
        window: Window,
        /// Senders whose messages are cut.
        src: Vec<Pid>,
        /// Receivers the cut applies to.
        dst: Vec<Pid>,
    },
    /// Independent duplication: each matching message is delivered twice
    /// with probability `p`.
    Duplicate {
        /// When duplication is active.
        window: Window,
        /// Which links it covers.
        link: Link,
        /// Duplication probability.
        p: f64,
    },
    /// Bounded reordering: with probability `p` a matching message is
    /// held back by `1..=max_extra` extra ticks, letting later messages
    /// overtake it.
    Reorder {
        /// When reordering is active.
        window: Window,
        /// Which links it covers.
        link: Link,
        /// Probability of holding a message back.
        p: f64,
        /// Maximum extra delay in ticks.
        max_extra: u32,
    },
    /// A delay spike: every message sent in the window is slowed by
    /// `extra` ticks on top of its normal in-budget delay — deliberately
    /// violating the protocols' round-trip assumption `tmin`.
    DelaySpike {
        /// When the spike holds.
        window: Window,
        /// Extra ticks added to every delivery.
        extra: u32,
    },
    /// Per-node clock drift for the live runtime: node `pid`'s local
    /// clock reads `offset + t·num/den` at true tick `t`. The simulator
    /// has one global clock and ignores drift (recorded in the run notes).
    Drift {
        /// The drifting node.
        pid: Pid,
        /// Fixed clock offset in ticks.
        offset: Time,
        /// Rate numerator.
        num: u64,
        /// Rate denominator.
        den: u64,
    },
    /// Crash `pid` at tick `at` (voluntary inactivation; the node keeps
    /// consuming messages silently).
    Crash {
        /// The crashing node.
        pid: Pid,
        /// Crash tick.
        at: Time,
    },
    /// Delay participant `pid`'s start until tick `at` (join variants).
    Start {
        /// The late-starting participant.
        pid: Pid,
        /// Start tick.
        at: Time,
    },
    /// Make participant `pid` leave at the first beat at or after `at`
    /// (dynamic variant).
    Leave {
        /// The leaving participant.
        pid: Pid,
        /// Earliest leave tick.
        at: Time,
    },
    /// Revive participant `pid` at tick `at` (§7 rejoin): a crashed node
    /// restarts with a fresh epoch. Only valid after an earlier `crash`
    /// of the same pid.
    Revive {
        /// The reviving participant.
        pid: Pid,
        /// Revive tick.
        at: Time,
    },
}

/// The protocol configuration a plan runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtoSpec {
    /// Protocol variant.
    pub variant: Variant,
    /// Timing parameters.
    pub params: Params,
    /// Fix level.
    pub fix: FixLevel,
    /// Number of participants.
    pub n: usize,
    /// Run length in ticks (the run may end earlier if everything
    /// inactivates).
    pub duration: Time,
    /// Run the plan on the `hb-member` group-membership layer instead of
    /// the plain detector. Only membership plans may crash *and revive*
    /// the coordinator: the survivors fail over to a successor view and
    /// the revived ex-coordinator is demoted into it.
    pub membership: bool,
}

/// A complete, shareable chaos scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// A human-readable scenario name.
    pub name: String,
    /// The seed all fault randomness derives from.
    pub seed: u64,
    /// The protocol under test.
    pub proto: ProtoSpec,
    /// The fault schedule.
    pub faults: Vec<FaultSpec>,
}

/// A malformed plan (parse or validation failure).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanError(pub String);

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

impl From<JsonError> for PlanError {
    fn from(e: JsonError) -> Self {
        PlanError(e.to_string())
    }
}

fn variant_from_name(s: &str) -> Result<Variant, PlanError> {
    Variant::ALL
        .into_iter()
        .find(|v| v.name() == s)
        .ok_or_else(|| PlanError(format!("unknown variant \"{s}\"")))
}

fn fix_from_name(s: &str) -> Result<FixLevel, PlanError> {
    FixLevel::ALL
        .into_iter()
        .find(|f| f.name() == s)
        .ok_or_else(|| PlanError(format!("unknown fix level \"{s}\"")))
}

fn window_json(w: &Window) -> String {
    match w.to {
        Some(to) => format!("\"from\":{},\"to\":{}", w.from, to),
        None => format!("\"from\":{},\"to\":null", w.from),
    }
}

fn link_json(l: &Link) -> String {
    let part = |v: Option<Pid>| v.map_or("null".to_string(), |p| p.to_string());
    format!("\"src\":{},\"dst\":{}", part(l.src), part(l.dst))
}

fn pids_json(pids: &[Pid]) -> String {
    let items: Vec<String> = pids.iter().map(|p| p.to_string()).collect();
    format!("[{}]", items.join(","))
}

fn loss_model_json(m: &LossModel) -> String {
    match *m {
        LossModel::Bernoulli(p) => format!("{{\"law\":\"bernoulli\",\"p\":{p}}}"),
        LossModel::GilbertElliott {
            to_bad,
            to_good,
            good_loss,
            bad_loss,
        } => format!(
            "{{\"law\":\"gilbert-elliott\",\"to_bad\":{to_bad},\"to_good\":{to_good},\
             \"good_loss\":{good_loss},\"bad_loss\":{bad_loss}}}"
        ),
    }
}

fn window_from(v: &Value) -> Result<Window, PlanError> {
    let from = v
        .opt_field("from")?
        .map(Value::as_u64)
        .transpose()?
        .unwrap_or(0);
    let to = v.opt_field("to")?.map(Value::as_u64).transpose()?;
    if let Some(to) = to {
        if to < from {
            return Err(PlanError(format!("window [{from}, {to}) is inverted")));
        }
    }
    Ok(Window { from, to })
}

fn link_from(v: &Value) -> Result<Link, PlanError> {
    let pid = |name| -> Result<Option<Pid>, PlanError> {
        Ok(v.opt_field(name)?
            .map(Value::as_u64)
            .transpose()?
            .map(|p| p as Pid))
    };
    Ok(Link {
        src: pid("src")?,
        dst: pid("dst")?,
    })
}

fn pids_from(v: &Value) -> Result<Vec<Pid>, PlanError> {
    v.as_arr()?.iter().map(|p| Ok(p.as_u64()? as Pid)).collect()
}

fn prob_from(v: &Value, name: &str) -> Result<f64, PlanError> {
    let p = v.field(name)?.as_f64()?;
    if !(0.0..=1.0).contains(&p) {
        return Err(PlanError(format!("\"{name}\" = {p} outside [0, 1]")));
    }
    Ok(p)
}

fn loss_model_from(v: &Value) -> Result<LossModel, PlanError> {
    match v.field("law")?.as_str()? {
        "bernoulli" => Ok(LossModel::Bernoulli(prob_from(v, "p")?)),
        "gilbert-elliott" => Ok(LossModel::GilbertElliott {
            to_bad: prob_from(v, "to_bad")?,
            to_good: prob_from(v, "to_good")?,
            good_loss: prob_from(v, "good_loss")?,
            bad_loss: prob_from(v, "bad_loss")?,
        }),
        other => Err(PlanError(format!("unknown loss law \"{other}\""))),
    }
}

impl FaultSpec {
    fn to_json(&self) -> String {
        match self {
            FaultSpec::Loss {
                window,
                link,
                model,
            } => format!(
                "{{\"kind\":\"loss\",{},{},\"model\":{}}}",
                window_json(window),
                link_json(link),
                loss_model_json(model)
            ),
            FaultSpec::Partition { window, groups } => {
                let gs: Vec<String> = groups.iter().map(|g| pids_json(g)).collect();
                format!(
                    "{{\"kind\":\"partition\",{},\"groups\":[{}]}}",
                    window_json(window),
                    gs.join(",")
                )
            }
            FaultSpec::OneWay { window, src, dst } => format!(
                "{{\"kind\":\"one-way\",{},\"src\":{},\"dst\":{}}}",
                window_json(window),
                pids_json(src),
                pids_json(dst)
            ),
            FaultSpec::Duplicate { window, link, p } => format!(
                "{{\"kind\":\"duplicate\",{},{},\"p\":{p}}}",
                window_json(window),
                link_json(link)
            ),
            FaultSpec::Reorder {
                window,
                link,
                p,
                max_extra,
            } => format!(
                "{{\"kind\":\"reorder\",{},{},\"p\":{p},\"max_extra\":{max_extra}}}",
                window_json(window),
                link_json(link)
            ),
            FaultSpec::DelaySpike { window, extra } => format!(
                "{{\"kind\":\"delay-spike\",{},\"extra\":{extra}}}",
                window_json(window)
            ),
            FaultSpec::Drift {
                pid,
                offset,
                num,
                den,
            } => format!(
                "{{\"kind\":\"drift\",\"pid\":{pid},\"offset\":{offset},\"num\":{num},\"den\":{den}}}"
            ),
            FaultSpec::Crash { pid, at } => {
                format!("{{\"kind\":\"crash\",\"pid\":{pid},\"at\":{at}}}")
            }
            FaultSpec::Start { pid, at } => {
                format!("{{\"kind\":\"start\",\"pid\":{pid},\"at\":{at}}}")
            }
            FaultSpec::Leave { pid, at } => {
                format!("{{\"kind\":\"leave\",\"pid\":{pid},\"at\":{at}}}")
            }
            FaultSpec::Revive { pid, at } => {
                format!("{{\"kind\":\"revive\",\"pid\":{pid},\"at\":{at}}}")
            }
        }
    }

    fn from_value(v: &Value) -> Result<FaultSpec, PlanError> {
        let pid_at = || -> Result<(Pid, Time), PlanError> {
            Ok((v.field("pid")?.as_u64()? as Pid, v.field("at")?.as_u64()?))
        };
        match v.field("kind")?.as_str()? {
            "loss" => Ok(FaultSpec::Loss {
                window: window_from(v)?,
                link: link_from(v)?,
                model: loss_model_from(v.field("model")?)?,
            }),
            "partition" => Ok(FaultSpec::Partition {
                window: window_from(v)?,
                groups: v
                    .field("groups")?
                    .as_arr()?
                    .iter()
                    .map(pids_from)
                    .collect::<Result<_, _>>()?,
            }),
            "one-way" => Ok(FaultSpec::OneWay {
                window: window_from(v)?,
                src: pids_from(v.field("src")?)?,
                dst: pids_from(v.field("dst")?)?,
            }),
            "duplicate" => Ok(FaultSpec::Duplicate {
                window: window_from(v)?,
                link: link_from(v)?,
                p: prob_from(v, "p")?,
            }),
            "reorder" => Ok(FaultSpec::Reorder {
                window: window_from(v)?,
                link: link_from(v)?,
                p: prob_from(v, "p")?,
                max_extra: v.field("max_extra")?.as_u64()? as u32,
            }),
            "delay-spike" => Ok(FaultSpec::DelaySpike {
                window: window_from(v)?,
                extra: v.field("extra")?.as_u64()? as u32,
            }),
            "drift" => {
                let num = v.field("num")?.as_u64()?;
                let den = v.field("den")?.as_u64()?;
                if num == 0 || den == 0 {
                    return Err(PlanError("drift rate must be positive".into()));
                }
                Ok(FaultSpec::Drift {
                    pid: v.field("pid")?.as_u64()? as Pid,
                    offset: v
                        .opt_field("offset")?
                        .map(Value::as_u64)
                        .transpose()?
                        .unwrap_or(0),
                    num,
                    den,
                })
            }
            "crash" => pid_at().map(|(pid, at)| FaultSpec::Crash { pid, at }),
            "start" => pid_at().map(|(pid, at)| FaultSpec::Start { pid, at }),
            "leave" => pid_at().map(|(pid, at)| FaultSpec::Leave { pid, at }),
            "revive" => pid_at().map(|(pid, at)| FaultSpec::Revive { pid, at }),
            other => Err(PlanError(format!("unknown fault kind \"{other}\""))),
        }
    }
}

impl ProtoSpec {
    fn to_json(self) -> String {
        format!(
            "{{\"variant\":\"{}\",\"tmin\":{},\"tmax\":{},\"fix\":\"{}\",\"n\":{},\
             \"duration\":{},\"membership\":{}}}",
            self.variant.name(),
            self.params.tmin(),
            self.params.tmax(),
            self.fix.name(),
            self.n,
            self.duration,
            self.membership
        )
    }

    fn from_value(v: &Value) -> Result<ProtoSpec, PlanError> {
        let tmin = v.field("tmin")?.as_u64()? as u32;
        let tmax = v.field("tmax")?.as_u64()? as u32;
        // Absent in pre-membership plans: default to the plain detector.
        let membership = match v.opt_field("membership")? {
            Some(b) => b.as_bool()?,
            None => false,
        };
        Ok(ProtoSpec {
            variant: variant_from_name(v.field("variant")?.as_str()?)?,
            params: Params::new(tmin, tmax).map_err(|e| PlanError(e.to_string()))?,
            fix: fix_from_name(v.field("fix")?.as_str()?)?,
            n: v.field("n")?.as_u64()? as usize,
            duration: v.field("duration")?.as_u64()?,
            membership,
        })
    }
}

impl FaultPlan {
    /// A plan with no faults (builder entry point).
    pub fn new(name: impl Into<String>, seed: u64, proto: ProtoSpec) -> Self {
        FaultPlan {
            name: name.into(),
            seed,
            proto,
            faults: Vec::new(),
        }
    }

    /// Append a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: FaultSpec) -> Self {
        self.faults.push(fault);
        self
    }

    /// The crash schedule embedded in the plan.
    pub fn crashes(&self) -> Vec<(Pid, Time)> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                FaultSpec::Crash { pid, at } => Some((*pid, *at)),
                _ => None,
            })
            .collect()
    }

    /// The first scheduled crash time, if any.
    pub fn first_crash(&self) -> Option<Time> {
        self.crashes().iter().map(|&(_, t)| t).min()
    }

    /// Validate topology references and per-pid lifecycle ordering: every
    /// pid a fault names must exist (`0..=n`), start/leave only name
    /// participants, leave needs the dynamic variant, a pid crashes at
    /// most once, a revive needs a strictly earlier crash of the same
    /// pid, and a late start must precede that pid's crash. Reviving the
    /// coordinator (pid 0) additionally requires a membership plan —
    /// without the failover layer a revived coordinator has no story —
    /// and follows the same lifecycle ordering as participant pids.
    pub fn validate(&self) -> Result<(), PlanError> {
        let n = self.proto.n;
        let check = |pid: Pid, what: &str| {
            if pid > n {
                Err(PlanError(format!("{what} names pid {pid}, but n = {n}")))
            } else {
                Ok(())
            }
        };
        let check_part = |pid: Pid, what: &str| {
            if pid == 0 || pid > n {
                Err(PlanError(format!(
                    "{what} must name a participant in 1..={n}, got {pid}"
                )))
            } else {
                Ok(())
            }
        };
        for f in &self.faults {
            match f {
                FaultSpec::Loss { link, .. }
                | FaultSpec::Duplicate { link, .. }
                | FaultSpec::Reorder { link, .. } => {
                    for pid in [link.src, link.dst].into_iter().flatten() {
                        check(pid, "link")?;
                    }
                }
                FaultSpec::Partition { groups, .. } => {
                    for pid in groups.iter().flatten() {
                        check(*pid, "partition group")?;
                    }
                }
                FaultSpec::OneWay { src, dst, .. } => {
                    for pid in src.iter().chain(dst) {
                        check(*pid, "one-way cut")?;
                    }
                }
                FaultSpec::DelaySpike { .. } => {}
                FaultSpec::Drift { pid, .. } => check(*pid, "drift")?,
                FaultSpec::Crash { pid, .. } => check(*pid, "crash")?,
                FaultSpec::Start { pid, .. } => {
                    check_part(*pid, "start")?;
                    if !self.proto.variant.has_join_phase() {
                        return Err(PlanError(format!(
                            "start requires a join-capable variant, got {}",
                            self.proto.variant
                        )));
                    }
                }
                FaultSpec::Leave { pid, .. } => {
                    check_part(*pid, "leave")?;
                    if !self.proto.variant.supports_leave() {
                        return Err(PlanError(format!(
                            "leave requires the dynamic variant, got {}",
                            self.proto.variant
                        )));
                    }
                }
                FaultSpec::Revive { pid, .. } => {
                    if self.proto.membership {
                        check(*pid, "revive")?;
                    } else {
                        check_part(*pid, "revive")?;
                    }
                }
            }
        }

        // Per-pid lifecycle ordering: each pid crashes at most once, a
        // revive needs a strictly earlier crash of the same pid, and a
        // late start must precede that pid's crash.
        let mut crashes: Vec<(Pid, Time)> = Vec::new();
        for f in &self.faults {
            if let FaultSpec::Crash { pid, at } = f {
                if let Some(&(_, prev)) = crashes.iter().find(|(p, _)| p == pid) {
                    return Err(PlanError(format!(
                        "pid {pid} crashes twice (at {prev} and {at})"
                    )));
                }
                crashes.push((*pid, *at));
            }
        }
        let crash_of = |pid: Pid| crashes.iter().find(|&&(p, _)| p == pid).map(|&(_, t)| t);
        let mut revived: Vec<Pid> = Vec::new();
        for f in &self.faults {
            match *f {
                FaultSpec::Revive { pid, at } => {
                    let Some(c) = crash_of(pid) else {
                        return Err(PlanError(format!(
                            "revive of pid {pid} at {at} has no matching crash"
                        )));
                    };
                    if at <= c {
                        return Err(PlanError(format!(
                            "revive of pid {pid} at {at} must follow its crash at {c}"
                        )));
                    }
                    if revived.contains(&pid) {
                        return Err(PlanError(format!("pid {pid} revives twice")));
                    }
                    revived.push(pid);
                }
                FaultSpec::Start { pid, at } => {
                    if let Some(c) = crash_of(pid) {
                        if at >= c {
                            return Err(PlanError(format!(
                                "start of pid {pid} at {at} must precede its crash at {c}"
                            )));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Serialize to the shareable JSON spec (single line).
    pub fn to_json(&self) -> String {
        let faults: Vec<String> = self.faults.iter().map(FaultSpec::to_json).collect();
        format!(
            "{{\"record\":\"fault_plan\",\"name\":\"{}\",\"seed\":{},\"proto\":{},\"faults\":[{}]}}",
            escape(&self.name),
            self.seed,
            self.proto.to_json(),
            faults.join(",")
        )
    }

    /// Parse and validate a JSON plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError`] on malformed JSON, unknown names, out-of-range
    /// probabilities, or topology references outside `0..=n`.
    pub fn from_json(text: &str) -> Result<FaultPlan, PlanError> {
        let v = Value::parse(text)?;
        if let Some(rec) = v.opt_field("record")? {
            if rec.as_str()? != "fault_plan" {
                return Err(PlanError(format!(
                    "not a fault_plan record: {:?}",
                    rec.as_str()
                )));
            }
        }
        let plan = FaultPlan {
            name: v.field("name")?.as_str()?.to_string(),
            seed: v.field("seed")?.as_u64()?,
            proto: ProtoSpec::from_value(v.field("proto")?)?,
            faults: v
                .field("faults")?
                .as_arr()?
                .iter()
                .map(FaultSpec::from_value)
                .collect::<Result<_, _>>()?,
        };
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> ProtoSpec {
        ProtoSpec {
            variant: Variant::Dynamic,
            params: Params::new(2, 8).unwrap(),
            fix: FixLevel::Full,
            n: 3,
            duration: 5_000,
            membership: false,
        }
    }

    fn rich_plan() -> FaultPlan {
        FaultPlan::new("kitchen-sink", 42, proto())
            .with(FaultSpec::Loss {
                window: Window::always(),
                link: Link::any(),
                model: LossModel::GilbertElliott {
                    to_bad: 0.05,
                    to_good: 0.25,
                    good_loss: 0.0,
                    bad_loss: 1.0,
                },
            })
            .with(FaultSpec::Loss {
                window: Window::between(100, 200),
                link: Link::between(1, 0),
                model: LossModel::Bernoulli(0.5),
            })
            .with(FaultSpec::Partition {
                window: Window::between(1_000, 1_080),
                groups: vec![vec![0, 1], vec![2, 3]],
            })
            .with(FaultSpec::OneWay {
                window: Window::between(2_000, 2_040),
                src: vec![0],
                dst: vec![2],
            })
            .with(FaultSpec::Duplicate {
                window: Window::always(),
                link: Link::any(),
                p: 0.05,
            })
            .with(FaultSpec::Reorder {
                window: Window::always(),
                link: Link::any(),
                p: 0.2,
                max_extra: 3,
            })
            .with(FaultSpec::DelaySpike {
                window: Window::between(3_000, 3_016),
                extra: 5,
            })
            .with(FaultSpec::Drift {
                pid: 1,
                offset: 1,
                num: 103,
                den: 100,
            })
            .with(FaultSpec::Start { pid: 2, at: 40 })
            .with(FaultSpec::Leave { pid: 3, at: 900 })
            .with(FaultSpec::Crash { pid: 1, at: 4_000 })
            .with(FaultSpec::Revive { pid: 1, at: 4_200 })
    }

    #[test]
    fn every_fault_kind_round_trips_through_json() {
        let plan = rich_plan();
        let json = plan.to_json();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
        // Serialization is canonical: re-emitting is byte-identical.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn validation_catches_bad_topology() {
        let bad = FaultPlan::new("p", 1, proto()).with(FaultSpec::Crash { pid: 9, at: 5 });
        assert!(bad.validate().is_err());
        let mut p = proto();
        p.variant = Variant::Binary;
        let bad = FaultPlan::new("p", 1, p).with(FaultSpec::Leave { pid: 1, at: 5 });
        assert!(bad.validate().unwrap_err().to_string().contains("dynamic"));
        let bad = FaultPlan::new("p", 1, p).with(FaultSpec::Start { pid: 1, at: 5 });
        assert!(bad.validate().is_err());
        let bad = FaultPlan::new("p", 1, proto()).with(FaultSpec::Partition {
            window: Window::always(),
            groups: vec![vec![0], vec![7]],
        });
        assert!(bad.validate().is_err());
    }

    #[test]
    fn lifecycle_ordering_is_validated_per_pid() {
        // Two crashes of the same pid.
        let bad = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Crash { pid: 1, at: 10 })
            .with(FaultSpec::Crash { pid: 1, at: 20 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("crashes twice (at 10 and 20)"), "{msg}");

        // Revive with no matching crash.
        let bad = FaultPlan::new("p", 1, proto()).with(FaultSpec::Revive { pid: 2, at: 50 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("no matching crash"), "{msg}");

        // Revive at or before the crash tick (fault order in the list is
        // irrelevant; only the ticks matter).
        let bad = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Revive { pid: 1, at: 10 })
            .with(FaultSpec::Crash { pid: 1, at: 10 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("must follow its crash at 10"), "{msg}");

        // A second revive of the same pid.
        let bad = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Crash { pid: 1, at: 10 })
            .with(FaultSpec::Revive { pid: 1, at: 20 })
            .with(FaultSpec::Revive { pid: 1, at: 30 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("revives twice"), "{msg}");

        // Late start scheduled after the pid already crashed.
        let bad = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Crash { pid: 2, at: 10 })
            .with(FaultSpec::Start { pid: 2, at: 10 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("must precede its crash at 10"), "{msg}");

        // Revive of the coordinator is rejected outright on a plain
        // (non-membership) plan: without failover it has no story.
        let bad = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Crash { pid: 0, at: 10 })
            .with(FaultSpec::Revive { pid: 0, at: 20 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("revive must name a participant"), "{msg}");

        // The legal shape round-trips at the JSON level.
        let good = FaultPlan::new("p", 1, proto())
            .with(FaultSpec::Crash { pid: 1, at: 10 })
            .with(FaultSpec::Revive { pid: 1, at: 20 });
        assert_eq!(FaultPlan::from_json(&good.to_json()).unwrap(), good);
    }

    #[test]
    fn membership_plans_extend_the_lifecycle_rules_to_the_coordinator() {
        let member = ProtoSpec {
            membership: true,
            ..proto()
        };

        // With the membership layer the coordinator is revivable — the
        // survivors fail over and the rejoiner is demoted — so the full
        // crash/revive lifecycle validates and round-trips through JSON.
        let good = FaultPlan::new("p", 1, member)
            .with(FaultSpec::Crash { pid: 0, at: 10 })
            .with(FaultSpec::Revive { pid: 0, at: 20 });
        good.validate().expect("coordinator failover plan");
        let back = FaultPlan::from_json(&good.to_json()).unwrap();
        assert_eq!(back, good);
        assert!(back.proto.membership);

        // The ordering rules apply to pid 0 exactly as to participants:
        // a revive needs a strictly earlier crash...
        let bad = FaultPlan::new("p", 1, member).with(FaultSpec::Revive { pid: 0, at: 20 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("no matching crash"), "{msg}");

        // ...revive-at-or-before-crash is rejected...
        let bad = FaultPlan::new("p", 1, member)
            .with(FaultSpec::Crash { pid: 0, at: 10 })
            .with(FaultSpec::Revive { pid: 0, at: 10 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("must follow its crash at 10"), "{msg}");

        // ...and the coordinator revives at most once.
        let bad = FaultPlan::new("p", 1, member)
            .with(FaultSpec::Crash { pid: 0, at: 10 })
            .with(FaultSpec::Revive { pid: 0, at: 20 })
            .with(FaultSpec::Revive { pid: 0, at: 30 });
        let msg = bad.validate().unwrap_err().to_string();
        assert!(msg.contains("revives twice"), "{msg}");

        // The same rejections surface at the JSON level, and a plan
        // merely omitting "membership" stays a plain-detector plan.
        let base = r#"{"name":"x","seed":1,"proto":{"variant":"binary","tmin":1,"tmax":2,"fix":"full-fix","n":2,"duration":100,"membership":true},"faults":FAULTS}"#;
        let json = base.replace(
            "FAULTS",
            r#"[{"kind":"revive","pid":0,"at":9},{"kind":"crash","pid":0,"at":9}]"#,
        );
        let msg = FaultPlan::from_json(&json).unwrap_err().to_string();
        assert!(msg.contains("must follow its crash"), "{msg}");
        let json = base.replace(",\"membership\":true", "").replace(
            "FAULTS",
            r#"[{"kind":"crash","pid":0,"at":5},{"kind":"revive","pid":0,"at":9}]"#,
        );
        let msg = FaultPlan::from_json(&json).unwrap_err().to_string();
        assert!(msg.contains("revive must name a participant"), "{msg}");
    }

    #[test]
    fn json_parse_reports_lifecycle_errors() {
        let base = r#"{"name":"x","seed":1,"proto":{"variant":"binary","tmin":1,"tmax":2,"fix":"full-fix","n":2,"duration":100},"faults":FAULTS}"#;
        for (faults, needle) in [
            (
                r#"[{"kind":"crash","pid":1,"at":5},{"kind":"crash","pid":1,"at":9}]"#,
                "crashes twice",
            ),
            (r#"[{"kind":"revive","pid":1,"at":9}]"#, "no matching crash"),
            (
                r#"[{"kind":"crash","pid":1,"at":9},{"kind":"revive","pid":1,"at":4}]"#,
                "must follow its crash",
            ),
        ] {
            let json = base.replace("FAULTS", faults);
            let msg = FaultPlan::from_json(&json).unwrap_err().to_string();
            assert!(msg.contains(needle), "{json}: {msg}");
        }
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "{}",
            r#"{"record":"run_summary","name":"x","seed":1}"#,
            r#"{"name":"x","seed":1,"proto":{"variant":"nope","tmin":1,"tmax":2,"fix":"full-fix","n":1,"duration":10},"faults":[]}"#,
            r#"{"name":"x","seed":1,"proto":{"variant":"binary","tmin":0,"tmax":2,"fix":"full-fix","n":1,"duration":10},"faults":[]}"#,
            r#"{"name":"x","seed":1,"proto":{"variant":"binary","tmin":1,"tmax":2,"fix":"full-fix","n":1,"duration":10},"faults":[{"kind":"loss","model":{"law":"bernoulli","p":1.5}}]}"#,
            r#"{"name":"x","seed":1,"proto":{"variant":"binary","tmin":1,"tmax":2,"fix":"full-fix","n":1,"duration":10},"faults":[{"kind":"wat"}]}"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "{bad} must fail");
        }
    }

    #[test]
    fn defaults_fill_in_omitted_fields() {
        let json = r#"{"name":"min","seed":7,
            "proto":{"variant":"binary","tmin":2,"tmax":8,"fix":"original","n":1,"duration":100},
            "faults":[{"kind":"loss","model":{"law":"bernoulli","p":0.1}},
                      {"kind":"drift","pid":1,"num":101,"den":100}]}"#;
        let plan = FaultPlan::from_json(json).unwrap();
        match &plan.faults[0] {
            FaultSpec::Loss { window, link, .. } => {
                assert_eq!(*window, Window::always());
                assert_eq!(*link, Link::any());
            }
            other => panic!("{other:?}"),
        }
        match &plan.faults[1] {
            FaultSpec::Drift { offset, .. } => assert_eq!(*offset, 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn windows_and_links_match_correctly() {
        let w = Window::between(10, 20);
        assert!(!w.contains(9) && w.contains(10) && w.contains(19) && !w.contains(20));
        assert!(Window::always().contains(u64::MAX));
        let l = Link {
            src: Some(0),
            dst: None,
        };
        assert!(l.matches(0, 5) && !l.matches(1, 0));
        assert!(Link::between(1, 0).matches(1, 0));
        assert!(!Link::between(1, 0).matches(0, 1));
    }

    #[test]
    fn crash_schedule_is_extracted() {
        let plan = rich_plan();
        assert_eq!(plan.crashes(), vec![(1, 4_000)]);
        assert_eq!(plan.first_crash(), Some(4_000));
    }
}
